#include "schematic/netlist.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "base/strings.hpp"

namespace interop::sch {

namespace {

/// Union-find over dense ids.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

/// Geometry nodes of one sheet: every distinct point that participates in
/// connectivity (wire endpoints, junctions, pin positions, label anchors).
class SheetNodes {
 public:
  explicit SheetNodes(const Sheet& sheet) : sheet_(sheet) {
    for (const Segment& w : sheet.wires) {
      id_of(w.a);
      id_of(w.b);
    }
    for (const Point& j : sheet.junctions) id_of(j);
  }

  std::size_t id_of(const Point& p) {
    auto [it, added] = ids_.try_emplace(p, next_);
    if (added) ++next_;
    return it->second;
  }

  std::size_t count() const { return next_; }

  /// Segments containing `p` anywhere (endpoint or interior).
  std::vector<std::size_t> segments_at(const Point& p) const {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < sheet_.wires.size(); ++i)
      if (sheet_.wires[i].contains(p)) out.push_back(i);
    return out;
  }

  /// Segments having `p` as an endpoint.
  std::vector<std::size_t> segments_ending_at(const Point& p) const {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < sheet_.wires.size(); ++i)
      if (sheet_.wires[i].a == p || sheet_.wires[i].b == p) out.push_back(i);
    return out;
  }

  bool has_junction(const Point& p) const {
    return std::find(sheet_.junctions.begin(), sheet_.junctions.end(), p) !=
           sheet_.junctions.end();
  }

 private:
  const Sheet& sheet_;
  std::map<Point, std::size_t> ids_;
  std::size_t next_ = 0;
};

/// Everything we learn about one connected wire group on one sheet.
struct WireGroup {
  std::set<NetConnection> connections;
  std::vector<std::string> label_texts;
  std::vector<std::string> offpage_names;   ///< from off-page connectors
  std::vector<std::string> global_names;    ///< from global-net symbols
  std::vector<std::pair<std::string, PinDir>> ports;  ///< hier connectors
  Point anchor{0, 0};  ///< smallest point, for deterministic anon naming
  bool has_anchor = false;

  void note_point(const Point& p) {
    if (!has_anchor || p < anchor) {
      anchor = p;
      has_anchor = true;
    }
  }
};

PinDir dir_from_text(const std::string& s) {
  if (s == "input") return PinDir::Input;
  if (s == "output") return PinDir::Output;
  return PinDir::Inout;
}

}  // namespace

std::string Netlist::signature(const ExtractedNet& net) {
  std::vector<std::string> parts;
  parts.reserve(net.connections.size());
  for (const NetConnection& c : net.connections)
    parts.push_back(c.instance + "." + c.pin);
  std::sort(parts.begin(), parts.end());
  return base::join(parts, "|");
}

Netlist extract_netlist(const Design& design, const Schematic& sch,
                        const Dialect& dialect,
                        base::DiagnosticEngine& diags) {
  Netlist out;
  out.cell = sch.cell;

  // The cell's own symbol (for Viewlogic-style implicit ports).
  const SymbolDef* cell_symbol = nullptr;
  for (const auto& [key, def] : design.symbols())
    if (key.cell == sch.cell && def.role == SymbolRole::Component)
      cell_symbol = &def;

  // Pass 1 over all sheets: find explicit bus ranges so condensed refs
  // ("A0") can be recognized on pass 2.
  std::vector<std::string> known_buses;
  for (const Sheet& sheet : sch.sheets) {
    for (const NetLabel& label : sheet.labels) {
      NetRef ref = parse_net_ref(label.text, dialect);
      if (ref.range) known_buses.push_back(ref.base);
    }
  }
  std::sort(known_buses.begin(), known_buses.end());
  known_buses.erase(std::unique(known_buses.begin(), known_buses.end()),
                    known_buses.end());

  // Per-sheet wire groups.
  struct SheetGroups {
    int page;
    std::vector<WireGroup> groups;
  };
  std::vector<SheetGroups> all_groups;

  for (const Sheet& sheet : sch.sheets) {
    SheetNodes nodes(sheet);
    const std::string page_obj = "page" + std::to_string(sheet.number);

    // Extra nodes for instance pins and labels are appended after wiring
    // nodes; remember the mapping.
    struct PinSite {
      std::size_t node;
      const Instance* inst;
      const SymbolPin* pin;
      Point pos;
    };
    std::vector<PinSite> pin_sites;

    for (const Instance& inst : sheet.instances) {
      const SymbolDef* def = design.find_symbol(inst.symbol);
      if (!def) {
        diags.error("unknown-symbol",
                    "instance " + inst.name + " references missing symbol " +
                        inst.symbol.str(),
                    {"sch.extract", page_obj + "/" + inst.name});
        continue;
      }
      for (const SymbolPin& pin : def->pins) {
        Point pos = inst.placement.apply(pin.pos);
        pin_sites.push_back({nodes.id_of(pos), &inst, &pin, pos});
      }
    }

    struct LabelSite {
      std::size_t node;
      const NetLabel* label;
    };
    std::vector<LabelSite> label_sites;
    for (const NetLabel& label : sheet.labels)
      label_sites.push_back({nodes.id_of(label.at), &label});

    // Union wires.
    UnionFind uf(nodes.count());
    for (const Segment& w : sheet.wires)
      uf.unite(nodes.id_of(w.a), nodes.id_of(w.b));

    // Junction dots connect interior crossings/tees.
    for (const Point& j : sheet.junctions) {
      std::size_t jid = nodes.id_of(j);
      for (std::size_t si : nodes.segments_at(j))
        uf.unite(jid, nodes.id_of(sheet.wires[si].a));
    }

    // Pins: connect when the pin sits on a wire endpoint, or on a wire
    // interior that carries a junction dot. Coincident pins connect by
    // abutment because they share the node id.
    for (const PinSite& site : pin_sites) {
      bool wired = false;
      if (!nodes.segments_ending_at(site.pos).empty()) {
        wired = true;  // endpoint: id_of already unified via segment union
      } else if (nodes.has_junction(site.pos) &&
                 !nodes.segments_at(site.pos).empty()) {
        wired = true;
      } else if (!nodes.segments_at(site.pos).empty()) {
        diags.warn("pin-crosses-wire",
                   "pin " + site.inst->name + "." + site.pin->name +
                       " lies on a wire interior without a junction; "
                       "not connected",
                   {"sch.extract", page_obj + "/" + site.inst->name});
      }
      if (!wired) {
        // Dangling pin: forms (or joins) a node only with coincident pins.
        bool shared = false;
        for (const PinSite& other : pin_sites)
          if (&other != &site && other.pos == site.pos) shared = true;
        if (!shared)
          diags.note("dangling-pin",
                     "pin " + site.inst->name + "." + site.pin->name +
                         " is unconnected",
                     {"sch.extract", page_obj + "/" + site.inst->name});
      }
    }

    // Labels must land on a wire.
    for (const LabelSite& site : label_sites) {
      std::vector<std::size_t> segs = nodes.segments_at(site.label->at);
      if (segs.empty()) {
        diags.warn("floating-label",
                   "label '" + site.label->text + "' is not on any wire",
                   {"sch.extract", page_obj});
      } else {
        uf.unite(site.node, nodes.id_of(sheet.wires[segs.front()].a));
      }
    }

    // Gather groups.
    std::map<std::size_t, WireGroup> groups;
    for (const Segment& w : sheet.wires) {
      WireGroup& g = groups[uf.find(nodes.id_of(w.a))];
      g.note_point(w.a);
      g.note_point(w.b);
    }
    for (const PinSite& site : pin_sites) {
      WireGroup& g = groups[uf.find(site.node)];
      g.note_point(site.pos);
      const Instance& inst = *site.inst;
      const SymbolDef* def = design.find_symbol(inst.symbol);
      switch (def->role) {
        case SymbolRole::Component:
          g.connections.insert({inst.name, site.pin->name});
          break;
        case SymbolRole::HierPort:
          g.ports.emplace_back(
              inst.props.get_text("port", inst.name),
              dir_from_text(inst.props.get_text("dir", "inout")));
          break;
        case SymbolRole::OffPage:
          g.offpage_names.push_back(inst.props.get_text("net", inst.name));
          break;
        case SymbolRole::GlobalNet:
          g.global_names.push_back(
              def->default_props.get_text("global_net", def->key.cell));
          break;
      }
    }
    for (const LabelSite& site : label_sites) {
      groups[uf.find(site.node)].label_texts.push_back(site.label->text);
    }

    SheetGroups sg;
    sg.page = sheet.number;
    for (auto& [root, g] : groups) sg.groups.push_back(std::move(g));
    // Deterministic order.
    std::sort(sg.groups.begin(), sg.groups.end(),
              [](const WireGroup& a, const WireGroup& b) {
                return a.anchor < b.anchor;
              });
    all_groups.push_back(std::move(sg));
  }

  // ---- Resolve group names to canonical nets ----
  //
  // Scoping rule: within one page, same names always join (true in both
  // tools). Across pages, a name joins design-wide when (a) it is global,
  // (b) the dialect joins same names across pages implicitly, or (c) the
  // group carries an off-page connector. A name that appears on several
  // pages *without* those becomes page-scoped ("name@p2") — two same-named
  // labels on different Composer pages are different nets.
  //
  // Pre-pass: which pages does each canonical label name appear on?
  std::map<std::string, std::set<int>> name_pages;
  if (!dialect.implicit_offpage_by_name) {
    for (const SheetGroups& sg : all_groups) {
      for (const WireGroup& g : sg.groups) {
        for (const std::string& text : g.label_texts) {
          NetRef ref = parse_net_ref(text, dialect, known_buses);
          for (const std::string& bit : canonical_bits(ref))
            name_pages[bit].insert(sg.page);
        }
        for (const std::string& on : g.offpage_names) {
          NetRef ref = parse_net_ref(on, dialect, known_buses);
          for (const std::string& bit : canonical_bits(ref))
            name_pages[bit].insert(sg.page);
        }
      }
    }
  }

  int anon_counter = 0;
  auto add_connections = [&out](const std::string& canon, bool named,
                                bool global, const WireGroup& g) {
    ExtractedNet& net = out.nets[canon];
    net.canonical = canon;
    net.named = net.named || named;
    net.global = net.global || global;
    for (const NetConnection& c : g.connections) net.connections.insert(c);
  };

  for (const SheetGroups& sg : all_groups) {
    for (const WireGroup& g : sg.groups) {
      std::vector<std::pair<std::string, bool>> names;  // canonical, global

      for (const std::string& text : g.label_texts) {
        NetRef ref = parse_net_ref(text, dialect, known_buses);
        bool global = false;
        NetRef cleaned = ref;
        if (!dialect.global_suffix.empty() &&
            base::ends_with(cleaned.base, dialect.global_suffix)) {
          global = true;
          cleaned.base = cleaned.base.substr(
              0, cleaned.base.size() - dialect.global_suffix.size());
        }
        for (const std::string& bit : canonical_bits(cleaned))
          names.emplace_back(bit, global);
      }
      for (const std::string& gn : g.global_names)
        names.emplace_back(gn, true);
      for (const std::string& on : g.offpage_names) {
        NetRef ref = parse_net_ref(on, dialect, known_buses);
        for (const std::string& bit : canonical_bits(ref))
          names.emplace_back(bit, false);
      }

      // An unlabeled wire with a hier connector takes the port's name.
      if (names.empty() && !g.ports.empty()) {
        for (const auto& [pname, pdir] : g.ports) {
          (void)pdir;
          NetRef pref = parse_net_ref(pname, dialect, known_buses);
          for (const std::string& bit : canonical_bits(pref))
            names.emplace_back(bit, false);
        }
      }

      if (names.empty()) {
        std::string anon = "$anon" + std::to_string(anon_counter++);
        add_connections(anon, false, false, g);
        continue;
      }

      std::vector<std::string> resolved;
      for (auto& [canon, global] : names) {
        bool design_wide = global || dialect.implicit_offpage_by_name ||
                           !g.offpage_names.empty();
        bool multipage = !design_wide && name_pages[canon].size() > 1;
        std::string scoped =
            multipage ? canon + "@p" + std::to_string(sg.page) : canon;
        add_connections(scoped, true, global, g);
        resolved.push_back(std::move(scoped));
      }

      // Port bindings: a hier connector marks the group's net as a port.
      for (const auto& [pname, pdir] : g.ports) {
        (void)pname;  // ports name their net; the group's name binds it
        ExtractedNet& net = out.nets[resolved.front()];
        net.canonical = resolved.front();
        net.named = true;
        net.is_port = true;
        net.port_dir = pdir;
      }
      if (g.ports.empty() && !dialect.requires_hier_connectors &&
          cell_symbol) {
        // Viewlogic-style implicit ports: a labeled net whose name matches
        // a pin of the cell's own symbol is a port.
        for (const auto& [canon, global] : names) {
          (void)global;
          for (const SymbolPin& pin : cell_symbol->pins) {
            NetRef pinref = parse_net_ref(pin.name, dialect, known_buses);
            for (const std::string& bit : canonical_bits(pinref)) {
              if (bit == canon) {
                ExtractedNet& net = out.nets[canon];
                net.canonical = canon;
                net.named = true;
                net.is_port = true;
                net.port_dir = pin.dir;
              }
            }
          }
        }
      }
    }
  }

  // Hier ports in connector-requiring dialects bind by connector name even
  // when the wire group had its own label; make sure the port flag lands on
  // the right canonical net (connector name may BE the net name).
  return out;
}

std::string to_string(NetlistDiff::Kind k) {
  switch (k) {
    case NetlistDiff::Kind::MissingNet: return "missing-net";
    case NetlistDiff::Kind::ExtraNet: return "extra-net";
    case NetlistDiff::Kind::ConnectionChange: return "connection-change";
    case NetlistDiff::Kind::PortChange: return "port-change";
    case NetlistDiff::Kind::GlobalChange: return "global-change";
  }
  return "?";
}

std::vector<NetlistDiff> compare_netlists(const Netlist& golden,
                                          const Netlist& subject) {
  std::vector<NetlistDiff> diffs;

  // Anonymous nets match by connection signature.
  std::map<std::string, const ExtractedNet*> subject_anon;
  for (const auto& [name, net] : subject.nets)
    if (!net.named) subject_anon[Netlist::signature(net)] = &net;

  std::set<std::string> matched_subject;

  for (const auto& [name, gnet] : golden.nets) {
    const ExtractedNet* snet = nullptr;
    if (gnet.named) {
      auto it = subject.nets.find(name);
      if (it != subject.nets.end()) snet = &it->second;
    } else {
      auto it = subject_anon.find(Netlist::signature(gnet));
      if (it != subject_anon.end()) snet = it->second;
    }
    if (!snet) {
      // Single-connection anonymous nets (dangling pins) are noise; still
      // report named ones and multi-pin anonymous ones.
      if (gnet.named || gnet.connections.size() > 1)
        diffs.push_back({NetlistDiff::Kind::MissingNet, name,
                         "connections: " + Netlist::signature(gnet)});
      continue;
    }
    matched_subject.insert(snet->canonical);
    if (gnet.connections != snet->connections) {
      diffs.push_back({NetlistDiff::Kind::ConnectionChange, name,
                       "golden{" + Netlist::signature(gnet) + "} subject{" +
                           Netlist::signature(*snet) + "}"});
    }
    if (gnet.is_port != snet->is_port ||
        (gnet.is_port && gnet.port_dir != snet->port_dir)) {
      diffs.push_back({NetlistDiff::Kind::PortChange, name,
                       "golden port=" + std::to_string(gnet.is_port) +
                           " subject port=" + std::to_string(snet->is_port)});
    }
    if (gnet.global != snet->global) {
      diffs.push_back({NetlistDiff::Kind::GlobalChange, name,
                       "golden global=" + std::to_string(gnet.global) +
                           " subject global=" +
                           std::to_string(snet->global)});
    }
  }

  for (const auto& [name, snet] : subject.nets) {
    if (matched_subject.count(name)) continue;
    bool matched_named = snet.named && golden.nets.count(name);
    if (matched_named) continue;  // handled above
    if (snet.named || snet.connections.size() > 1)
      diffs.push_back({NetlistDiff::Kind::ExtraNet, name,
                       "connections: " + Netlist::signature(snet)});
  }
  return diffs;
}

}  // namespace interop::sch
