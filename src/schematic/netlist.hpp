#pragma once
// Connectivity extraction: derive a netlist from sheet geometry under a
// dialect's rules. This is how schematic tools really work, and it is why
// migrating drawings between tools can silently change the circuit — the
// same picture means different connectivity under different conventions.
//
// Rules implemented (per dialect flags):
//  - wire segments connect where endpoints coincide, or where an endpoint
//    lands on another segment's interior AND a junction dot is present;
//  - instance pins connect to any wire passing through the pin position;
//  - labels name the connected wire group they sit on; bus-range labels fan
//    the group out into per-bit nets;
//  - same-named groups on different pages join implicitly (Viewlogic) or
//    only through off-page connector instances (Composer);
//  - global-net symbols and global-suffix names join design-wide;
//  - hierarchy ports come from HierPort instances (Composer) or from labels
//    matching the cell's symbol pins (Viewlogic).

#include <map>
#include <set>
#include <string>
#include <vector>

#include "base/diagnostics.hpp"
#include "schematic/busref.hpp"
#include "schematic/dialect.hpp"
#include "schematic/model.hpp"

namespace interop::sch {

/// One (instance, pin) attachment.
struct NetConnection {
  std::string instance;
  std::string pin;

  friend bool operator==(const NetConnection&, const NetConnection&) = default;
  friend auto operator<=>(const NetConnection&, const NetConnection&) = default;
};

/// An extracted net (one canonical bit).
struct ExtractedNet {
  std::string canonical;            ///< canonical bit name ("A[3]", "clk")
  bool named = false;               ///< false for auto-named dangling groups
  bool global = false;
  bool is_port = false;
  PinDir port_dir = PinDir::Inout;
  std::set<NetConnection> connections;
};

/// Extraction result for one cell.
struct Netlist {
  std::string cell;
  /// Keyed by canonical name (auto names look like "$anon17").
  std::map<std::string, ExtractedNet> nets;

  /// Connection signature used to match anonymous nets between tools:
  /// sorted "inst.pin" list joined by '|'.
  static std::string signature(const ExtractedNet& net);
};

/// Extract the netlist of `sch` within `design` under `dialect` rules.
/// Dangling pins and floating labeled wires are reported through `diags`.
Netlist extract_netlist(const Design& design, const Schematic& sch,
                        const Dialect& dialect,
                        base::DiagnosticEngine& diags);

/// A single difference found by compare_netlists.
struct NetlistDiff {
  enum class Kind {
    MissingNet,        ///< net present in golden, absent in subject
    ExtraNet,          ///< net present in subject only
    ConnectionChange,  ///< same net, different pin set
    PortChange,        ///< port-ness or direction differs
    GlobalChange,      ///< global-ness differs
  };
  Kind kind;
  std::string net;
  std::string detail;
};

std::string to_string(NetlistDiff::Kind k);

/// Independent verification (the Exar requirement): compare two extracted
/// netlists. Named nets match by canonical name; anonymous nets match by
/// connection signature. Returns an empty vector when electrically equal.
std::vector<NetlistDiff> compare_netlists(const Netlist& golden,
                                          const Netlist& subject);

}  // namespace interop::sch
