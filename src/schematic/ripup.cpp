#include "schematic/ripup.hpp"

#include <algorithm>
#include <set>
#include <vector>

namespace interop::sch {

namespace {

/// Indices of all segments transitively connected (by shared endpoints or
/// junction-dotted interior contacts) to any segment in `seeds`.
std::set<std::size_t> flood_net(const Sheet& sheet,
                                const std::set<std::size_t>& seeds) {
  std::set<std::size_t> seen = seeds;
  std::vector<std::size_t> work(seeds.begin(), seeds.end());
  auto joined = [&sheet](const Segment& a, const Segment& b) {
    if (a.a == b.a || a.a == b.b || a.b == b.a || a.b == b.b) return true;
    for (const Point& j : sheet.junctions)
      if (a.contains(j) && b.contains(j)) return true;
    return false;
  };
  while (!work.empty()) {
    std::size_t cur = work.back();
    work.pop_back();
    for (std::size_t i = 0; i < sheet.wires.size(); ++i) {
      if (seen.count(i)) continue;
      if (joined(sheet.wires[cur], sheet.wires[i])) {
        seen.insert(i);
        work.push_back(i);
      }
    }
  }
  return seen;
}

/// Route from `from` to `to` with at most two axis-parallel segments,
/// preferring a corner outside `avoid`. Appends to sheet.wires.
std::int64_t route_l(Sheet& sheet, const Point& from, const Point& to,
                     const Rect& avoid, RipupStats& stats) {
  if (from == to) return 0;
  if (from.x == to.x || from.y == to.y) {
    sheet.wires.push_back({from, to});
    ++stats.segments_rerouted;
    return base::manhattan(from, to);
  }
  Point corner1{to.x, from.y};
  Point corner2{from.x, to.y};
  Point corner = avoid.contains(corner1) && !avoid.contains(corner2)
                     ? corner2
                     : corner1;
  sheet.wires.push_back({from, corner});
  sheet.wires.push_back({corner, to});
  stats.segments_rerouted += 2;
  return base::manhattan(from, corner) + base::manhattan(corner, to);
}

}  // namespace

bool replace_component(Sheet& sheet, const std::string& inst_name,
                       const SymbolMapEntry& entry, const SymbolDef& from_def_,
                       const SymbolDef& to_def, RipupPolicy policy,
                       RipupStats& stats, base::DiagnosticEngine& diags) {
  auto idx = sheet.find_instance(inst_name);
  if (!idx) return false;
  Instance& inst = sheet.instances[*idx];
  const SymbolDef* from_def = &from_def_;

  // Old pin endpoints, in source-pin order.
  struct PinWork {
    std::string from_pin;
    std::string to_pin;
    Point old_pos;
    std::vector<std::size_t> ripped;   ///< segment indices ripped at this pin
    std::vector<Point> stubs;          ///< far endpoints to reroute from
  };
  std::vector<PinWork> work;
  std::set<std::size_t> seed_segments;
  for (const SymbolPin& pin : from_def->pins) {
    PinWork w;
    w.from_pin = pin.name;
    w.to_pin = SymbolMap::map_pin(entry, pin.name);
    w.old_pos = inst.placement.apply(pin.pos);
    for (std::size_t i = 0; i < sheet.wires.size(); ++i) {
      const Segment& s = sheet.wires[i];
      if (s.a == w.old_pos || s.b == w.old_pos) {
        w.ripped.push_back(i);
        w.stubs.push_back(s.a == w.old_pos ? s.b : s.a);
        seed_segments.insert(i);
      }
    }
    work.push_back(std::move(w));
  }

  // What the naive policy would rip: the entire nets touching the instance.
  std::set<std::size_t> full = flood_net(sheet, seed_segments);
  stats.fullnet_would_rip += full.size();

  const std::set<std::size_t>& to_rip =
      policy == RipupPolicy::Minimal ? seed_segments : full;
  stats.segments_ripped += to_rip.size();

  // FullNet must re-enter ALL the wiring it destroyed, per net: anchors are
  // the points the old net touched besides the replaced pins (other pins,
  // labels, leaf ends). They are chained back together after replacement.
  struct NetRebuild {
    std::string to_pin;            ///< replaced pin this net attaches to
    std::vector<std::string> other_pins;  ///< more replaced pins on this net
    std::vector<Point> anchors;
  };
  std::vector<NetRebuild> rebuilds;
  if (policy == RipupPolicy::FullNet) {
    std::set<std::size_t> assigned;
    for (const PinWork& w : work) {
      if (w.ripped.empty()) continue;
      std::set<std::size_t> seeds(w.ripped.begin(), w.ripped.end());
      std::set<std::size_t> group = flood_net(sheet, seeds);
      // Skip groups already rebuilt from another pin (same net on 2 pins).
      bool fresh = true;
      for (std::size_t i : group)
        if (assigned.count(i)) fresh = false;
      if (!fresh) continue;
      assigned.insert(group.begin(), group.end());

      NetRebuild rb;
      rb.to_pin = w.to_pin;
      // Endpoint usage count within the group.
      std::map<Point, int> uses;
      for (std::size_t i : group) {
        ++uses[sheet.wires[i].a];
        ++uses[sheet.wires[i].b];
      }
      std::set<Point> old_pins;
      for (const PinWork& ww : work) old_pins.insert(ww.old_pos);
      // Other replaced pins on this same net rejoin through the chain.
      for (const PinWork& ww : work) {
        if (&ww == &w || ww.ripped.empty()) continue;
        if (uses.count(ww.old_pos)) rb.other_pins.push_back(ww.to_pin);
      }
      for (const auto& [pt, count] : uses) {
        if (old_pins.count(pt)) continue;   // the replaced pins themselves
        if (count == 1) rb.anchors.push_back(pt);  // leaf: pin/label/end
      }
      // Label points must stay electrically attached, wherever they sat on
      // the old wiring (leaf, tee, or interior).
      for (const NetLabel& label : sheet.labels) {
        bool on_group = false;
        for (std::size_t i : group)
          if (sheet.wires[i].contains(label.at)) on_group = true;
        if (on_group && !old_pins.count(label.at))
          rb.anchors.push_back(label.at);
      }
      std::sort(rb.anchors.begin(), rb.anchors.end());
      rb.anchors.erase(std::unique(rb.anchors.begin(), rb.anchors.end()),
                       rb.anchors.end());
      rebuilds.push_back(std::move(rb));
    }
  }

  // Remove ripped segments (descending index order keeps indices valid).
  std::vector<std::size_t> ripped(to_rip.begin(), to_rip.end());
  std::sort(ripped.rbegin(), ripped.rend());
  for (std::size_t i : ripped)
    sheet.wires.erase(sheet.wires.begin() + static_cast<std::ptrdiff_t>(i));

  // Re-place the instance with the mapped symbol.
  inst.symbol = entry.to;
  inst.placement = Transform(entry.rotation, entry.origin_offset) *
                   inst.placement;

  // Reroute each stub to its pin's new position.
  Rect body = inst.placement.apply(to_def.body);

  if (policy == RipupPolicy::FullNet) {
    // Chain each destroyed net back together: new pin -> anchor1 -> ... .
    for (const NetRebuild& rb : rebuilds) {
      const SymbolPin* new_pin = to_def.find_pin(rb.to_pin);
      if (!new_pin) {
        diags.error("pin-map-missing",
                    "instance " + inst.name + ": target symbol " +
                        to_def.key.str() + " has no pin '" + rb.to_pin + "'",
                    {"sch.replace", inst.name});
        continue;
      }
      Point cur = inst.placement.apply(new_pin->pos);
      std::vector<Point> chain = rb.anchors;
      for (const std::string& other : rb.other_pins) {
        if (const SymbolPin* p = to_def.find_pin(other))
          chain.push_back(inst.placement.apply(p->pos));
      }
      for (const Point& anchor : chain) {
        if (cur == anchor) continue;
        // Detour through a private channel lane: the lane y is globally
        // unique, so rebuilt chains can never share a wire endpoint with
        // any other net's wiring.
        std::int64_t lane = stats.next_rebuild_lane;
        stats.next_rebuild_lane -= 2;
        Point down_a{cur.x, lane};
        Point down_b{anchor.x, lane};
        sheet.wires.push_back({cur, down_a});
        ++stats.segments_rerouted;
        stats.reroute_length += base::manhattan(cur, down_a);
        if (down_a != down_b) {
          sheet.wires.push_back({down_a, down_b});
          ++stats.segments_rerouted;
          stats.reroute_length += base::manhattan(down_a, down_b);
        }
        sheet.wires.push_back({down_b, anchor});
        ++stats.segments_rerouted;
        stats.reroute_length += base::manhattan(down_b, anchor);
        cur = anchor;
      }
    }
    ++stats.instances_replaced;
    return true;
  }

  for (const PinWork& w : work) {
    const SymbolPin* new_pin = to_def.find_pin(w.to_pin);
    if (!new_pin) {
      if (!w.stubs.empty())
        diags.error("pin-map-missing",
                    "instance " + inst.name + ": target symbol " +
                        to_def.key.str() + " has no pin '" + w.to_pin +
                        "' (mapped from '" + w.from_pin + "')",
                    {"sch.replace", inst.name});
      continue;
    }
    Point new_pos = inst.placement.apply(new_pin->pos);
    for (const Point& stub : w.stubs) {
      stats.reroute_length += route_l(sheet, stub, new_pos, body, stats);
    }
    // More than one stub converging on the pin needs a junction dot so the
    // rejoined wires stay electrically one net.
    if (w.stubs.size() > 1) sheet.junctions.push_back(new_pos);
  }

  ++stats.instances_replaced;
  return true;
}

double graphical_similarity(const Sheet& before, const Sheet& after) {
  if (before.wires.empty() && before.instances.empty()) return 1.0;

  std::size_t kept_wires = 0;
  for (const Segment& w : before.wires) {
    if (std::find(after.wires.begin(), after.wires.end(), w) !=
        after.wires.end())
      ++kept_wires;
  }
  std::size_t kept_inst = 0;
  for (const Instance& inst : before.instances) {
    auto idx = after.find_instance(inst.name);
    if (idx && after.instances[*idx].placement.offset() ==
                   inst.placement.offset())
      ++kept_inst;
  }
  double wire_score = before.wires.empty()
                          ? 1.0
                          : double(kept_wires) / double(before.wires.size());
  double inst_score =
      before.instances.empty()
          ? 1.0
          : double(kept_inst) / double(before.instances.size());
  return 0.5 * (wire_score + inst_score);
}

}  // namespace interop::sch
