#pragma once
// Component replacement with minimal net rip-up — Figure 1 of the paper.
//
// Replacing a Viewlogic primitive with a Cadence library component means the
// symbol body and pin positions change. The paper's requirement: rip up
// *specific* components "along with the segments of the nets connected to
// the pins of those components", reroute those segments to the replacement
// pins, minimize the number of ripped segments, and keep the result
// graphically similar to the original.

#include <cstdint>
#include <map>
#include <string>

#include "base/diagnostics.hpp"
#include "schematic/mapping.hpp"
#include "schematic/model.hpp"

namespace interop::sch {

/// How to choose which wires to rip when replacing a component.
enum class RipupPolicy {
  /// Rip only segments with an endpoint on a replaced pin (paper approach).
  Minimal,
  /// Rip every segment of every net touching the instance (naive baseline).
  FullNet,
};

struct RipupStats {
  std::size_t instances_replaced = 0;
  std::size_t segments_ripped = 0;
  std::size_t segments_rerouted = 0;
  /// What FullNet would have ripped, for the same replacements (always
  /// filled, regardless of policy, so the two can be compared in one run).
  std::size_t fullnet_would_rip = 0;
  /// Total added wire length during reroute, in grid units.
  std::int64_t reroute_length = 0;
  /// FullNet rebuilds route every hop through its own channel lane so that
  /// rebuilt nets cannot short each other; this allocates the lanes.
  std::int64_t next_rebuild_lane = -1001;
};

/// Replace instance `inst_name` on `sheet` according to `entry`, where the
/// instance currently uses `from_def` and becomes `to_def`. Pins are matched
/// through entry.pin_map; a source pin whose mapped name is missing on the
/// target symbol is reported as an error and its wires are left dangling.
///
/// Returns false when the instance cannot be found.
bool replace_component(Sheet& sheet, const std::string& inst_name,
                       const SymbolMapEntry& entry, const SymbolDef& from_def,
                       const SymbolDef& to_def, RipupPolicy policy,
                       RipupStats& stats, base::DiagnosticEngine& diags);

/// Graphical similarity between a sheet before and after an edit: the
/// fraction of original wire segments still present, weighted with the
/// fraction of instances whose placement is unchanged. 1.0 = identical.
double graphical_similarity(const Sheet& before, const Sheet& after);

}  // namespace interop::sch
