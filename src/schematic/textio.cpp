#include "schematic/textio.hpp"

#include <sstream>
#include <stdexcept>

#include "al/reader.hpp"

namespace interop::sch {

namespace {

std::string quoted(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

void write_props(std::ostringstream& os, const base::PropertySet& props,
                 const std::string& indent) {
  for (const auto& [name, value] : props) {
    os << indent << "(prop " << quoted(name) << ' ';
    if (value.is_int())
      os << "int " << value.as_int();
    else if (value.is_double())
      os << "dbl " << value.as_double();
    else if (value.is_bool())
      os << "bool " << (value.as_bool() ? 1 : 0);
    else
      os << "str " << quoted(value.text());
    os << ")\n";
  }
}

void write_text(std::ostringstream& os, const char* tag, const TextLabel& t,
                const std::string& indent) {
  os << indent << '(' << tag << ' ' << quoted(t.text) << ' ' << t.origin.x
     << ' ' << t.origin.y << ' ' << t.height << ' ' << t.baseline_offset
     << ' ' << base::to_string(t.orient) << ")\n";
}

const char* role_name(SymbolRole r) {
  switch (r) {
    case SymbolRole::Component: return "component";
    case SymbolRole::HierPort: return "hier-port";
    case SymbolRole::OffPage: return "off-page";
    case SymbolRole::GlobalNet: return "global-net";
  }
  return "component";
}

const char* dir_name(PinDir d) {
  switch (d) {
    case PinDir::Input: return "input";
    case PinDir::Output: return "output";
    case PinDir::Inout: return "inout";
  }
  return "inout";
}

}  // namespace

std::string write_design(const Design& design) {
  std::ostringstream os;
  os << "(design\n";
  os << "  (grid " << design.grid().pitch().num() << ' '
     << design.grid().pitch().den() << ")\n";

  for (const auto& [key, def] : design.symbols()) {
    os << "  (symbol (key " << quoted(key.lib) << ' ' << quoted(key.cell)
       << ' ' << quoted(key.view) << ")\n";
    os << "    (role " << role_name(def.role) << ")\n";
    os << "    (body " << def.body.lo().x << ' ' << def.body.lo().y << ' '
       << def.body.hi().x << ' ' << def.body.hi().y << ")\n";
    os << "    (grid " << def.grid.pitch().num() << ' '
       << def.grid.pitch().den() << ")\n";
    for (const SymbolPin& pin : def.pins)
      os << "    (pin " << quoted(pin.name) << ' ' << pin.pos.x << ' '
         << pin.pos.y << ' ' << dir_name(pin.dir) << ")\n";
    write_props(os, def.default_props, "    ");
    os << "  )\n";
  }

  for (const auto& [cell, sch] : design.schematics()) {
    os << "  (schematic " << quoted(cell) << "\n";
    write_props(os, sch.props, "    ");
    for (const Sheet& sheet : sch.sheets) {
      os << "    (sheet " << sheet.number << "\n";
      os << "      (frame " << sheet.frame.lo().x << ' ' << sheet.frame.lo().y
         << ' ' << sheet.frame.hi().x << ' ' << sheet.frame.hi().y << ")\n";
      for (const Instance& inst : sheet.instances) {
        os << "      (instance " << quoted(inst.name) << " (key "
           << quoted(inst.symbol.lib) << ' ' << quoted(inst.symbol.cell)
           << ' ' << quoted(inst.symbol.view) << ") (place "
           << base::to_string(inst.placement.orient()) << ' '
           << inst.placement.offset().x << ' ' << inst.placement.offset().y
           << ")\n";
        write_props(os, inst.props, "        ");
        for (const TextLabel& t : inst.attached_text)
          write_text(os, "text", t, "        ");
        os << "      )\n";
      }
      for (const Segment& w : sheet.wires)
        os << "      (wire " << w.a.x << ' ' << w.a.y << ' ' << w.b.x << ' '
           << w.b.y << ")\n";
      for (const Point& j : sheet.junctions)
        os << "      (junction " << j.x << ' ' << j.y << ")\n";
      for (const NetLabel& l : sheet.labels) {
        os << "      (label " << quoted(l.text) << ' ' << l.at.x << ' '
           << l.at.y << "\n";
        write_text(os, "visual", l.visual, "        ");
        os << "      )\n";
      }
      for (const TextLabel& t : sheet.notes)
        write_text(os, "note", t, "      ");
      os << "    )\n";
    }
    os << "  )\n";
  }
  os << ")\n";
  return os.str();
}

namespace {

using al::Value;

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("schematic read: " + what);
}

const std::string& head_of(const Value& v) {
  if (!v.is_list() || v.as_list().empty() || !v.as_list()[0].is_symbol())
    fail("expected a tagged list");
  return v.as_list()[0].as_symbol().name;
}

std::int64_t num_at(const Value& v, std::size_t i) {
  const auto& l = v.as_list();
  if (i >= l.size() || !l[i].is_int()) fail("expected integer field");
  return l[i].as_int();
}

std::string str_at(const Value& v, std::size_t i) {
  const auto& l = v.as_list();
  if (i >= l.size() || !l[i].is_string()) fail("expected string field");
  return l[i].as_string();
}

std::string sym_at(const Value& v, std::size_t i) {
  const auto& l = v.as_list();
  if (i >= l.size() || !l[i].is_symbol()) fail("expected symbol field");
  return l[i].as_symbol().name;
}

base::PropertyValue read_prop_value(const Value& v) {
  std::string type = sym_at(v, 2);
  if (type == "int") return base::PropertyValue(num_at(v, 3));
  if (type == "bool") return base::PropertyValue(num_at(v, 3) != 0);
  if (type == "dbl") {
    const auto& l = v.as_list();
    if (l.size() > 3 && l[3].is_number())
      return base::PropertyValue(l[3].as_number());
    fail("expected numeric dbl field");
  }
  return base::PropertyValue(str_at(v, 3));
}

TextLabel read_text(const Value& v) {
  TextLabel t;
  t.text = str_at(v, 1);
  t.origin = {num_at(v, 2), num_at(v, 3)};
  t.height = num_at(v, 4);
  t.baseline_offset = num_at(v, 5);
  auto o = base::orient_from_string(sym_at(v, 6));
  if (!o) fail("bad orient in text");
  t.orient = *o;
  return t;
}

SymbolKey read_key(const Value& v) {
  return {str_at(v, 1), str_at(v, 2), str_at(v, 3)};
}

PinDir read_dir(const std::string& s) {
  if (s == "input") return PinDir::Input;
  if (s == "output") return PinDir::Output;
  return PinDir::Inout;
}

SymbolRole read_role(const std::string& s) {
  if (s == "hier-port") return SymbolRole::HierPort;
  if (s == "off-page") return SymbolRole::OffPage;
  if (s == "global-net") return SymbolRole::GlobalNet;
  return SymbolRole::Component;
}

}  // namespace

Design read_design(const std::string& text, base::DiagnosticEngine& diags) {
  std::vector<Value> forms = al::read_all(text);
  if (forms.size() != 1 || head_of(forms[0]) != "design")
    fail("expected a single (design ...) form");

  Design design(base::Grid(base::Rational(1)));
  const auto& items = forms[0].as_list();
  for (std::size_t i = 1; i < items.size(); ++i) {
    const Value& item = items[i];
    const std::string& tag = head_of(item);
    if (tag == "grid") {
      design.set_grid(base::Grid(
          base::Rational(num_at(item, 1), num_at(item, 2))));
    } else if (tag == "symbol") {
      SymbolDef def;
      const auto& fields = item.as_list();
      for (std::size_t f = 1; f < fields.size(); ++f) {
        const Value& field = fields[f];
        const std::string& ftag = head_of(field);
        if (ftag == "key") {
          def.key = read_key(field);
        } else if (ftag == "role") {
          def.role = read_role(sym_at(field, 1));
        } else if (ftag == "body") {
          def.body = Rect({num_at(field, 1), num_at(field, 2)},
                          {num_at(field, 3), num_at(field, 4)});
        } else if (ftag == "grid") {
          def.grid = base::Grid(
              base::Rational(num_at(field, 1), num_at(field, 2)));
        } else if (ftag == "pin") {
          def.pins.push_back({str_at(field, 1),
                              {num_at(field, 2), num_at(field, 3)},
                              read_dir(sym_at(field, 4))});
        } else if (ftag == "prop") {
          def.default_props.set(str_at(field, 1), read_prop_value(field));
        } else {
          diags.warn("unknown-field", "symbol field '" + ftag + "' ignored",
                     {"sch.textio", def.key.str()});
        }
      }
      design.add_symbol(std::move(def));
    } else if (tag == "schematic") {
      Schematic sch;
      sch.cell = str_at(item, 1);
      const auto& fields = item.as_list();
      for (std::size_t f = 2; f < fields.size(); ++f) {
        const Value& field = fields[f];
        const std::string& ftag = head_of(field);
        if (ftag == "prop") {
          sch.props.set(str_at(field, 1), read_prop_value(field));
          continue;
        }
        if (ftag != "sheet") {
          diags.warn("unknown-field",
                     "schematic field '" + ftag + "' ignored",
                     {"sch.textio", sch.cell});
          continue;
        }
        Sheet sheet;
        sheet.number = int(num_at(field, 1));
        const auto& sfields = field.as_list();
        for (std::size_t s = 2; s < sfields.size(); ++s) {
          const Value& sf = sfields[s];
          const std::string& stag = head_of(sf);
          if (stag == "frame") {
            sheet.frame = Rect({num_at(sf, 1), num_at(sf, 2)},
                               {num_at(sf, 3), num_at(sf, 4)});
          } else if (stag == "wire") {
            sheet.wires.push_back({{num_at(sf, 1), num_at(sf, 2)},
                                   {num_at(sf, 3), num_at(sf, 4)}});
          } else if (stag == "junction") {
            sheet.junctions.push_back({num_at(sf, 1), num_at(sf, 2)});
          } else if (stag == "note") {
            sheet.notes.push_back(read_text(sf));
          } else if (stag == "label") {
            NetLabel label;
            label.text = str_at(sf, 1);
            label.at = {num_at(sf, 2), num_at(sf, 3)};
            const auto& lf = sf.as_list();
            for (std::size_t x = 4; x < lf.size(); ++x)
              if (head_of(lf[x]) == "visual") label.visual = read_text(lf[x]);
            sheet.labels.push_back(std::move(label));
          } else if (stag == "instance") {
            Instance inst;
            inst.name = str_at(sf, 1);
            const auto& ifields = sf.as_list();
            for (std::size_t x = 2; x < ifields.size(); ++x) {
              const Value& ifd = ifields[x];
              const std::string& itag = head_of(ifd);
              if (itag == "key") {
                inst.symbol = read_key(ifd);
              } else if (itag == "place") {
                auto o = base::orient_from_string(sym_at(ifd, 1));
                if (!o) fail("bad orient in place");
                inst.placement = Transform(
                    *o, {num_at(ifd, 2), num_at(ifd, 3)});
              } else if (itag == "prop") {
                inst.props.set(str_at(ifd, 1), read_prop_value(ifd));
              } else if (itag == "text") {
                inst.attached_text.push_back(read_text(ifd));
              } else {
                diags.warn("unknown-field",
                           "instance field '" + itag + "' ignored",
                           {"sch.textio", inst.name});
              }
            }
            sheet.instances.push_back(std::move(inst));
          } else {
            diags.warn("unknown-field", "sheet field '" + stag + "' ignored",
                       {"sch.textio", sch.cell});
          }
        }
        sch.sheets.push_back(std::move(sheet));
      }
      design.add_schematic(std::move(sch));
    } else {
      diags.warn("unknown-field", "design field '" + tag + "' ignored",
                 {"sch.textio", ""});
    }
  }
  return design;
}

}  // namespace interop::sch
