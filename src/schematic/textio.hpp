#pragma once
// Schematic persistence: an EDIF-flavoured s-expression file format.
//
// §6 classifies every tool data port by its persistence format; this is the
// workbench's own. The writer emits deterministic s-expressions; the reader
// parses them with the a/L reader (one parser, two uses), so the format is
// exactly as expressive as the object model and round-trips losslessly.

#include <string>

#include "base/diagnostics.hpp"
#include "schematic/model.hpp"

namespace interop::sch {

/// Serialize a whole design (grid, symbols, schematics) to text.
std::string write_design(const Design& design);

/// Parse a design written by write_design(). Throws std::runtime_error on
/// malformed input; recoverable oddities are reported through `diags`.
Design read_design(const std::string& text, base::DiagnosticEngine& diags);

}  // namespace interop::sch
