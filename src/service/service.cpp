#include "service/service.hpp"

#include <optional>
#include <algorithm>
#include <future>
#include <set>
#include <sstream>
#include <thread>

#include "base/diagnostics.hpp"
#include "obs/trace.hpp"
#include "runtime/executor.hpp"
#include "runtime/hash.hpp"
#include "schematic/generator.hpp"
#include "schematic/netlist.hpp"
#include "schematic/textio.hpp"

namespace interop::service {

namespace {

/// One modeled tool run: a fixed invocation latency plus deterministic
/// content derived from the inputs, so identical specs hash to identical
/// cache keys no matter which tenant submits them.
wf::Action flow_tool_action(std::string out, std::vector<std::string> reads,
                            std::uint32_t latency_us) {
  return {out, wf::ActionLanguage::Native,
          [out, reads, latency_us](wf::ActionApi& api) {
            std::string content;
            for (const std::string& r : reads)
              content += api.read_data(r).value_or("?");
            if (latency_us > 0)
              std::this_thread::sleep_for(
                  std::chrono::microseconds(latency_us));
            api.write_data(out, runtime::to_hex(runtime::fnv1a(content)) +
                                    "+");
            return wf::ActionResult{0, ""};
          }};
}

/// The resident "fanout" flow spec: seed -> width parallel tool runs ->
/// sink. The seed feeds the source content, so distinct seeds are
/// distinct cache lineages while equal seeds share one.
wf::FlowTemplate make_fanout_flow(std::uint32_t width,
                                  std::uint32_t latency_us,
                                  std::uint64_t seed) {
  wf::FlowTemplate flow;
  flow.name = "fanout";
  wf::StepDef src;
  src.name = "src";
  src.writes = {"src.out"};
  src.action = {"src", wf::ActionLanguage::Native,
                [seed, latency_us](wf::ActionApi& api) {
                  if (latency_us > 0)
                    std::this_thread::sleep_for(
                        std::chrono::microseconds(latency_us));
                  api.write_data("src.out",
                                 runtime::to_hex(runtime::fnv1a(
                                     "seed:" + std::to_string(seed))));
                  return wf::ActionResult{0, ""};
                }};
  // The action body captures the seed, so the cache identity must too.
  src.content_tag = "service.fanout.src:" + std::to_string(seed);
  flow.steps.push_back(std::move(src));

  wf::StepDef sink;
  sink.name = "sink";
  for (std::uint32_t i = 0; i < width; ++i) {
    std::string name = "w" + std::to_string(i);
    wf::StepDef step;
    step.name = name;
    step.start_after = {"src"};
    step.reads = {"src.out"};
    step.writes = {name + ".out"};
    step.action = flow_tool_action(name + ".out", {"src.out"}, latency_us);
    flow.steps.push_back(std::move(step));
    sink.start_after.push_back(name);
    sink.reads.push_back(name + ".out");
  }
  sink.writes = {"sink.out"};
  sink.action = flow_tool_action("sink.out", sink.reads, latency_us);
  flow.steps.push_back(std::move(sink));
  return flow;
}

Response error_response(std::uint64_t id, std::string why) {
  Response resp;
  resp.id = id;
  resp.status = Status::Error;
  resp.error = std::move(why);
  return resp;
}

}  // namespace

InteropService::InteropService(ServiceOptions opt)
    : opt_(opt), epoch_(std::chrono::steady_clock::now()) {
  // Resident cache, durable when a store directory was configured. A
  // store that cannot open must not take the service down with it — the
  // daemon still serves, just cold after every restart — so the failure
  // degrades to the plain in-memory cache and is surfaced via metrics
  // and store_error().
  if (!opt_.store_dir.empty()) {
    auto persistent = std::make_shared<store::PersistentResultCache>(
        opt_.cache_entries, std::max(1, opt_.cache_shards));
    store::StoreOptions store_opt;
    store_opt.segment_bytes = opt_.store_segment_bytes;
    if (persistent->open(opt_.store_dir, store_opt)) {
      persistent_cache_ = persistent;
      cache_ = persistent;
      metrics_.gauge("service.store.recovered")
          .set(std::int64_t(persistent->recovered()));
    } else {
      store_error_ = persistent->object_store().error();
      metrics_.counter("service.store.open_failures").add();
    }
  }
  if (!cache_)
    cache_ = std::make_shared<runtime::ResultCache>(
        opt_.cache_entries, std::max(1, opt_.cache_shards));

  // Resident tool models: built once, shared read-only by every request.
  dialects_["viewlogic"] = sch::viewlogic_dialect();
  dialects_["composer"] = sch::composer_dialect();
  migration_config_.source = dialects_["viewlogic"];
  migration_config_.target = dialects_["composer"];
  migration_config_.symbol_map = sch::make_standard_symbol_map();
  migration_config_.global_map = sch::make_standard_global_map();
  migration_config_.property_rules = sch::make_standard_property_rules();
  migration_config_.target_symbols = sch::make_target_library();
  migration_config_.al_engine = opt_.al_engine;

  int workers = std::max(1, opt_.workers);
  workers_.reserve(std::size_t(workers));
  for (int i = 0; i < workers; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
  if (opt_.request_timeout_us > 0)
    watchdog_ = std::thread([this] { watchdog_loop(); });
}

InteropService::~InteropService() {
  drain();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_workers_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  if (watchdog_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(wd_mu_);
      wd_stop_ = true;
    }
    wd_cv_.notify_all();
    watchdog_.join();
  }
}

std::uint64_t InteropService::now_us() const {
  return std::uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::steady_clock::now() - epoch_)
                           .count());
}

bool InteropService::submit(Request req, Done done) {
  // Drain is an admin verb, not work: it must land even when the queue is
  // full, and it must not block the submitting session.
  if (req.type == MsgType::Drain) {
    begin_drain();
    Response resp;
    resp.id = req.id;
    resp.body = "draining";
    metrics_.counter("service.admitted").add();
    metrics_.counter("service.completed").add();
    done(std::move(resp));
    return true;
  }

  Response reject;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!draining_ && queued_ < opt_.queue_limit) {
      Pending p;
      p.req = std::move(req);
      p.done = std::move(done);
      p.enqueue_us = now_us();
      const std::string& tenant = p.req.tenant;
      auto [it, fresh] = queues_.try_emplace(tenant);
      if (it->second.empty()) rr_.push_back(tenant);
      (void)fresh;
      it->second.push_back(std::move(p));
      ++queued_;
      metrics_.counter("service.admitted").add();
      metrics_.gauge("service.queue.depth").set(std::int64_t(queued_));
      metrics_.gauge("service.tenants").set(std::int64_t(queues_.size()));
      lock.unlock();
      work_cv_.notify_one();
      return true;
    }
    reject.id = req.id;
    if (draining_) {
      reject.status = Status::Error;
      reject.error = "service draining";
    } else {
      reject.status = Status::Rejected;
      reject.retry_after_us = opt_.retry_after_us;
      reject.error = "queue full";
    }
  }
  metrics_.counter("service.rejected").add();
  if (obs::armed())
    obs::instant("service", "reject",
                 "\"tenant\":\"" + obs::escape_json(req.tenant) +
                     "\",\"reason\":\"" + obs::escape_json(reject.error) +
                     "\"");
  done(std::move(reject));
  return false;
}

Response InteropService::call(Request req) {
  std::promise<Response> promise;
  std::future<Response> future = promise.get_future();
  submit(std::move(req),
         [&promise](Response resp) { promise.set_value(std::move(resp)); });
  return future.get();
}

void InteropService::begin_drain() {
  std::lock_guard<std::mutex> lock(mu_);
  draining_ = true;
}

bool InteropService::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

void InteropService::drain() {
  begin_drain();
  {
    std::unique_lock<std::mutex> lock(mu_);
    drain_cv_.wait(lock, [this] { return queued_ == 0 && in_flight_ == 0; });
  }
  // Quiesced: land any batched store writes so the shutdown path (SIGTERM
  // and SIGINT both end here) leaves the cache fully durable.
  if (persistent_cache_) persistent_cache_->object_store().flush();
}

std::size_t InteropService::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_;
}

int InteropService::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

void InteropService::worker_loop(int worker_id) {
  (void)worker_id;
  for (;;) {
    Pending p;
    std::uint64_t flight_id = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_workers_ || !rr_.empty(); });
      if (stop_workers_ && rr_.empty()) return;
      // Fair claim: take one request from the tenant at the round-robin
      // cursor, then rotate the tenant behind every other waiting tenant.
      std::string tenant = std::move(rr_.front());
      rr_.pop_front();
      auto it = queues_.find(tenant);
      p = std::move(it->second.front());
      it->second.pop_front();
      if (!it->second.empty()) rr_.push_back(tenant);
      --queued_;
      ++in_flight_;
      metrics_.gauge("service.queue.depth").set(std::int64_t(queued_));
      metrics_.gauge("service.in_flight").set(in_flight_);

      Flight flight;
      flight.token = std::make_shared<runtime::CancelToken>();
      flight.deadline_us = opt_.request_timeout_us > 0
                               ? now_us() + opt_.request_timeout_us
                               : 0;
      flight_id = next_flight_id_++;
      flights_.emplace(flight_id, std::move(flight));
    }

    std::uint64_t start_us = now_us();
    metrics_.histogram("service.queue_wait_us")
        .observe(start_us - p.enqueue_us);
    Response resp = handle(p.req, flight_id);
    resp.id = p.req.id;
    finish(std::move(p), std::move(resp), start_us);

    {
      std::lock_guard<std::mutex> lock(mu_);
      flights_.erase(flight_id);
      --in_flight_;
      metrics_.gauge("service.in_flight").set(in_flight_);
    }
    drain_cv_.notify_all();
  }
}

void InteropService::finish(Pending p, Response resp, std::uint64_t start_us) {
  std::uint64_t end_us = now_us();
  metrics_
      .histogram("service.latency_us." + to_string(p.req.type))
      .observe(end_us - p.enqueue_us);
  metrics_.histogram("service.handle_us").observe(end_us - start_us);
  metrics_
      .counter(resp.status == Status::Ok ? "service.completed"
                                         : "service.errors")
      .add();
  p.done(std::move(resp));
}

void InteropService::watchdog_loop() {
  // Coarse periodic scan: granularity is min(10ms, timeout/4), plenty for
  // request-level (ms-scale) deadlines and contention-free when idle.
  std::uint64_t tick_us =
      std::min<std::uint64_t>(10'000, std::max<std::uint64_t>(
                                          100, opt_.request_timeout_us / 4));
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(wd_mu_);
      wd_cv_.wait_for(lock, std::chrono::microseconds(tick_us),
                      [this] { return wd_stop_; });
      if (wd_stop_) return;
    }
    std::uint64_t now = now_us();
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, flight] : flights_) {
      if (flight.deadline_us == 0 || now < flight.deadline_us) continue;
      flight.deadline_us = 0;  // fire once
      metrics_.counter("service.timeouts").add();
      flight.token->cancel();
      // Fired under mu_ so the handler cannot destroy the executor the
      // callback stops while we hold a reference to it.
      if (flight.on_cancel) flight.on_cancel();
    }
  }
}

Response InteropService::handle(const Request& req, std::uint64_t flight_id) {
  obs::Span span("service", "request:" + to_string(req.type),
                 obs::armed() ? "\"tenant\":\"" + obs::escape_json(
                                    req.tenant) +
                                    "\",\"id\":" + std::to_string(req.id)
                              : std::string());
  std::shared_ptr<runtime::CancelToken> token;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = flights_.find(flight_id);
    if (it != flights_.end()) token = it->second.token;
  }
  if (token && token->cancelled())
    return error_response(req.id, "cancelled before start");

  switch (req.type) {
    case MsgType::Ping: {
      Response resp;
      resp.body = "pong";
      return resp;
    }
    case MsgType::Migrate:
      return handle_migrate(req);
    case MsgType::Netlist:
      return handle_netlist(req);
    case MsgType::FlowRun:
      return handle_flow_run(req, flight_id);
    case MsgType::Metrics: {
      Response resp;
      resp.body = metrics_.expose();
      return resp;
    }
    case MsgType::Drain:
      // Unreachable: submit() short-circuits Drain before the queue.
      return error_response(req.id, "drain must not reach the queue");
  }
  return error_response(req.id, "unknown request type");
}

Response InteropService::handle_migrate(const Request& req) {
  Response resp;
  base::DiagnosticEngine diags;
  std::optional<sch::Design> src;
  try {
    src.emplace(sch::read_design(req.design, diags));
  } catch (const std::exception& e) {
    return error_response(req.id, std::string("bad design: ") + e.what());
  }
  sch::MigrationResult result =
      sch::migrate_design(*src, migration_config_, diags);
  base::DiagnosticEngine verify_diags;
  std::vector<sch::NetlistDiff> diffs = sch::verify_migration(
      *src, result.design, migration_config_, verify_diags);
  resp.body = sch::write_design(result.design);
  const sch::MigrationReport& r = result.report;
  resp.counters = {
      {"sheets", r.sheets},
      {"diffs", diffs.size()},
      {"points_rescaled", r.points_rescaled},
      {"labels_translated", r.labels_translated},
      {"hier_connectors", r.hier_connectors_added},
      {"offpage_connectors", r.offpage_connectors_added},
      {"globals_replaced", r.globals_replaced},
      {"props_applied", r.props.added + r.props.deleted + r.props.renamed +
                            r.props.changed + r.props.callbacks_run},
  };
  return resp;
}

Response InteropService::handle_netlist(const Request& req) {
  std::string dialect = req.dialect.empty() ? "viewlogic" : req.dialect;
  auto dit = dialects_.find(dialect);
  if (dit == dialects_.end())
    return error_response(req.id, "unknown dialect: " + dialect);
  base::DiagnosticEngine diags;
  std::optional<sch::Design> design;
  try {
    design.emplace(sch::read_design(req.design, diags));
  } catch (const std::exception& e) {
    return error_response(req.id, std::string("bad design: ") + e.what());
  }
  const sch::Schematic* schematic = design->find_schematic(req.cell);
  if (!schematic)
    return error_response(req.id, "unknown cell: " + req.cell);
  sch::Netlist netlist =
      sch::extract_netlist(*design, *schematic, dit->second, diags);
  std::ostringstream body;
  std::uint64_t connections = 0, ports = 0, globals = 0;
  for (const auto& [name, net] : netlist.nets) {
    body << "net " << name << " pins=" << net.connections.size()
         << " port=" << (net.is_port ? 1 : 0)
         << " global=" << (net.global ? 1 : 0) << "\n";
    connections += net.connections.size();
    if (net.is_port) ++ports;
    if (net.global) ++globals;
  }
  Response resp;
  resp.body = body.str();
  resp.counters = {{"nets", netlist.nets.size()},
                   {"connections", connections},
                   {"ports", ports},
                   {"globals", globals}};
  return resp;
}

Response InteropService::handle_flow_run(const Request& req,
                                         std::uint64_t flight_id) {
  if (!req.flow.empty() && req.flow != "fanout")
    return error_response(req.id, "unknown flow spec: " + req.flow);
  std::uint32_t width = std::clamp<std::uint32_t>(req.width, 1, 256);
  std::uint32_t latency_us =
      std::min<std::uint32_t>(req.latency_us, 1'000'000);

  runtime::ExecutorOptions exec_opt;
  exec_opt.workers = std::max(1, opt_.flow_workers);
  exec_opt.max_batch = std::max<std::size_t>(1, opt_.flow_max_batch);
  exec_opt.batch_threshold_us = opt_.flow_batch_threshold_us;
  exec_opt.work_stealing = opt_.flow_work_stealing;
  runtime::ParallelExecutor executor(
      make_fanout_flow(width, latency_us, req.seed), {},
      std::make_unique<wf::SimpleDataManager>(), exec_opt, cache_);
  std::string err = executor.instantiate({});
  if (!err.empty())
    return error_response(req.id, "instantiate failed: " + err);

  {
    // Let the watchdog stop the inner run if this request times out.
    std::lock_guard<std::mutex> lock(mu_);
    auto it = flights_.find(flight_id);
    if (it != flights_.end()) {
      if (it->second.token->cancelled())
        return error_response(req.id, "cancelled before flow run");
      it->second.on_cancel = [&executor] { executor.request_stop(); };
    }
  }
  runtime::RunStats stats = executor.run();
  {
    // Detach before the executor goes out of scope; the watchdog fires
    // on_cancel under this same mutex, so after this block no cancellation
    // can touch the dead executor.
    std::lock_guard<std::mutex> lock(mu_);
    auto it = flights_.find(flight_id);
    if (it != flights_.end()) it->second.on_cancel = nullptr;
  }

  // Shared-cache telemetry: cumulative across every request and tenant,
  // which is exactly what makes cross-request sharing visible.
  runtime::ResultCache::Stats cache_stats = cache_->stats();
  metrics_.gauge("service.cache.hits").set(std::int64_t(cache_stats.hits));
  metrics_.gauge("service.cache.misses")
      .set(std::int64_t(cache_stats.misses));
  metrics_.gauge("service.cache.entries").set(std::int64_t(cache_->size()));

  Response resp;
  if (stats.stopped)
    return error_response(req.id, "flow run cancelled (timeout or drain)");
  if (!stats.error.empty())
    return error_response(req.id, "flow run failed: " + stats.error);
  resp.counters = {{"steps", std::uint64_t(width) + 2},
                   {"executed", std::uint64_t(stats.executed)},
                   {"attempts", std::uint64_t(stats.attempts)},
                   {"cache_hits", std::uint64_t(stats.cache_hits)},
                   {"failures", std::uint64_t(stats.failures)},
                   {"wall_us", stats.wall_us}};
  return resp;
}

Response LoopbackClient::call(const Request& req) {
  // Client -> server leg, through the real frame scanner.
  FrameReader server_reader;
  server_reader.feed(encode_request(req));
  std::string payload, error;
  if (server_reader.next(&payload, &error) != FrameReader::Result::Frame)
    return error_response(0, "loopback framing: " + error);
  Request decoded;
  if (!decode_request(payload, &decoded, &error))
    return error_response(0, "loopback decode: " + error);

  Response served = service_.call(std::move(decoded));

  // Server -> client leg.
  FrameReader client_reader;
  client_reader.feed(encode_response(served));
  if (client_reader.next(&payload, &error) != FrameReader::Result::Frame)
    return error_response(0, "loopback framing: " + error);
  Response resp;
  if (!decode_response(payload, &resp, &error))
    return error_response(0, "loopback decode: " + error);
  return resp;
}

}  // namespace interop::service
