#pragma once
// The interop service core: the long-lived, multi-tenant request engine
// behind tools/interopd. The paper's claim is that interoperability is a
// *service* problem — tool models, dialect tables, and design-data caches
// must outlive any single tool invocation — so this keeps them resident:
// one MigrationConfig (symbol/property/global tables + target library),
// the dialect registry, and one sharded content-addressed ResultCache are
// built at startup and shared across every request from every tenant.
//
// Request pipeline: submit() runs admission control (bounded queue —
// beyond the limit the request is *rejected with a retry-after hint*, the
// §5 answer to graceful degradation, instead of letting latency collapse),
// then parks the request on its tenant's FIFO queue. A fixed worker pool
// drains tenants round-robin, so one tenant flooding the daemon cannot
// starve another's single request. Each in-flight request is registered
// with a deadline; a watchdog thread fires the request's CancelToken (and
// the inner flow executor's request_stop) past the timeout — the same
// cooperative-cancellation machinery the flow runtime already uses.
//
// Transport-free by design: the core consumes decoded wire::Request
// structs and produces Responses through completion callbacks. The socket
// front end lives in tools/interopd; tests and bench_service drive the
// same core through LoopbackClient, which round-trips every call through
// the real wire codec without any networking.
//
// Observability: every stage is counted in an owned obs::Metrics registry
// (queue depth, busy workers, admitted/rejected/completed, queue-wait and
// per-endpoint latency log2-histograms, shared-cache hits/misses) — the
// Metrics endpoint exposes it — and each request runs under a TraceSession
// span (cat "service") when tracing is armed.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "runtime/cache.hpp"
#include "runtime/retry.hpp"
#include "schematic/migrate.hpp"
#include "service/wire.hpp"
#include "store/persistent_cache.hpp"

namespace interop::service {

struct ServiceOptions {
  /// Request worker pool (each worker serves one request at a time).
  int workers = 4;
  /// Inner ParallelExecutor pool for each FlowRun request.
  int flow_workers = 2;
  /// Scheduler knobs forwarded to that inner executor (see
  /// runtime::ExecutorOptions): batch size cap, cost threshold below
  /// which steps batch (0 = auto-tune from the observed cost
  /// histogram), and whether idle workers steal queued batches.
  std::size_t flow_max_batch = 16;
  std::uint64_t flow_batch_threshold_us = 0;
  bool flow_work_stealing = true;
  /// Admission bound: queued (not yet claimed) requests beyond this are
  /// rejected. 0 means reject everything (useful in tests).
  std::size_t queue_limit = 64;
  /// Backoff hint attached to rejections.
  std::uint64_t retry_after_us = 2000;
  /// Cooperative per-request timeout; 0 disables the watchdog.
  std::uint64_t request_timeout_us = 0;
  /// Resident ResultCache bound (0 = unbounded) and shard count.
  std::size_t cache_entries = 0;
  int cache_shards = 16;
  /// When non-empty, back the resident cache with a crash-consistent
  /// ObjectStore at this directory (store::PersistentResultCache): every
  /// cached step effect is WAL-durable before it is visible, and a
  /// restarted daemon cold-opens into the warm cache a kill -9 would
  /// otherwise have destroyed. An unusable directory degrades to the
  /// plain in-memory cache (counted in service.store.open_failures).
  std::string store_dir;
  /// Segment rotation size for that store.
  std::uint64_t store_segment_bytes = 64ull << 20;
  /// a/L engine for migration callbacks (interopd --al-engine). Bytecode
  /// compiles each callback once per source and replays it across every
  /// migrated object; TreeWalker is the reference interpreter.
  al::Engine al_engine = al::Engine::Bytecode;
};

class InteropService {
 public:
  using Done = std::function<void(Response)>;

  explicit InteropService(ServiceOptions opt = {});
  ~InteropService();  ///< drains (completes queued + in-flight work)

  InteropService(const InteropService&) = delete;
  InteropService& operator=(const InteropService&) = delete;

  /// Admit or reject `req`. On admission, `done` runs later on a worker
  /// thread. On rejection (queue full or draining), `done` runs inline
  /// with a Rejected/Error response and submit returns false.
  bool submit(Request req, Done done);

  /// Synchronous convenience: submit and wait for the response.
  Response call(Request req);

  /// Stop admitting new requests; queued and in-flight work still runs.
  void begin_drain();
  /// True once begin_drain()/drain() has been called (sticky). The daemon
  /// polls this so a wire-level Drain request ends its accept loop.
  bool draining() const;
  /// begin_drain() + wait until every queued and in-flight request has
  /// completed. Idempotent; the destructor calls it.
  void drain();

  obs::Metrics& metrics() { return metrics_; }
  std::shared_ptr<runtime::ResultCache> cache() const { return cache_; }
  /// The persistent cache when ServiceOptions::store_dir was set and the
  /// store opened; nullptr in memory-only mode (including fallback after
  /// an open failure — see store_error()).
  store::PersistentResultCache* persistent_cache() const {
    return persistent_cache_.get();
  }
  /// Why the store failed to open ("" when it opened or was not asked for).
  const std::string& store_error() const { return store_error_; }

  /// Queued (admitted, unclaimed) requests right now.
  std::size_t queued() const;
  /// Requests being served right now.
  int in_flight() const;

 private:
  struct Pending {
    Request req;
    Done done;
    std::uint64_t enqueue_us = 0;
  };
  /// Watchdog registration for one in-flight request.
  struct Flight {
    std::uint64_t deadline_us = 0;
    std::shared_ptr<runtime::CancelToken> token;
    /// Set while a FlowRun's executor is live, so cancellation can also
    /// stop the inner run. Guarded by mu_.
    std::function<void()> on_cancel;
  };

  void worker_loop(int worker_id);
  void watchdog_loop();
  Response handle(const Request& req, std::uint64_t flight_id);
  Response handle_migrate(const Request& req);
  Response handle_netlist(const Request& req);
  Response handle_flow_run(const Request& req, std::uint64_t flight_id);
  void finish(Pending p, Response resp, std::uint64_t start_us);
  std::uint64_t now_us() const;

  ServiceOptions opt_;

  // --- resident tool models (immutable after construction) ---
  std::map<std::string, sch::Dialect> dialects_;
  sch::MigrationConfig migration_config_;
  std::shared_ptr<runtime::ResultCache> cache_;
  /// Set (aliasing cache_) when the store opened; drain() flushes it.
  std::shared_ptr<store::PersistentResultCache> persistent_cache_;
  std::string store_error_;

  obs::Metrics metrics_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;    ///< workers wait for queued work
  std::condition_variable drain_cv_;   ///< drain() waits for quiescence
  /// Per-tenant FIFO queues; `rr_` holds each tenant with queued work
  /// exactly once, in round-robin claim order.
  std::map<std::string, std::deque<Pending>> queues_;
  std::deque<std::string> rr_;
  std::size_t queued_ = 0;
  int in_flight_ = 0;
  bool draining_ = false;
  bool stop_workers_ = false;
  std::map<std::uint64_t, Flight> flights_;
  std::uint64_t next_flight_id_ = 1;

  std::vector<std::thread> workers_;

  std::mutex wd_mu_;
  std::condition_variable wd_cv_;
  bool wd_stop_ = false;
  std::thread watchdog_;

  std::chrono::steady_clock::time_point epoch_;
};

/// In-process transport: drives an InteropService through the real wire
/// codec (encode -> FrameReader -> decode on both legs), so tests and
/// bench_service exercise the exact byte path the daemon speaks, minus
/// the socket. Not thread-safe; use one per client thread.
class LoopbackClient {
 public:
  explicit LoopbackClient(InteropService& service) : service_(service) {}

  /// Round-trip one request. Wire-level failures surface as Status::Error
  /// responses (id 0), mirroring what the daemon would send before
  /// closing the session.
  Response call(const Request& req);

 private:
  InteropService& service_;
};

}  // namespace interop::service
