#include "service/wire.hpp"

#include <cstring>

namespace interop::service {

std::string to_string(MsgType t) {
  switch (t) {
    case MsgType::Ping: return "ping";
    case MsgType::Migrate: return "migrate";
    case MsgType::Netlist: return "netlist";
    case MsgType::FlowRun: return "flow_run";
    case MsgType::Metrics: return "metrics";
    case MsgType::Drain: return "drain";
  }
  return "unknown";
}

std::string to_string(Status s) {
  switch (s) {
    case Status::Ok: return "ok";
    case Status::Error: return "error";
    case Status::Rejected: return "rejected";
  }
  return "unknown";
}

std::uint64_t Response::counter(std::string_view name,
                                std::uint64_t fallback) const {
  for (const auto& [n, v] : counters)
    if (n == name) return v;
  return fallback;
}

namespace {

void put_u32(std::string& out, std::uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = char((v >> (8 * i)) & 0xff);
  out.append(b, 4);
}

void put_u64(std::string& out, std::uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = char((v >> (8 * i)) & 0xff);
  out.append(b, 8);
}

void put_str(std::string& out, std::string_view s) {
  put_u32(out, std::uint32_t(s.size()));
  out.append(s.data(), s.size());
}

/// Bounds-checked payload cursor: every getter fails cleanly at the end of
/// the buffer, so a lying length prefix inside the payload cannot read
/// out of bounds.
class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}

  bool u32(std::uint32_t* v) {
    if (data_.size() - pos_ < 4) return fail("truncated u32");
    std::uint32_t r = 0;
    for (int i = 0; i < 4; ++i)
      r |= std::uint32_t(std::uint8_t(data_[pos_ + i])) << (8 * i);
    pos_ += 4;
    *v = r;
    return true;
  }

  bool u64(std::uint64_t* v) {
    if (data_.size() - pos_ < 8) return fail("truncated u64");
    std::uint64_t r = 0;
    for (int i = 0; i < 8; ++i)
      r |= std::uint64_t(std::uint8_t(data_[pos_ + i])) << (8 * i);
    pos_ += 8;
    *v = r;
    return true;
  }

  bool str(std::string* s) {
    std::uint32_t n = 0;
    if (!u32(&n)) return fail("truncated string length");
    if (data_.size() - pos_ < n) return fail("string length exceeds payload");
    s->assign(data_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  bool done() const { return pos_ == data_.size(); }
  const std::string& error() const { return error_; }

 private:
  bool fail(const char* why) {
    if (error_.empty()) error_ = why;
    return false;
  }

  std::string_view data_;
  std::size_t pos_ = 0;
  std::string error_;
};

/// Wrap an encoded payload in a frame header.
std::string frame(std::string payload) {
  std::string out;
  out.reserve(payload.size() + 12);
  out.append(kWireMagic, 4);
  put_u32(out, kWireVersion);
  put_u32(out, std::uint32_t(payload.size()));
  out += payload;
  return out;
}

bool set_error(std::string* error, const std::string& why) {
  if (error) *error = why;
  return false;
}

}  // namespace

std::string encode_request(const Request& req) {
  std::string p;
  put_u64(p, req.id);
  put_u32(p, std::uint32_t(req.type));
  put_str(p, req.tenant);
  put_str(p, req.design);
  put_str(p, req.cell);
  put_str(p, req.dialect);
  put_str(p, req.flow);
  put_u32(p, req.width);
  put_u32(p, req.latency_us);
  put_u64(p, req.seed);
  return frame(std::move(p));
}

std::string encode_response(const Response& resp) {
  std::string p;
  put_u64(p, resp.id);
  put_u32(p, std::uint32_t(resp.status));
  put_u64(p, resp.retry_after_us);
  put_str(p, resp.error);
  put_str(p, resp.body);
  put_u32(p, std::uint32_t(resp.counters.size()));
  for (const auto& [name, value] : resp.counters) {
    put_str(p, name);
    put_u64(p, value);
  }
  return frame(std::move(p));
}

bool decode_request(std::string_view payload, Request* out,
                    std::string* error) {
  Cursor c(payload);
  Request r;
  std::uint32_t type = 0;
  if (!c.u64(&r.id) || !c.u32(&type) || !c.str(&r.tenant) ||
      !c.str(&r.design) || !c.str(&r.cell) || !c.str(&r.dialect) ||
      !c.str(&r.flow) || !c.u32(&r.width) || !c.u32(&r.latency_us) ||
      !c.u64(&r.seed))
    return set_error(error, "request: " + c.error());
  if (type < std::uint32_t(MsgType::Ping) ||
      type > std::uint32_t(MsgType::Drain))
    return set_error(error, "request: unknown type " + std::to_string(type));
  if (!c.done()) return set_error(error, "request: trailing bytes");
  r.type = MsgType(type);
  *out = std::move(r);
  return true;
}

bool decode_response(std::string_view payload, Response* out,
                     std::string* error) {
  Cursor c(payload);
  Response r;
  std::uint32_t status = 0, n = 0;
  if (!c.u64(&r.id) || !c.u32(&status) || !c.u64(&r.retry_after_us) ||
      !c.str(&r.error) || !c.str(&r.body) || !c.u32(&n))
    return set_error(error, "response: " + c.error());
  if (status > std::uint32_t(Status::Rejected))
    return set_error(error,
                     "response: unknown status " + std::to_string(status));
  // Each counter costs at least 12 bytes on the wire, so a lying count
  // cannot force a large reserve.
  if (n > payload.size() / 12 + 1)
    return set_error(error, "response: counter count exceeds payload");
  r.counters.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string name;
    std::uint64_t value = 0;
    if (!c.str(&name) || !c.u64(&value))
      return set_error(error, "response: " + c.error());
    r.counters.emplace_back(std::move(name), value);
  }
  if (!c.done()) return set_error(error, "response: trailing bytes");
  r.status = Status(status);
  *out = std::move(r);
  return true;
}

void FrameReader::feed(std::string_view bytes) {
  if (bad_) return;  // session is dead; drop everything
  // Compact consumed bytes before growing the buffer.
  if (pos_ > 0 && (pos_ >= buf_.size() || pos_ > 4096)) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(bytes.data(), bytes.size());
}

FrameReader::Result FrameReader::next(std::string* payload,
                                      std::string* error) {
  if (bad_) {
    if (error) *error = bad_reason_;
    return Result::Bad;
  }
  std::size_t avail = buf_.size() - pos_;
  // Validate the magic as soon as it is complete so garbage fails fast,
  // before the (attacker-controlled) length is even read.
  if (avail >= 4 && std::memcmp(buf_.data() + pos_, kWireMagic, 4) != 0) {
    bad_ = true;
    bad_reason_ = "bad frame magic";
    if (error) *error = bad_reason_;
    return Result::Bad;
  }
  if (avail < 12) return Result::NeedMore;
  const auto* h = reinterpret_cast<const std::uint8_t*>(buf_.data() + pos_);
  std::uint32_t version = 0, len = 0;
  for (int i = 0; i < 4; ++i) version |= std::uint32_t(h[4 + i]) << (8 * i);
  for (int i = 0; i < 4; ++i) len |= std::uint32_t(h[8 + i]) << (8 * i);
  if (version != kWireVersion) {
    bad_ = true;
    bad_reason_ = "unsupported wire version " + std::to_string(version);
    if (error) *error = bad_reason_;
    return Result::Bad;
  }
  if (len > kMaxFrameBytes) {
    bad_ = true;
    bad_reason_ = "oversized frame: " + std::to_string(len) + " bytes";
    if (error) *error = bad_reason_;
    return Result::Bad;
  }
  if (avail - 12 < len) return Result::NeedMore;
  payload->assign(buf_.data() + pos_ + 12, len);
  pos_ += 12 + std::size_t(len);
  return Result::Frame;
}

}  // namespace interop::service
