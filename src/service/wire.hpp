#pragma once
// The interopd wire protocol: length-prefixed binary frames carrying typed
// request/response messages, in the same self-describing little-endian
// idiom as the binary trace form (src/obs/trace.cpp) — fixed-width
// integers, u32-length-prefixed strings, a 4-byte magic and a version word
// up front so a foreign reader can identify the stream.
//
// The codec is deliberately standalone: encode/decode work on byte strings
// and an incremental FrameReader, with no sockets anywhere, so the whole
// protocol is unit-testable and the daemon, the in-process loopback used
// by tests/bench_service, and any future transport share one hardened
// parser. Robustness contract: malformed input (bad magic, oversized
// length prefix, truncated frame, garbage payload) must yield a clean
// per-session error — never a crash, never a desynchronized stream that
// misparses later frames.
//
// Frame layout:   'I' 'O' 'S' 'V' | u32 version | u32 payload_len | payload
// Request payload:  u64 id | u32 type | tenant | type-specific fields
// Response payload: u64 id | u32 status | u64 retry_after_us | error |
//                   body | u32 n | n * (name, u64 value)

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace interop::service {

inline constexpr char kWireMagic[4] = {'I', 'O', 'S', 'V'};
inline constexpr std::uint32_t kWireVersion = 1;
/// Admission bound on a single frame's payload; a length prefix above this
/// is a protocol error, not a huge allocation.
inline constexpr std::uint32_t kMaxFrameBytes = 16u << 20;

/// Request types the daemon serves.
enum class MsgType : std::uint32_t {
  Ping = 1,     ///< liveness / round-trip probe
  Migrate = 2,  ///< §2 schematic migration under the resident tool models
  Netlist = 3,  ///< connectivity extraction under a resident dialect
  FlowRun = 4,  ///< §5 flow execution on the shared ResultCache
  Metrics = 5,  ///< text exposition of the service metrics registry
  Drain = 6,    ///< admin: stop admitting, finish in-flight work
};

std::string to_string(MsgType t);

struct Request {
  std::uint64_t id = 0;  ///< client-chosen correlation id, echoed back
  MsgType type = MsgType::Ping;
  std::string tenant;   ///< session key for fair scheduling ("" = anon)
  std::string design;   ///< Migrate/Netlist: sch::write_design() text
  std::string cell;     ///< Netlist: schematic cell to extract
  std::string dialect;  ///< Netlist: "viewlogic" | "composer"
  std::string flow;     ///< FlowRun: resident spec name ("fanout")
  std::uint32_t width = 0;       ///< FlowRun: parallel tool runs
  std::uint32_t latency_us = 0;  ///< FlowRun: modeled per-tool latency
  std::uint64_t seed = 0;        ///< FlowRun: content seed (cache identity)

  friend bool operator==(const Request&, const Request&) = default;
};

enum class Status : std::uint32_t {
  Ok = 0,
  Error = 1,     ///< request failed (bad payload, unknown cell, timeout)
  Rejected = 2,  ///< admission control shed it; honor retry_after_us
};

std::string to_string(Status s);

struct Response {
  std::uint64_t id = 0;
  Status status = Status::Ok;
  std::uint64_t retry_after_us = 0;  ///< Rejected: client backoff hint
  std::string error;                 ///< Error/Rejected: diagnostic
  std::string body;  ///< migrated design text / net summary / metrics dump
  /// Endpoint counters (executed, cache_hits, nets, diffs, ...).
  std::vector<std::pair<std::string, std::uint64_t>> counters;

  std::uint64_t counter(std::string_view name,
                        std::uint64_t fallback = 0) const;

  friend bool operator==(const Response&, const Response&) = default;
};

/// Serialize a full frame (header + payload).
std::string encode_request(const Request& req);
std::string encode_response(const Response& resp);

/// Parse a frame payload (as yielded by FrameReader). Returns false and
/// sets `error` on malformed input; never throws.
bool decode_request(std::string_view payload, Request* out,
                    std::string* error);
bool decode_response(std::string_view payload, Response* out,
                     std::string* error);

/// Incremental frame scanner for one session's byte stream. feed() bytes
/// as they arrive (in any fragmentation); next() yields complete frame
/// payloads. Any framing error is sticky: the session is desynchronized by
/// definition and must be torn down.
class FrameReader {
 public:
  enum class Result {
    NeedMore,  ///< no complete frame buffered yet
    Frame,     ///< *payload filled with one frame's payload
    Bad,       ///< framing error; *error filled; session is dead
  };

  void feed(std::string_view bytes);
  Result next(std::string* payload, std::string* error);

  /// Bytes buffered but not yet consumed (test hook).
  std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::string buf_;
  std::size_t pos_ = 0;
  bool bad_ = false;
  std::string bad_reason_;
};

}  // namespace interop::service
