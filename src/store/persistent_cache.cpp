#include "store/persistent_cache.hpp"

#include <sstream>

#include "runtime/hash.hpp"

namespace interop::store {

namespace {

/// 'IOCE' — interop cache entry. Journal objects are TSV text starting
/// "interop-journal", which cannot collide with this word.
constexpr std::uint32_t kEntryMagic = 0x45434f49;
constexpr std::uint32_t kEntryVersion = 1;
/// Decode-side cap per string field; cache entries are step effects, not
/// bulk design data, and a corrupt length must not drive an allocation.
constexpr std::uint32_t kMaxField = 256u << 20;

void put_u32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(char((v >> (8 * i)) & 0xff));
}

void put_str(std::string* out, const std::string& s) {
  put_u32(out, std::uint32_t(s.size()));
  *out += s;
}

class Reader {
 public:
  explicit Reader(std::string_view blob) : blob_(blob) {}

  bool u32(std::uint32_t* v) {
    if (pos_ + 4 > blob_.size()) return false;
    std::uint32_t out = 0;
    for (int i = 0; i < 4; ++i)
      out |= std::uint32_t(static_cast<unsigned char>(blob_[pos_ + i]))
             << (8 * i);
    pos_ += 4;
    *v = out;
    return true;
  }

  bool str(std::string* s) {
    std::uint32_t len = 0;
    if (!u32(&len) || len > kMaxField || pos_ + len > blob_.size())
      return false;
    s->assign(blob_.data() + pos_, len);
    pos_ += len;
    return true;
  }

  bool done() const { return pos_ == blob_.size(); }

 private:
  std::string_view blob_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string encode_cache_entry(const runtime::CacheEntry& entry) {
  std::string out;
  put_u32(&out, kEntryMagic);
  put_u32(&out, kEntryVersion);
  put_u32(&out, std::uint32_t(entry.outputs.size()));
  for (const auto& [path, content] : entry.outputs) {
    put_str(&out, path);
    put_str(&out, content);
  }
  put_u32(&out, std::uint32_t(entry.variables.size()));
  for (const auto& [name, value] : entry.variables) {
    put_str(&out, name);
    put_str(&out, value);
  }
  put_str(&out, entry.log);
  return out;
}

bool decode_cache_entry(std::string_view blob, runtime::CacheEntry* out) {
  Reader r(blob);
  std::uint32_t magic = 0, version = 0, n = 0;
  if (!r.u32(&magic) || magic != kEntryMagic) return false;
  if (!r.u32(&version) || version != kEntryVersion) return false;
  runtime::CacheEntry e;
  if (!r.u32(&n)) return false;
  e.outputs.reserve(std::min(n, 1u << 16));
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string path, content;
    if (!r.str(&path) || !r.str(&content)) return false;
    e.outputs.emplace_back(std::move(path), std::move(content));
  }
  if (!r.u32(&n)) return false;
  e.variables.reserve(std::min(n, 1u << 16));
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string name, value;
    if (!r.str(&name) || !r.str(&value)) return false;
    e.variables.emplace_back(std::move(name), std::move(value));
  }
  if (!r.str(&e.log) || !r.done()) return false;
  *out = std::move(e);
  return true;
}

bool PersistentResultCache::open(const std::string& dir, StoreOptions opt) {
  recovered_ = 0;
  skipped_ = 0;
  if (!store_.open(dir, opt)) return false;
  // Replay in first-append order so FIFO eviction in a bounded cache
  // keeps/drops the same entries a never-crashed process would have.
  for (std::uint64_t key : store_.keys_in_order()) {
    auto blob = store_.get(key);
    runtime::CacheEntry entry;
    if (!blob || !decode_cache_entry(*blob, &entry)) {
      ++skipped_;
      continue;
    }
    runtime::ResultCache::store(key, std::move(entry));
    ++recovered_;
  }
  reset_stats();
  return true;
}

void PersistentResultCache::store(std::uint64_t key,
                                  runtime::CacheEntry entry) {
  // Durable first, visible second: once another worker can find() the
  // entry it must already be on disk, or a crash could recover a cache
  // missing results the run observed.
  if (store_.is_open() && !store_.died())
    store_.put(key, encode_cache_entry(entry));
  runtime::ResultCache::store(key, std::move(entry));
}

bool save_journal(ObjectStore& store, const runtime::RunJournal& journal,
                  const std::string& name) {
  std::ostringstream os;
  journal.save(os);
  std::string text = os.str();
  std::uint64_t key = runtime::fnv1a(text);
  if (!store.put(key, text)) return false;
  return store.set_ref("journal/" + name, key);
}

bool load_journal(const ObjectStore& store, const std::string& name,
                  runtime::RunJournal* journal) {
  auto key = store.ref("journal/" + name);
  if (!key) return false;
  auto text = store.get(*key);
  if (!text) return false;
  std::istringstream is(*text);
  return journal->load(is);
}

}  // namespace interop::store
