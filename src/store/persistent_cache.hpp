#pragma once
// Durability adapter between the runtime's ResultCache and the ObjectStore:
// a PersistentResultCache is a drop-in ResultCache (the executor and the
// interop service hold it through the base shared_ptr) whose store() also
// appends the entry to a WAL-backed ObjectStore, and whose open() rebuilds
// the warm in-memory cache from the store in first-append order — so FIFO
// eviction after a cold open behaves exactly as if the process had never
// died. Also home to the journal-on-store glue: a RunJournal rides the
// store as a content-addressed object behind a named ref
// ("journal/<name>"), replacing the ad-hoc TSV files resume flows used to
// depend on.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "runtime/cache.hpp"
#include "runtime/journal.hpp"
#include "store/store.hpp"

namespace interop::store {

/// Binary codec for CacheEntry store payloads. The blob opens with a magic
/// word so cache rebuild can skip unrelated objects (journals, user blobs)
/// sharing the store. Returns false on any malformed input without
/// touching `out` — decode runs against disk bytes, which are
/// checksum-verified but may simply be a different object kind.
std::string encode_cache_entry(const runtime::CacheEntry& entry);
bool decode_cache_entry(std::string_view blob, runtime::CacheEntry* out);

/// ResultCache whose entries survive the process. Every store() appends
/// the entry to the ObjectStore before publishing it in memory (WAL order:
/// durable, then visible); open() replays the store's live cache objects
/// through the base cache in first-append order and then resets the stats,
/// so hit/miss counters reflect run activity, not recovery. A store append
/// failure degrades that entry to memory-only rather than failing the
/// step — durability is an accelerator here, not a correctness gate.
class PersistentResultCache : public runtime::ResultCache {
 public:
  /// Same construction contract as ResultCache (0 = unbounded).
  explicit PersistentResultCache(std::size_t max_entries = 0, int shards = 1)
      : runtime::ResultCache(max_entries, shards) {}

  /// Open/create the backing store and rebuild the warm cache. Returns
  /// false (error in object_store().error()) when the directory is
  /// unusable; the cache still works memory-only in that case.
  bool open(const std::string& dir, StoreOptions opt = {});

  void store(std::uint64_t key, runtime::CacheEntry entry) override;

  /// Entries replayed into memory by the last open().
  std::size_t recovered() const { return recovered_; }
  /// Cache objects present on disk but skipped during rebuild because the
  /// payload did not decode (foreign object kinds share the store).
  std::size_t skipped() const { return skipped_; }

  ObjectStore& object_store() { return store_; }
  const ObjectStore& object_store() const { return store_; }

 private:
  ObjectStore store_;
  std::size_t recovered_ = 0;
  std::size_t skipped_ = 0;
};

/// Persist `journal` into the store as a content-addressed object and bind
/// the named ref "journal/<name>" to it. True once both the object and the
/// ref record are durable.
bool save_journal(ObjectStore& store, const runtime::RunJournal& journal,
                  const std::string& name);

/// Load the journal bound to "journal/<name>". False when the ref is
/// absent, the object is missing/corrupt, or the journal header is
/// malformed (body corruption is fail-soft inside RunJournal::load).
bool load_journal(const ObjectStore& store, const std::string& name,
                  runtime::RunJournal* journal);

}  // namespace interop::store
