#include "store/store.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <set>

#include "runtime/hash.hpp"

namespace interop::store {

namespace {

constexpr char kSegMagic[4] = {'I', 'O', 'S', 'G'};
constexpr std::uint32_t kSegVersion = 1;
constexpr std::size_t kSegHeaderBytes = 8;
/// u64 checksum | u32 kind | u32 payload_len | u64 key
constexpr std::size_t kRecHeaderBytes = 24;
constexpr std::uint32_t kKindPut = 1;
constexpr std::uint32_t kKindRef = 2;
constexpr std::uint32_t kKindTombstone = 3;
/// Sanity bound applied before trusting a decoded length: a flipped bit in
/// payload_len must become "corrupt record", not a 4 GB allocation.
constexpr std::uint32_t kMaxPayload = 256u << 20;

void put_u32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(char((v >> (8 * i)) & 0xff));
}

void put_u64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(char((v >> (8 * i)) & 0xff));
}

std::uint32_t get_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= std::uint32_t(static_cast<unsigned char>(p[i])) << (8 * i);
  return v;
}

std::uint64_t get_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= std::uint64_t(static_cast<unsigned char>(p[i])) << (8 * i);
  return v;
}

/// Serialize one record: checksum word, then the checksummed tail.
std::string encode_record(std::uint32_t kind, std::uint64_t key,
                          std::string_view payload) {
  std::string tail;
  tail.reserve(16 + payload.size());
  put_u32(&tail, kind);
  put_u32(&tail, std::uint32_t(payload.size()));
  put_u64(&tail, key);
  tail.append(payload.data(), payload.size());
  std::string rec;
  rec.reserve(8 + tail.size());
  put_u64(&rec, runtime::fnv1a(tail));
  rec += tail;
  return rec;
}

bool write_all(int fd, const char* data, std::size_t n, std::uint64_t off) {
  std::size_t done = 0;
  while (done < n) {
    ssize_t w = ::pwrite(fd, data + done, n - done, off_t(off + done));
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += std::size_t(w);
  }
  return true;
}

bool read_all(int fd, char* data, std::size_t n, std::uint64_t off) {
  std::size_t done = 0;
  while (done < n) {
    ssize_t r = ::pread(fd, data + done, n - done, off_t(off + done));
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;  // short file
    done += std::size_t(r);
  }
  return true;
}

/// fsync the directory so a freshly created/unlinked segment name is
/// durable too (the classic create-then-crash hole).
void fsync_dir(const std::string& dir) {
  int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd < 0) return;
  ::fsync(dfd);
  ::close(dfd);
}

}  // namespace

ObjectStore::~ObjectStore() { close(); }

std::string ObjectStore::segment_path(std::uint64_t seg_no) const {
  char name[32];
  std::snprintf(name, sizeof(name), "seg-%06llu.iosg",
                static_cast<unsigned long long>(seg_no));
  return dir_ + "/" + name;
}

bool ObjectStore::open(const std::string& dir, StoreOptions opt) {
  std::lock_guard<std::mutex> lock(mu_);
  close_locked();
  dir_ = dir;
  opt_ = opt;
  error_.clear();
  stats_ = Stats{};
  died_ = false;
  death_fault_ = runtime::StoreFaultKind::None;
  append_seq_ = 0;

  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    error_ = "cannot create store directory " + dir_ + ": " + ec.message();
    return false;
  }

  // Enumerate existing segments, lowest number first: recovery replays
  // them in append order so last-wins semantics (refs, tombstones) hold.
  std::vector<std::uint64_t> seg_nos;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    unsigned long long n = 0;
    if (std::sscanf(name.c_str(), "seg-%6llu.iosg", &n) == 1 && n > 0)
      seg_nos.push_back(n);
  }
  if (ec) {
    error_ = "cannot list store directory " + dir_ + ": " + ec.message();
    return false;
  }
  std::sort(seg_nos.begin(), seg_nos.end());

  for (std::uint64_t n : seg_nos) {
    if (!scan_segment_locked(n)) {
      close_locked();
      return false;
    }
  }

  if (seg_nos.empty()) {
    cur_segment_ = 1;
    int fd = ::open(segment_path(1).c_str(), O_RDWR | O_CREAT, 0644);
    if (fd < 0) {
      error_ = "cannot create " + segment_path(1) + ": " +
               std::strerror(errno);
      return false;
    }
    std::string header(kSegMagic, sizeof(kSegMagic));
    put_u32(&header, kSegVersion);
    if (!write_all(fd, header.data(), header.size(), 0)) {
      error_ = "cannot write segment header: " + std::string(std::strerror(errno));
      ::close(fd);
      return false;
    }
    ::fsync(fd);
    fsync_dir(dir_);
    segment_fds_[1] = fd;
    cur_size_ = kSegHeaderBytes;
  } else {
    cur_segment_ = seg_nos.back();
  }

  open_ = true;
  return true;
}

bool ObjectStore::scan_segment_locked(std::uint64_t seg_no) {
  const std::string path = segment_path(seg_no);
  int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    error_ = "cannot open " + path + ": " + std::strerror(errno);
    return false;
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    error_ = "cannot stat " + path + ": " + std::strerror(errno);
    ::close(fd);
    return false;
  }
  std::string buf(std::size_t(st.st_size), '\0');
  if (!buf.empty() && !read_all(fd, buf.data(), buf.size(), 0)) {
    error_ = "cannot read " + path + ": " + std::strerror(errno);
    ::close(fd);
    return false;
  }

  // Header first; a segment without a whole valid header holds nothing
  // trustworthy and is truncated to empty (recreated header on append).
  std::size_t valid_end = 0;
  bool header_ok = buf.size() >= kSegHeaderBytes &&
                   std::memcmp(buf.data(), kSegMagic, 4) == 0 &&
                   get_u32(buf.data() + 4) == kSegVersion;
  if (header_ok) {
    valid_end = kSegHeaderBytes;
    std::size_t pos = kSegHeaderBytes;
    for (;;) {
      if (pos + kRecHeaderBytes > buf.size()) break;  // torn header
      std::uint64_t checksum = get_u64(buf.data() + pos);
      std::uint32_t kind = get_u32(buf.data() + pos + 8);
      std::uint32_t len = get_u32(buf.data() + pos + 12);
      std::uint64_t key = get_u64(buf.data() + pos + 16);
      if (len > kMaxPayload || pos + kRecHeaderBytes + len > buf.size())
        break;  // torn or length-corrupted payload
      std::string_view tail(buf.data() + pos + 8, 16 + len);
      if (runtime::fnv1a(tail) != checksum) break;  // bit flip anywhere
      std::string_view payload(buf.data() + pos + kRecHeaderBytes, len);
      switch (kind) {
        case kKindPut:
          index_[key] = Location{seg_no, pos, len};
          order_.push_back(key);
          break;
        case kKindRef:
          refs_[std::string(payload)] = key;
          break;
        case kKindTombstone:
          index_.erase(key);
          break;
        default:
          // A checksum-clean record of unknown kind means a newer writer
          // or deeper corruption; either way nothing after it is ours.
          goto scan_done;
      }
      ++stats_.recovered_records;
      stats_.recovered_bytes += kRecHeaderBytes + len;
      pos += kRecHeaderBytes + len;
      valid_end = pos;
    }
  }
scan_done:
  if (valid_end < buf.size()) {
    // Physically remove the torn/corrupt tail: recovery must be a fixed
    // point (re-opening scans a clean file) and a later append must not
    // splice new records after garbage bytes.
    if (::ftruncate(fd, off_t(valid_end)) != 0) {
      error_ = "cannot truncate " + path + ": " + std::strerror(errno);
      ::close(fd);
      return false;
    }
    ::fsync(fd);
    stats_.truncated_bytes += buf.size() - valid_end;
    ++stats_.truncated_segments;
  }
  segment_fds_[seg_no] = fd;
  cur_size_ = valid_end;
  return true;
}

void ObjectStore::close() {
  std::lock_guard<std::mutex> lock(mu_);
  close_locked();
}

void ObjectStore::close_locked() {
  for (auto& [no, fd] : segment_fds_) ::close(fd);
  segment_fds_.clear();
  index_.clear();
  order_.clear();
  refs_.clear();
  open_ = false;
  cur_segment_ = 0;
  cur_size_ = 0;
}

bool ObjectStore::is_open() const {
  std::lock_guard<std::mutex> lock(mu_);
  return open_;
}

bool ObjectStore::rotate_locked() {
  std::uint64_t next = cur_segment_ + 1;
  int fd = ::open(segment_path(next).c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) return false;
  std::string header(kSegMagic, sizeof(kSegMagic));
  put_u32(&header, kSegVersion);
  if (!write_all(fd, header.data(), header.size(), 0)) {
    ::close(fd);
    return false;
  }
  ::fsync(fd);
  fsync_dir(dir_);
  segment_fds_[next] = fd;
  cur_segment_ = next;
  cur_size_ = kSegHeaderBytes;
  return true;
}

bool ObjectStore::append_locked(std::uint32_t kind, std::uint64_t key,
                                std::string_view payload, Location* loc) {
  if (!open_ || died_) return false;
  int fd = segment_fds_[cur_segment_];

  // A segment truncated to empty by recovery lost its header too.
  if (cur_size_ < kSegHeaderBytes) {
    std::string header(kSegMagic, sizeof(kSegMagic));
    put_u32(&header, kSegVersion);
    if (!write_all(fd, header.data(), header.size(), 0)) return false;
    ::fsync(fd);
    cur_size_ = kSegHeaderBytes;
  }

  std::string rec = encode_record(kind, key, payload);
  if (cur_size_ + rec.size() > opt_.segment_bytes &&
      cur_size_ > kSegHeaderBytes) {
    if (!rotate_locked()) return false;
    fd = segment_fds_[cur_segment_];
  }

  const std::uint64_t off = cur_size_;
  runtime::StoreFaultKind fault = runtime::StoreFaultKind::None;
  if (faults_) fault = faults_->decide_store(++append_seq_);
  switch (fault) {
    case runtime::StoreFaultKind::TornAppend: {
      // The process died mid-write: a strict prefix of the record is on
      // disk. Leave it there — recovery must detect and truncate it.
      std::size_t torn = faults_->pick_torn_bytes(append_seq_, rec.size());
      write_all(fd, rec.data(), torn, off);
      ::fsync(fd);
      died_ = true;
      death_fault_ = fault;
      return false;
    }
    case runtime::StoreFaultKind::ShortFsync:
      // fsync failed/lied and the machine died: the bytes never reached
      // stable storage. Model "never durable" by not writing them at all
      // past the commit point — the caller was never acked.
      died_ = true;
      death_fault_ = fault;
      return false;
    case runtime::StoreFaultKind::CrashBeforeIndex:
      // Fully durable, then death before the index update / ack.
      if (!write_all(fd, rec.data(), rec.size(), off)) return false;
      ::fsync(fd);
      died_ = true;
      death_fault_ = fault;
      return false;
    case runtime::StoreFaultKind::None:
      break;
  }

  if (!write_all(fd, rec.data(), rec.size(), off)) return false;
  if (opt_.fsync_each && ::fsync(fd) != 0) return false;
  cur_size_ += rec.size();
  ++stats_.appends;
  stats_.appended_bytes += rec.size();
  if (loc) *loc = Location{cur_segment_, off, std::uint32_t(payload.size())};
  return true;
}

bool ObjectStore::put(std::uint64_t key, std::string_view value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!open_ || died_) return false;
  if (index_.count(key)) {
    ++stats_.dedup_hits;
    return true;  // content-addressed: same key, same bytes, already durable
  }
  Location loc;
  if (!append_locked(kKindPut, key, value, &loc)) return false;
  index_[key] = loc;
  order_.push_back(key);
  return true;
}

bool ObjectStore::read_record_locked(const Location& loc,
                                     std::uint64_t expect_key,
                                     std::string* payload) const {
  auto it = segment_fds_.find(loc.segment);
  if (it == segment_fds_.end()) return false;
  std::string buf(kRecHeaderBytes + loc.payload_len, '\0');
  if (!read_all(it->second, buf.data(), buf.size(), loc.offset)) return false;
  std::uint64_t checksum = get_u64(buf.data());
  std::uint64_t key = get_u64(buf.data() + 16);
  std::string_view tail(buf.data() + 8, 16 + loc.payload_len);
  if (runtime::fnv1a(tail) != checksum || key != expect_key) {
    ++stats_.read_checksum_failures;
    return false;
  }
  payload->assign(buf, kRecHeaderBytes, loc.payload_len);
  return true;
}

std::optional<std::string> ObjectStore::get(std::uint64_t key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) return std::nullopt;
  std::string payload;
  if (!read_record_locked(it->second, key, &payload)) return std::nullopt;
  return payload;
}

bool ObjectStore::contains(std::uint64_t key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.count(key) > 0;
}

bool ObjectStore::remove(std::uint64_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!open_ || died_) return false;
  if (!index_.count(key)) return true;
  if (!append_locked(kKindTombstone, key, {}, nullptr)) return false;
  index_.erase(key);
  return true;
}

bool ObjectStore::set_ref(const std::string& name, std::uint64_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!open_ || died_) return false;
  if (!append_locked(kKindRef, key, name, nullptr)) return false;
  refs_[name] = key;
  return true;
}

std::optional<std::uint64_t> ObjectStore::ref(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = refs_.find(name);
  if (it == refs_.end()) return std::nullopt;
  return it->second;
}

std::map<std::string, std::uint64_t> ObjectStore::refs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return refs_;
}

std::vector<std::uint64_t> ObjectStore::keys_in_order() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::uint64_t> out;
  out.reserve(index_.size());
  std::set<std::uint64_t> seen;
  for (std::uint64_t key : order_)
    if (index_.count(key) && seen.insert(key).second) out.push_back(key);
  return out;
}

std::size_t ObjectStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.size();
}

std::map<std::uint64_t, std::string> ObjectStore::contents() const {
  std::map<std::uint64_t, std::string> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, loc] : index_) {
    std::string payload;
    if (read_record_locked(loc, key, &payload))
      out.emplace(key, std::move(payload));
  }
  return out;
}

bool ObjectStore::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!open_ || died_) return false;
  auto it = segment_fds_.find(cur_segment_);
  return it != segment_fds_.end() && ::fsync(it->second) == 0;
}

bool ObjectStore::compact() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!open_ || died_) return false;

  // Write every live record into one fresh segment. The old files stay on
  // disk until the new one is fully durable, so death at any point here
  // recovers either the old state (new segment torn: its valid prefix is
  // a subset re-write of the same content) or the compacted one.
  std::uint64_t new_seg = cur_segment_ + 1;
  const std::string path = segment_path(new_seg);
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  std::string header(kSegMagic, sizeof(kSegMagic));
  put_u32(&header, kSegVersion);
  if (!write_all(fd, header.data(), header.size(), 0)) {
    ::close(fd);
    return false;
  }
  std::uint64_t off = kSegHeaderBytes;
  std::map<std::uint64_t, Location> new_index;
  std::set<std::uint64_t> seen;
  std::vector<std::uint64_t> new_order;
  for (std::uint64_t key : order_) {
    auto it = index_.find(key);
    if (it == index_.end() || !seen.insert(key).second) continue;
    std::string payload;
    if (!read_record_locked(it->second, key, &payload)) {
      ::close(fd);
      ::unlink(path.c_str());
      return false;
    }
    std::string rec = encode_record(kKindPut, key, payload);
    if (!write_all(fd, rec.data(), rec.size(), off)) {
      ::close(fd);
      ::unlink(path.c_str());
      return false;
    }
    new_index[key] = Location{new_seg, off, std::uint32_t(payload.size())};
    new_order.push_back(key);
    off += rec.size();
  }
  for (const auto& [name, key] : refs_) {
    std::string rec = encode_record(kKindRef, key, name);
    if (!write_all(fd, rec.data(), rec.size(), off)) {
      ::close(fd);
      ::unlink(path.c_str());
      return false;
    }
    off += rec.size();
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(path.c_str());
    return false;
  }
  fsync_dir(dir_);

  // Commit: drop the old segments. Death between these unlinks leaves a
  // mix; recovery replays old-then-new in segment order and the new
  // segment's records win/duplicate identically — same contents.
  for (auto& [no, old_fd] : segment_fds_) {
    ::close(old_fd);
    ::unlink(segment_path(no).c_str());
  }
  fsync_dir(dir_);
  segment_fds_.clear();
  segment_fds_[new_seg] = fd;
  index_ = std::move(new_index);
  order_ = std::move(new_order);
  cur_segment_ = new_seg;
  cur_size_ = off;
  ++stats_.compactions;
  return true;
}

ObjectStore::Stats ObjectStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ObjectStore::set_fault_injector(
    std::shared_ptr<runtime::FaultInjector> faults) {
  std::lock_guard<std::mutex> lock(mu_);
  faults_ = std::move(faults);
}

bool ObjectStore::died() const {
  std::lock_guard<std::mutex> lock(mu_);
  return died_;
}

runtime::StoreFaultKind ObjectStore::death_fault() const {
  std::lock_guard<std::mutex> lock(mu_);
  return death_fault_;
}

}  // namespace interop::store
