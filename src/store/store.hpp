#pragma once
// Crash-consistent, content-addressed persistent object store — the
// durability layer under the runtime's memoization and journaling
// (ROADMAP item 4's "versioned design store" foundation). The paper's §4
// conveyance problem is ultimately about design data surviving a round
// trip through an unreliable toolchain; this store is built so a kill -9
// at any byte boundary loses nothing that was acknowledged.
//
// Layout: a directory of append-only segment files (seg-NNNNNN.iosg),
// each an 8-byte header ('IOSG' magic + u32 version) followed by
// checksummed records:
//
//   u64 checksum | u32 kind | u32 payload_len | u64 key | payload
//
// The checksum is FNV-1a (runtime/hash) over everything after it, so a
// torn, truncated, or bit-flipped record can never be mistaken for data.
// Record kinds: Put (key -> payload bytes), Ref (named ref -> key, name in
// the payload), Tombstone (key deleted).
//
// Write-ahead commit protocol: a mutation appends its record, fsyncs the
// segment (the commit point), and only then updates the in-memory index
// and acknowledges the caller. Recovery is one forward scan per segment:
// every record that checksums clean is applied in order (last-wins for
// refs, tombstones erase); the first record that does not ends the
// segment — the file is truncated at the last good offset, so a torn tail
// is physically removed and can never be half-applied later. Committed
// records are always whole (they were fsynced before the ack), so the
// scan recovers exactly the acknowledged state plus, at most, one final
// record that was durable but unacknowledged (crash between fsync and
// index update) — benign for a content-addressed store, where re-putting
// a key is a no-op.
//
// Puts are content-addressed and deduplicated: put() of a key already in
// the index appends nothing. Compaction rewrites live records into a
// fresh segment and deletes the old files; a crash mid-compaction leaves
// the old segments in place (they are only unlinked after the new segment
// is durable), so compaction is also crash-safe.
//
// Fault injection (tests only): an installed runtime::FaultInjector is
// consulted at every append with the 1-based append sequence number; an
// injected StoreFaultKind simulates the process dying at that point
// (TornAppend: a prefix of the record lands; ShortFsync: the bytes never
// reach disk; CrashBeforeIndex: the record is durable but unacked). After
// a fault the store is "dead" — every later mutation fails, exactly like
// a killed process — and the test re-opens the directory to recover.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/fault.hpp"

namespace interop::store {

struct StoreOptions {
  /// Rotate to a fresh segment once the current one exceeds this.
  std::uint64_t segment_bytes = 64ull << 20;
  /// fsync after every append (the WAL commit point). Disabling trades
  /// durability of the tail for throughput — bench/diagnostic only.
  bool fsync_each = true;
};

class ObjectStore {
 public:
  struct Stats {
    std::uint64_t appends = 0;        ///< records durably appended (acked)
    std::uint64_t appended_bytes = 0;
    std::uint64_t dedup_hits = 0;     ///< put() of a key already present
    std::uint64_t recovered_records = 0;  ///< valid records applied by open()
    std::uint64_t recovered_bytes = 0;
    std::uint64_t truncated_bytes = 0;    ///< torn/corrupt bytes dropped
    std::uint64_t truncated_segments = 0; ///< segments cut back by open()
    std::uint64_t read_checksum_failures = 0;  ///< get() hit latent bit rot
    std::uint64_t compactions = 0;
  };

  ObjectStore() = default;
  ~ObjectStore();
  ObjectStore(const ObjectStore&) = delete;
  ObjectStore& operator=(const ObjectStore&) = delete;

  /// Open (creating the directory if needed) and run the recovery scan.
  /// Returns false and sets error() when the directory is unusable; a
  /// corrupt segment is never an error — it is truncated to its valid
  /// prefix and counted in stats().
  bool open(const std::string& dir, StoreOptions opt = {});
  bool is_open() const;
  void close();
  const std::string& error() const { return error_; }
  const std::string& dir() const { return dir_; }

  /// Append-or-dedup. True once the record is durable (or already
  /// present); false when closed, dead, or the write/fsync failed.
  bool put(std::uint64_t key, std::string_view value);
  /// Read back a committed object; re-verifies the record checksum, so
  /// latent on-disk corruption yields nullopt, never garbled bytes.
  std::optional<std::string> get(std::uint64_t key) const;
  bool contains(std::uint64_t key) const;
  /// Tombstone the key (the record is appended; space is reclaimed by
  /// compact()).
  bool remove(std::uint64_t key);

  /// Named refs: a mutable name -> key binding with last-wins semantics.
  bool set_ref(const std::string& name, std::uint64_t key);
  std::optional<std::uint64_t> ref(const std::string& name) const;
  std::map<std::string, std::uint64_t> refs() const;

  /// Live keys in first-append order (recovery preserves it) — the order
  /// PersistentResultCache replays to keep FIFO semantics faithful.
  std::vector<std::uint64_t> keys_in_order() const;
  std::size_t size() const;
  /// Full key -> value dump (test/diff helper; bypasses no checksums).
  std::map<std::uint64_t, std::string> contents() const;

  /// fsync the active segment (a no-op per record when fsync_each is on;
  /// drain paths call it so a batched-write configuration still lands).
  bool flush();
  /// Rewrite live records into a fresh segment and unlink the old ones.
  bool compact();

  Stats stats() const;

  /// Test instrument: consult this injector at every append (see header
  /// comment). A fired fault marks the store dead.
  void set_fault_injector(std::shared_ptr<runtime::FaultInjector> faults);
  /// True once an injected fault "killed" the store.
  bool died() const;
  /// The fault that killed it (None while alive).
  runtime::StoreFaultKind death_fault() const;

 private:
  struct Location {
    std::uint64_t segment = 0;
    std::uint64_t offset = 0;  ///< record start (checksum word)
    std::uint32_t payload_len = 0;
  };

  bool append_locked(std::uint32_t kind, std::uint64_t key,
                     std::string_view payload, Location* loc);
  bool rotate_locked();
  bool scan_segment_locked(std::uint64_t seg_no);
  std::string segment_path(std::uint64_t seg_no) const;
  bool read_record_locked(const Location& loc, std::uint64_t expect_key,
                          std::string* payload) const;
  void close_locked();

  mutable std::mutex mu_;
  std::string dir_;
  std::string error_;
  StoreOptions opt_;
  bool open_ = false;
  bool died_ = false;
  runtime::StoreFaultKind death_fault_ = runtime::StoreFaultKind::None;
  int append_seq_ = 0;  ///< appends attempted (fault-point coordinate)

  std::map<std::uint64_t, int> segment_fds_;  ///< seg_no -> fd (reads)
  std::uint64_t cur_segment_ = 0;             ///< active segment number
  std::uint64_t cur_size_ = 0;                ///< its current byte size

  std::map<std::uint64_t, Location> index_;
  std::vector<std::uint64_t> order_;  ///< live keys, first-append order
  std::map<std::string, std::uint64_t> refs_;
  mutable Stats stats_;  ///< mutable: const reads count checksum failures
  std::shared_ptr<runtime::FaultInjector> faults_;
};

}  // namespace interop::store
