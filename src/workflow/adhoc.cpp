#include "workflow/adhoc.hpp"

#include <algorithm>
#include <set>

namespace interop::wf {

namespace {

/// DataManager proxy forwarding to a shared store, so the hosting Engine
/// (needed only because ActionApi requires one) and the script share data.
class ForwardingDataManager : public DataManager {
 public:
  explicit ForwardingDataManager(DataManager& target) : target_(target) {}
  void write(const std::string& path, std::string content) override {
    target_.write(path, std::move(content));
  }
  std::optional<std::string> read(const std::string& path) const override {
    return target_.read(path);
  }
  std::optional<LogicalTime> timestamp(
      const std::string& path) const override {
    return target_.timestamp(path);
  }
  std::vector<std::string> list() const override { return target_.list(); }

 private:
  DataManager& target_;
};

}  // namespace

AdhocMetrics run_adhoc(const FlowTemplate& flow,
                       const std::vector<std::string>& order,
                       DataManager& data,
                       const std::function<void(DataManager&)>& mid_run_change,
                       int change_after) {
  AdhocMetrics metrics;

  // A real Engine hosting the actions, so ActionApi calls work identically;
  // its "flow" is the same template but the script ignores the engine's
  // scheduling entirely.
  Engine host(flow, {}, std::make_unique<ForwardingDataManager>(data));
  host.instantiate({});

  std::set<std::string> ran;
  std::map<std::string, LogicalTime> finished_at;
  std::map<std::string, bool> failed;

  int position = 0;
  for (const std::string& name : order) {
    if (position++ == change_after && mid_run_change) mid_run_change(data);

    const StepDef* def = flow.find_step(name);
    if (!def) continue;

    // Ordering bug detection: the script runs this before its producers.
    for (const std::string& dep : def->start_after)
      if (!ran.count(dep)) ++metrics.dependency_violations;

    ActionApi api(host, host.instance(), name);
    ActionResult result;
    if (def->action.fn) result = def->action.fn(api);
    ++metrics.steps_run;
    ran.insert(name);
    finished_at[name] = data.now();
    failed[name] = result.exit_code != 0;
  }
  if (position <= change_after && mid_run_change) mid_run_change(data);

  // Post-mortem: stale steps (inputs newer than the run) and status lies.
  for (const StepDef& def : flow.steps) {
    bool stale = false;
    auto it = finished_at.find(def.name);
    if (it != finished_at.end()) {
      for (const std::string& path : def.reads) {
        auto t = data.timestamp(path);
        if (t && *t > it->second) stale = true;
      }
      if (stale) ++metrics.missed_rework;
      // The script prints "done" for everything it ran.
      if (stale || failed[def.name]) ++metrics.status_lies;
    }
  }
  return metrics;
}

}  // namespace interop::wf
