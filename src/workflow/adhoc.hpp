#pragma once
// The baseline §5 contrasts against: "many processes are controlled
// currently via a series of shell scripts and other procedures that are
// held together by the user's own experience about what the procedures do
// and the order in which they are to be executed."
//
// run_adhoc() executes the same step actions in a FIXED order (the user's
// remembered script), with no dependency engine, no finish parking, no
// triggers and no status tracking beyond "the script finished". The T8
// bench measures what that costs.

#include "workflow/engine.hpp"

namespace interop::wf {

struct AdhocMetrics {
  int steps_run = 0;
  /// Steps executed before some start dependency had run (silent ordering
  /// bug in the script).
  int dependency_violations = 0;
  /// Steps whose inputs changed after they ran and were never re-run.
  int missed_rework = 0;
  /// Steps the script reports "done" although they failed or are stale.
  int status_lies = 0;
};

/// Execute `flow`'s steps in `order` against `data`. `mid_run_change` (may
/// be null) is invoked once after `change_after` steps, modelling an
/// upstream edit arriving while the script runs.
AdhocMetrics run_adhoc(const FlowTemplate& flow,
                       const std::vector<std::string>& order,
                       DataManager& data,
                       const std::function<void(DataManager&)>& mid_run_change,
                       int change_after);

}  // namespace interop::wf
