#include "workflow/data.hpp"

namespace interop::wf {

void SimpleDataManager::write(const std::string& path, std::string content) {
  LogicalTime t = tick();
  files_[path] = {std::move(content), t};
  notify(path, t);
}

std::optional<std::string> SimpleDataManager::read(
    const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) return std::nullopt;
  return it->second.content;
}

std::optional<LogicalTime> SimpleDataManager::timestamp(
    const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) return std::nullopt;
  return it->second.time;
}

std::vector<std::string> SimpleDataManager::list() const {
  std::vector<std::string> out;
  for (const auto& [path, entry] : files_) out.push_back(path);
  return out;
}

void VersioningDataManager::write(const std::string& path,
                                  std::string content) {
  LogicalTime t = tick();
  files_[path].push_back({std::move(content), t});
  notify(path, t);
}

std::optional<std::string> VersioningDataManager::read(
    const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end() || it->second.empty()) return std::nullopt;
  return it->second.back().content;
}

std::optional<LogicalTime> VersioningDataManager::timestamp(
    const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end() || it->second.empty()) return std::nullopt;
  return it->second.back().time;
}

std::vector<std::string> VersioningDataManager::list() const {
  std::vector<std::string> out;
  for (const auto& [path, revs] : files_) out.push_back(path);
  return out;
}

std::size_t VersioningDataManager::revision_count(
    const std::string& path) const {
  auto it = files_.find(path);
  return it == files_.end() ? 0 : it->second.size();
}

std::optional<std::string> VersioningDataManager::read_revision(
    const std::string& path, std::size_t rev) const {
  auto it = files_.find(path);
  if (it == files_.end() || rev == 0 || rev > it->second.size())
    return std::nullopt;
  return it->second[rev - 1].content;
}

SynchronizedDataManager::SynchronizedDataManager(
    std::unique_ptr<DataManager> inner)
    : inner_(std::move(inner)) {
  // Re-publish the inner store's change events through the wrapper so
  // engines subscribed to the wrapper see every write. The inner notify
  // runs inside write() below, i.e. under mu_.
  inner_->add_listener(
      [this](const std::string& path, LogicalTime t) { notify(path, t); });
}

void SynchronizedDataManager::write(const std::string& path,
                                    std::string content) {
  std::lock_guard<std::mutex> lock(mu_);
  inner_->write(path, std::move(content));
}

std::optional<std::string> SynchronizedDataManager::read(
    const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  return inner_->read(path);
}

std::optional<LogicalTime> SynchronizedDataManager::timestamp(
    const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  return inner_->timestamp(path);
}

std::vector<std::string> SynchronizedDataManager::list() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inner_->list();
}

LogicalTime SynchronizedDataManager::now() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inner_->now();
}

void VariablePool::set(const std::string& name, std::string value) {
  vars_[name] = std::move(value);
}

std::optional<std::string> VariablePool::get(const std::string& name) const {
  auto it = vars_.find(name);
  if (it == vars_.end()) return std::nullopt;
  return it->second;
}

}  // namespace interop::wf
