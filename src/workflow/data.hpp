#pragma once
// Data management, architecturally separated from workflow management (§5):
// "services that provide each should not be too tightly linked ... In some
// cases UNIX-based utilities such as SCCS, RCS and make can provide an
// adequate level of data management; in other cases a much more
// sophisticated level is required. This decision should be left to the flow
// developer."
//
// DataManager is the plug point. SimpleDataManager is the make-style
// store (content + logical timestamp); VersioningDataManager is the
// SCCS/RCS-style store (full version chains, checkout by revision).

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace interop::wf {

/// Monotonic logical time shared by a whole workflow run.
using LogicalTime = std::uint64_t;

/// Change notification: path + new timestamp.
using DataListener = std::function<void(const std::string&, LogicalTime)>;

/// The abstract data-management service.
class DataManager {
 public:
  virtual ~DataManager() = default;

  /// Store content under `path`. Advances the logical clock.
  virtual void write(const std::string& path, std::string content) = 0;
  /// Latest content, or nullopt when absent.
  virtual std::optional<std::string> read(const std::string& path) const = 0;
  /// Timestamp of the latest write, or nullopt when absent.
  virtual std::optional<LogicalTime> timestamp(
      const std::string& path) const = 0;
  virtual std::vector<std::string> list() const = 0;

  bool exists(const std::string& path) const {
    return timestamp(path).has_value();
  }

  /// Subscribe to writes (the workflow engine's trigger source).
  void add_listener(DataListener fn) { listeners_.push_back(std::move(fn)); }

  virtual LogicalTime now() const { return clock_; }

 protected:
  LogicalTime tick() { return ++clock_; }
  void notify(const std::string& path, LogicalTime t) {
    for (const DataListener& fn : listeners_) fn(path, t);
  }

 private:
  std::vector<DataListener> listeners_;
  LogicalTime clock_ = 0;
};

/// make-style: latest content + timestamp only.
class SimpleDataManager : public DataManager {
 public:
  void write(const std::string& path, std::string content) override;
  std::optional<std::string> read(const std::string& path) const override;
  std::optional<LogicalTime> timestamp(
      const std::string& path) const override;
  std::vector<std::string> list() const override;

 private:
  struct Entry {
    std::string content;
    LogicalTime time;
  };
  std::map<std::string, Entry> files_;
};

/// SCCS/RCS-style: every revision retained.
class VersioningDataManager : public DataManager {
 public:
  void write(const std::string& path, std::string content) override;
  std::optional<std::string> read(const std::string& path) const override;
  std::optional<LogicalTime> timestamp(
      const std::string& path) const override;
  std::vector<std::string> list() const override;

  /// Number of revisions of `path` (0 when absent).
  std::size_t revision_count(const std::string& path) const;
  /// Content of revision `rev` (1-based), or nullopt.
  std::optional<std::string> read_revision(const std::string& path,
                                           std::size_t rev) const;

 private:
  struct Revision {
    std::string content;
    LogicalTime time;
  };
  std::map<std::string, std::vector<Revision>> files_;
};

/// Thread-safe decorator over any DataManager: serializes every operation
/// on an internal mutex so parallel runtime workers (and external threads)
/// can share one store. The wrapped store keeps the logical clock; listener
/// callbacks registered on the wrapper fire under the wrapper's lock, so
/// keep them short and do not call back into the store from them.
class SynchronizedDataManager : public DataManager {
 public:
  explicit SynchronizedDataManager(std::unique_ptr<DataManager> inner);

  void write(const std::string& path, std::string content) override;
  std::optional<std::string> read(const std::string& path) const override;
  std::optional<LogicalTime> timestamp(
      const std::string& path) const override;
  std::vector<std::string> list() const override;
  LogicalTime now() const override;

  /// The wrapped store (e.g. to reach VersioningDataManager extras).
  /// Unsynchronized: only touch it when no other thread is active.
  DataManager& inner() { return *inner_; }

 private:
  std::unique_ptr<DataManager> inner_;
  mutable std::mutex mu_;
};

/// Workflow data variables: metadata proxies "allowing information about
/// the data state and/or value to be stored as metadata separate from the
/// design data" (§5). Owned by the engine, not the data manager.
class VariablePool {
 public:
  void set(const std::string& name, std::string value);
  std::optional<std::string> get(const std::string& name) const;
  bool has(const std::string& name) const { return vars_.count(name) != 0; }
  std::size_t size() const { return vars_.size(); }

 private:
  std::map<std::string, std::string> vars_;
};

}  // namespace interop::wf
