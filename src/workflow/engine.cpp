#include "workflow/engine.hpp"

#include <algorithm>
#include <deque>
#include <functional>
#include <limits>

#include "obs/trace.hpp"

namespace interop::wf {

namespace {

/// Trace one step's state transition as an instant event (category "wf").
void trace_transition(const std::string& step, StepState to,
                      const char* cause) {
  if (!obs::armed()) return;
  obs::instant("wf", "state:" + step,
               "\"to\":\"" + std::string(to_string(to)) + "\",\"cause\":\"" +
                   cause + "\"");
}

}  // namespace

// ----------------------------------------------------------- ToolSession

std::string ToolSession::request(const std::string& cmd) {
  ++requests_;
  history_.push_back(cmd);
  return name_ + " ok: " + cmd + " (#" + std::to_string(requests_) + ")";
}

// ------------------------------------------------------------- ActionApi
//
// Every method that touches engine state takes the engine's concurrency
// guard (a no-op in serial mode), so actions running on parallel runtime
// workers serialize their state access while their own compute overlaps.

void ActionApi::write_data(const std::string& path, std::string content) {
  auto lock = engine_.guard_lock();
  data_writes_.emplace_back(path, content);
  // The write must be attributed to this step so its own output does not
  // re-trigger it; with several steps in flight current_step_ is per-write.
  std::string prev = std::move(engine_.current_step_);
  engine_.current_step_ = step_;
  engine_.data().write(path, std::move(content));
  engine_.current_step_ = std::move(prev);
}

std::optional<std::string> ActionApi::read_data(
    const std::string& path) const {
  auto lock = engine_.guard_lock();
  return engine_.data().read(path);
}

void ActionApi::set_variable(const std::string& name, std::string value) {
  auto lock = engine_.guard_lock();
  var_writes_.emplace_back(name, value);
  engine_.variables().set(name, std::move(value));
}

std::optional<std::string> ActionApi::get_variable(
    const std::string& name) const {
  auto lock = engine_.guard_lock();
  return engine_.variables().get(name);
}

void ActionApi::set_step_state_success() { explicit_state_ = true; }

void ActionApi::set_step_state_failure(const std::string& reason) {
  explicit_state_ = false;
  failure_reason_ = reason;
}

std::string ActionApi::tool_request(const std::string& tool,
                                    const std::string& cmd) {
  auto lock = engine_.guard_lock();
  ++tool_requests_;
  engine_.metrics_.tool_requests++;
  return engine_.tool(tool).request(cmd);
}

// ---------------------------------------------------------------- Engine

Engine::Engine(FlowTemplate main, std::map<std::string, FlowTemplate> subflows,
               std::unique_ptr<DataManager> data, std::string role)
    : main_(std::move(main)),
      subflows_(std::move(subflows)),
      data_(std::move(data)),
      role_(std::move(role)) {
  data_->add_listener([this](const std::string& path, LogicalTime t) {
    on_data_written(path, t);
  });
}

std::string Engine::instantiate(const std::vector<std::string>& blocks) {
  if (std::string err = main_.validate(); !err.empty()) return err;
  for (const auto& [name, tmpl] : subflows_)
    if (std::string err = tmpl.validate(); !err.empty()) return err;

  instance_ = FlowInstance{};
  instance_.template_name = main_.name;
  instance_.blocks = blocks;

  // Expansion: plain steps copy through; a sub-flow step expands into one
  // copy of the sub-template per design block ("blockA:substep"), each
  // inheriting the container's start dependencies. Steps that depended on
  // the container step depend on ALL expanded steps instead.
  std::map<std::string, std::vector<std::string>> expansion;  // container->all
  for (const StepDef& def : main_.steps) {
    if (def.subflow.empty()) {
      StepStatus status;
      status.def = def;
      instance_.steps[def.name] = std::move(status);
      continue;
    }
    auto it = subflows_.find(def.subflow);
    if (it == subflows_.end())
      return "step " + def.name + " references unknown sub-flow " +
             def.subflow;
    std::vector<std::string> all;
    for (const std::string& block : blocks) {
      for (const StepDef& sub : it->second.steps) {
        StepDef expanded = sub;
        expanded.name = block + ":" + sub.name;
        expanded.start_after.clear();
        for (const std::string& dep : sub.start_after)
          expanded.start_after.push_back(block + ":" + dep);
        // Sub-steps with no internal deps inherit the container's deps.
        if (sub.start_after.empty())
          for (const std::string& dep : def.start_after)
            expanded.start_after.push_back(dep);
        expanded.finish_with.clear();
        for (const std::string& dep : sub.finish_with)
          expanded.finish_with.push_back(block + ":" + dep);
        // Block-local data namespace.
        expanded.reads.clear();
        for (const std::string& r : sub.reads)
          expanded.reads.push_back(block + "/" + r);
        expanded.writes.clear();
        for (const std::string& w : sub.writes)
          expanded.writes.push_back(block + "/" + w);
        StepStatus status;
        status.def = expanded;
        status.block = block;
        instance_.steps[expanded.name] = std::move(status);
        all.push_back(expanded.name);
      }
    }
    expansion[def.name] = std::move(all);
  }

  // Rewrite dependencies on container steps.
  for (auto& [name, status] : instance_.steps) {
    std::vector<std::string> rewritten;
    for (const std::string& dep : status.def.start_after) {
      auto it = expansion.find(dep);
      if (it == expansion.end()) {
        rewritten.push_back(dep);
      } else {
        rewritten.insert(rewritten.end(), it->second.begin(),
                         it->second.end());
      }
    }
    status.def.start_after = std::move(rewritten);
  }

  // Topological ranks (longest dependency chain), for downstream-ordered
  // scheduling. The flow validated as a DAG, so this terminates.
  std::function<int(const std::string&)> rank_of =
      [&](const std::string& name) -> int {
    StepStatus* s = instance_.find(name);
    if (!s) return 0;
    if (s->rank > 0) return s->rank;
    int r = 1;
    for (const std::string& dep : s->def.start_after)
      r = std::max(r, rank_of(dep) + 1);
    s->rank = r;
    return r;
  };
  for (auto& [name, status] : instance_.steps) rank_of(name);

  readers_.clear();
  ready_index_.clear();
  ready_index_.reserve(instance_.steps.size());
  finish_deps_.clear();
  awaiting_.clear();
  for (auto& [name, status] : instance_.steps) {
    for (const std::string& path : status.def.reads)
      readers_[path].push_back(&status);
    std::vector<StepStatus*> deps;
    deps.reserve(status.def.start_after.size());
    for (const std::string& dep : status.def.start_after)
      deps.push_back(instance_.find(dep));
    ready_index_.emplace_back(&status, std::move(deps));
    if (!status.def.finish_with.empty()) {
      std::vector<StepStatus*> fdeps;
      fdeps.reserve(status.def.finish_with.size());
      for (const std::string& dep : status.def.finish_with)
        fdeps.push_back(instance_.find(dep));
      finish_deps_[name] = std::move(fdeps);
    }
  }

  refresh_readiness();
  return "";
}

bool Engine::deps_succeeded(const std::vector<std::string>& deps) const {
  for (const std::string& dep : deps) {
    const StepStatus* s = instance_.find(dep);
    if (!s || s->state != StepState::Succeeded) return false;
  }
  return true;
}

bool Engine::deps_ok(const std::vector<StepStatus*>& deps) {
  for (const StepStatus* s : deps)
    if (!s || s->state != StepState::Succeeded) return false;
  return true;
}

bool Engine::finish_deps_ok(const std::string& name) const {
  auto it = finish_deps_.find(name);
  return it == finish_deps_.end() || deps_ok(it->second);
}

void Engine::refresh_readiness() {
  for (auto& [status, deps] : ready_index_) {
    if (status->state == StepState::Waiting && deps_ok(deps))
      status->state = StepState::Ready;
  }
}

bool Engine::begin_step(const std::string& name, bool* was_rerun) {
  StepStatus* status = instance_.find(name);
  if (!status) {
    last_error_ = "unknown step " + name;
    return false;
  }
  if (!status->def.required_role.empty() &&
      status->def.required_role != role_) {
    last_error_ = "role '" + role_ + "' may not run step " + name +
                  " (needs '" + status->def.required_role + "')";
    return false;
  }
  refresh_readiness();
  if (status->state != StepState::Ready &&
      status->state != StepState::NeedsRerun) {
    last_error_ = "step " + name + " is not runnable (state " +
                  to_string(status->state) + ")";
    return false;
  }
  if (was_rerun) *was_rerun = status->state == StepState::NeedsRerun;
  status->state = StepState::Running;
  status->last_started = data_->now();
  trace_transition(name, StepState::Running, "begin_step");
  return true;
}

void Engine::apply_step_result(const std::string& name,
                               const ActionResult& result,
                               const ActionApi& api, bool was_rerun,
                               bool refresh) {
  StepStatus* status = instance_.find(name);
  if (!status || status->state != StepState::Running) return;

  ++status->runs;
  ++metrics_.steps_run;
  if (was_rerun) {
    ++status->reruns;
    ++metrics_.reruns;
  }
  status->log = result.log;

  // §5 default behavior, not built-in policies: zero/non-zero exit status
  // completes the step unless the action set the state explicitly.
  bool ok = api.explicit_state_ ? *api.explicit_state_
                                : (result.exit_code == 0);
  if (!ok) {
    status->state = StepState::Failed;
    trace_transition(name, StepState::Failed, "result");
    ++status->failures;
    ++metrics_.failures;
    last_error_ = api.failure_reason_.empty()
                      ? ("step " + name + " failed (exit " +
                         std::to_string(result.exit_code) + ")")
                      : api.failure_reason_;
    return;
  }

  // Finish dependencies: park when they are not yet complete.
  if (finish_deps_ok(name)) {
    status->state = StepState::Succeeded;
    status->last_finished = data_->now();
    trace_transition(name, StepState::Succeeded, "result");
    // Unpark anyone awaiting us. try_finish() erases from awaiting_, so
    // iterate a snapshot; the set's name order matches the full-map scan
    // this replaced, preserving cascade order within one pass.
    if (!awaiting_.empty()) {
      std::vector<std::string> parked(awaiting_.begin(), awaiting_.end());
      for (const std::string& other : parked) try_finish(other);
    }
  } else {
    status->state = StepState::AwaitingFinish;
    awaiting_.insert(name);
    trace_transition(name, StepState::AwaitingFinish, "finish_with");
  }

  // Parallel hazard: an input rewritten by a concurrently-running step after
  // this one started means it computed with stale data. The trigger in
  // on_data_written() skips Running steps, so catch it here. The step's own
  // writes do not count.
  for (const std::string& path : status->def.reads) {
    bool own = false;
    for (const auto& [p, c] : api.data_writes())
      if (p == path) {
        own = true;
        break;
      }
    if (own) continue;
    auto t = data_->timestamp(path);
    if (t && *t > status->last_started) {
      status->state = StepState::NeedsRerun;
      awaiting_.erase(name);  // in case the park above just happened
      trace_transition(name, StepState::NeedsRerun, "stale_input");
      notifications_.push_back("step " + name + " needs rework: input '" +
                               path + "' changed while it ran");
      ++metrics_.notifications;
      break;
    }
  }
  if (refresh) refresh_readiness();
}

void Engine::note_failed_attempt(const std::string& name,
                                 const std::string& log) {
  auto lock = guard_lock();
  StepStatus* status = instance_.find(name);
  if (!status || status->state != StepState::Running) return;
  ++status->failed_attempts;
  ++metrics_.failed_attempts;
  status->log = log;
  if (obs::armed())
    obs::instant("wf", "attempt_failed:" + name,
                 "\"failed_attempts\":" +
                     std::to_string(status->failed_attempts));
}

bool Engine::run_step(const std::string& name) {
  bool was_rerun = false;
  if (!begin_step(name, &was_rerun)) return false;
  StepStatus* status = instance_.find(name);

  current_step_ = name;
  ActionApi api(*this, instance_, name);
  ActionResult result;
  if (status->def.action.fn) result = status->def.action.fn(api);
  current_step_.clear();

  apply_step_result(name, result, api, was_rerun);
  return true;  // the step ran; failure is a result, not an engine error
}

void Engine::try_finish(const std::string& name) {
  StepStatus* status = instance_.find(name);
  if (!status || status->state != StepState::AwaitingFinish) return;
  if (finish_deps_ok(name)) {
    status->state = StepState::Succeeded;
    status->last_finished = data_->now();
    awaiting_.erase(name);
    trace_transition(name, StepState::Succeeded, "finish_with");
  }
}

std::vector<std::string> Engine::runnable_steps() const {
  return runnable_steps(std::numeric_limits<std::size_t>::max());
}

std::vector<std::string> Engine::runnable_steps(std::size_t max_n) const {
  std::vector<std::pair<int, const std::string*>> ranked;
  for (const auto& [name, status] : instance_.steps) {
    if (status.state != StepState::Ready &&
        status.state != StepState::NeedsRerun)
      continue;
    if (!status.def.required_role.empty() && status.def.required_role != role_)
      continue;
    ranked.emplace_back(status.rank, &name);
  }
  auto by_rank_name = [](const std::pair<int, const std::string*>& a,
                         const std::pair<int, const std::string*>& b) {
    if (a.first != b.first) return a.first < b.first;
    return *a.second < *b.second;
  };
  if (max_n < ranked.size()) {
    std::partial_sort(ranked.begin(), ranked.begin() + std::ptrdiff_t(max_n),
                      ranked.end(), by_rank_name);
    ranked.resize(max_n);
  } else {
    std::sort(ranked.begin(), ranked.end(), by_rank_name);
  }
  std::vector<std::string> out;
  out.reserve(ranked.size());
  for (auto& [rank, name] : ranked) out.push_back(*name);
  return out;
}

std::vector<Engine::StepClaim> Engine::begin_steps(
    const std::vector<std::string>& names) {
  refresh_readiness();
  std::vector<StepClaim> out;
  out.reserve(names.size());
  for (const std::string& name : names) {
    StepStatus* status = instance_.find(name);
    if (!status) continue;
    if (!status->def.required_role.empty() &&
        status->def.required_role != role_)
      continue;
    if (status->state != StepState::Ready &&
        status->state != StepState::NeedsRerun)
      continue;
    StepClaim claim;
    claim.name = name;
    claim.was_rerun = status->state == StepState::NeedsRerun;
    status->state = StepState::Running;
    status->last_started = data_->now();
    trace_transition(name, StepState::Running, "begin_step");
    out.push_back(std::move(claim));
  }
  return out;
}

int Engine::run_all() {
  int executed = 0;
  std::map<std::string, int> scheduled;  // per-step count, this call only
  for (;;) {
    refresh_readiness();
    std::string next;
    int best_rank = 0;
    for (const auto& [name, status] : instance_.steps) {
      if (status.state == StepState::Ready ||
          status.state == StepState::NeedsRerun) {
        if (!status.def.required_role.empty() &&
            status.def.required_role != role_)
          continue;
        if (next.empty() || status.rank < best_rank) {
          next = name;
          best_rank = status.rank;
        }
      }
    }
    if (next.empty()) break;
    if (++scheduled[next] > livelock_limit_) {
      // A legitimate rework cascade re-runs a step a handful of times; a
      // step scheduled this often inside one call is oscillating NeedsRerun
      // (typically a write/read cycle between steps). Report, don't spin.
      last_error_ = "livelock detected: step '" + next + "' was scheduled " +
                    std::to_string(scheduled[next]) +
                    " times in one run_all(); a data write/read cycle keeps "
                    "marking it NeedsRerun";
      notifications_.push_back(last_error_);
      ++metrics_.notifications;
      break;
    }
    if (!run_step(next)) break;
    ++executed;
  }
  return executed;
}

bool Engine::reset_step(const std::string& name) {
  StepStatus* status = instance_.find(name);
  if (!status) {
    last_error_ = "unknown step " + name;
    return false;
  }
  if (!status->def.required_role.empty() &&
      status->def.required_role != role_) {
    last_error_ = "role '" + role_ + "' may not reset step " + name;
    return false;
  }
  std::set<std::string> affected = downstream_of(name);
  affected.insert(name);
  for (const std::string& n : affected) {
    StepStatus* s = instance_.find(n);
    s->state = StepState::Waiting;
    awaiting_.erase(n);
    trace_transition(n, StepState::Waiting, "reset");
  }
  refresh_readiness();
  return true;
}

std::set<std::string> Engine::downstream_of(const std::string& name) const {
  std::set<std::string> out;
  std::deque<std::string> work{name};
  while (!work.empty()) {
    std::string cur = work.front();
    work.pop_front();
    for (const auto& [other, status] : instance_.steps) {
      if (out.count(other)) continue;
      for (const std::string& dep : status.def.start_after) {
        if (dep == cur) {
          out.insert(other);
          work.push_back(other);
        }
      }
    }
  }
  out.erase(name);
  return out;
}

void Engine::on_data_written(const std::string& path, LogicalTime t) {
  auto it = readers_.find(path);
  if (it == readers_.end()) return;
  for (StepStatus* status : it->second) {
    const std::string& name = status->def.name;
    if (name == current_step_) continue;  // own writes don't re-trigger
    if (status->state != StepState::Succeeded &&
        status->state != StepState::AwaitingFinish)
      continue;
    if (status->last_finished >= t) continue;
    status->state = StepState::NeedsRerun;
    awaiting_.erase(name);
    notifications_.push_back("step " + name + " needs rework: input '" +
                             path + "' changed");
    ++metrics_.notifications;
  }
}

Engine::TuningReport Engine::tuning_report(std::size_t top_n) const {
  TuningReport report;
  std::vector<TuningReport::Hotspot> rework, failures;
  for (const auto& [name, status] : instance_.steps) {
    report.total_runs += status.runs;
    report.total_reruns += status.reruns;
    report.total_failures += status.failures;
    if (status.reruns > 0) rework.push_back({name, status.reruns});
    if (status.failures > 0) failures.push_back({name, status.failures});
  }
  auto by_count = [](const TuningReport::Hotspot& a,
                     const TuningReport::Hotspot& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.step < b.step;
  };
  std::sort(rework.begin(), rework.end(), by_count);
  std::sort(failures.begin(), failures.end(), by_count);
  if (rework.size() > top_n) rework.resize(top_n);
  if (failures.size() > top_n) failures.resize(top_n);
  report.rework_hotspots = std::move(rework);
  report.failure_hotspots = std::move(failures);
  return report;
}

std::map<std::string, StepState> Engine::status_report() const {
  std::map<std::string, StepState> out;
  for (const auto& [name, status] : instance_.steps)
    out[name] = status.state;
  return out;
}

bool Engine::complete() const {
  for (const auto& [name, status] : instance_.steps)
    if (status.state != StepState::Succeeded) return false;
  return !instance_.steps.empty();
}

ToolSession& Engine::tool(const std::string& name) {
  auto it = tools_.find(name);
  if (it == tools_.end()) {
    it = tools_.emplace(name, std::make_unique<ToolSession>(name)).first;
    ++metrics_.tool_spawns;
  }
  return *it->second;
}

}  // namespace interop::wf
