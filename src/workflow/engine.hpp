#pragma once
// The workflow engine: instantiation, scheduling, dependency management,
// trigger-based rework notification, tool sessions, and metrics — §5's
// characteristics as one executable component.

#include <memory>
#include <mutex>
#include <set>

#include "workflow/flow.hpp"

namespace interop::wf {

/// A long-running tool session (§5 "flexible tool management": one flow may
/// spawn a tool per step, another drives a single running tool over IPC).
class ToolSession {
 public:
  explicit ToolSession(std::string name) : name_(std::move(name)) {}
  /// Handle one request; the session keeps state across requests.
  std::string request(const std::string& cmd);
  int requests_served() const { return requests_; }

 private:
  std::string name_;
  int requests_ = 0;
  std::vector<std::string> history_;
};

struct EngineMetrics {
  int steps_run = 0;
  int failures = 0;
  int failed_attempts = 0;  ///< retried-in-place attempt failures
  int reruns = 0;
  int notifications = 0;
  int tool_spawns = 0;     ///< long-running tool sessions started
  int tool_requests = 0;
};

class Engine {
 public:
  /// `role` is the current user's role for permission checks.
  Engine(FlowTemplate main, std::map<std::string, FlowTemplate> subflows,
         std::unique_ptr<DataManager> data, std::string role = "engineer");

  /// Derive the instance for the given design blocks (hierarchical design
  /// support: each block gets its own copy of referenced sub-flows).
  /// Returns an error message, or empty on success.
  std::string instantiate(const std::vector<std::string>& blocks);

  FlowInstance& instance() { return instance_; }
  const FlowInstance& instance() const { return instance_; }
  DataManager& data() { return *data_; }
  VariablePool& variables() { return variables_; }

  /// Recompute Waiting -> Ready transitions.
  void refresh_readiness();

  /// Run one step if permitted and ready (or NeedsRerun). Returns false
  /// with a diagnostic in last_error() otherwise.
  bool run_step(const std::string& name);

  /// Run until no step makes progress. Returns number of step executions.
  /// Detects livelock (a step oscillating NeedsRerun forever because of a
  /// data write/read cycle): after a step is scheduled more than
  /// livelock_limit() times in one call, the run aborts with a diagnostic
  /// in last_error() and a user notification.
  int run_all();

  /// Per-step scheduling bound for run_all()'s livelock detector.
  int livelock_limit() const { return livelock_limit_; }
  void set_livelock_limit(int n) { livelock_limit_ = n; }

  // --- Runtime hooks -----------------------------------------------------
  // Used by runtime::ParallelExecutor to drive steps concurrently without
  // going through the serial run_step()/run_all() path. The serial API is
  // unchanged; these decompose run_step() into claim/execute/apply.

  /// Install a mutex that serializes all engine-state access made from
  /// inside actions (ActionApi calls) and from the hooks below. nullptr
  /// restores serial (unlocked) mode. While a guard is installed, callers
  /// of begin_step()/apply_step_result()/runnable_steps() must hold it.
  void set_concurrency_guard(std::mutex* mu) { guard_ = mu; }
  std::mutex* concurrency_guard() const { return guard_; }

  /// Steps currently claimable: Ready or NeedsRerun, role-permitted,
  /// ordered by topological rank (upstream first) then name.
  std::vector<std::string> runnable_steps() const;
  /// Batch variant: at most `max_n` steps, lowest (rank, name) first.
  std::vector<std::string> runnable_steps(std::size_t max_n) const;

  /// Claim a runnable step: transition it to Running. `was_rerun` (may be
  /// null) reports whether this claim consumed a NeedsRerun. Returns false
  /// with a diagnostic in last_error() when the step is not claimable.
  bool begin_step(const std::string& name, bool* was_rerun = nullptr);

  /// One granted claim out of begin_steps().
  struct StepClaim {
    std::string name;
    bool was_rerun = false;
  };
  /// Batch claim: recompute readiness once, then claim every step in
  /// `names` that is claimable (Ready or NeedsRerun, role-permitted).
  /// Returns the granted claims in input order; non-claimable names are
  /// skipped silently (the batch analogue of begin_step losing a race).
  std::vector<StepClaim> begin_steps(const std::vector<std::string>& names);

  /// Apply an action's result to a Running step: success/failure policy,
  /// metrics, finish dependencies, stale-input detection, and readiness
  /// refresh — the bookkeeping tail of run_step(). A batch applier can pass
  /// `refresh = false` per result and call refresh_readiness() once after
  /// the whole batch: readiness is only read at claim time, so deferring
  /// the recomputation across consecutive applies is observationally
  /// identical while dropping its O(steps·deps) cost from every apply.
  void apply_step_result(const std::string& name, const ActionResult& result,
                         const ActionApi& api, bool was_rerun,
                         bool refresh = true);

  /// Note a failed attempt of a Running step that the runtime will retry in
  /// place: records per-step/global failed-attempt counts and the attempt
  /// log WITHOUT the Failed-state transition (the step stays Running).
  /// Takes the concurrency guard itself, like ActionApi calls.
  void note_failed_attempt(const std::string& name, const std::string& log);

  /// Reset a step (and everything downstream of it) for rerun, subject to
  /// the §5 permission question "Do I have the necessary permissions?".
  bool reset_step(const std::string& name);

  /// Pending user notifications from triggers ("something has changed that
  /// does, or might, require rework").
  const std::vector<std::string>& notifications() const {
    return notifications_;
  }
  void clear_notifications() { notifications_.clear(); }

  const EngineMetrics& metrics() const { return metrics_; }
  const std::string& last_error() const { return last_error_; }

  /// Status report: step name -> state (what §5's "status is collected and
  /// reported" means here).
  std::map<std::string, StepState> status_report() const;

  /// §5's closed loop: "these collected metrics can later be analyzed and
  /// used to tune the process." Hotspots are steps with the most rework or
  /// failures — the places the process (not the people) needs fixing.
  struct TuningReport {
    struct Hotspot {
      std::string step;
      int count;
    };
    std::vector<Hotspot> rework_hotspots;
    std::vector<Hotspot> failure_hotspots;
    int total_runs = 0;
    int total_reruns = 0;
    int total_failures = 0;
  };
  TuningReport tuning_report(std::size_t top_n = 5) const;

  /// True when every step succeeded.
  bool complete() const;

  ToolSession& tool(const std::string& name);

 private:
  friend class ActionApi;

  /// Lock the concurrency guard when one is installed (no-op otherwise).
  std::unique_lock<std::mutex> guard_lock() const {
    return guard_ ? std::unique_lock<std::mutex>(*guard_)
                  : std::unique_lock<std::mutex>();
  }

  bool deps_succeeded(const std::vector<std::string>& deps) const;
  /// Resolved-pointer variant (see ready_index_): no name lookups.
  static bool deps_ok(const std::vector<StepStatus*>& deps);
  /// True when `name`'s finish_with deps (if any) are all Succeeded.
  bool finish_deps_ok(const std::string& name) const;
  void on_data_written(const std::string& path, LogicalTime t);
  void try_finish(const std::string& name);
  /// Steps whose start_after chain reaches `name` (transitively).
  std::set<std::string> downstream_of(const std::string& name) const;

  FlowTemplate main_;
  std::map<std::string, FlowTemplate> subflows_;
  std::unique_ptr<DataManager> data_;
  std::string role_;
  FlowInstance instance_;
  VariablePool variables_;
  std::vector<std::string> notifications_;
  EngineMetrics metrics_;
  std::string last_error_;
  std::map<std::string, std::unique_ptr<ToolSession>> tools_;
  // Resolved-pointer indexes, rebuilt by instantiate(). instance_.steps is
  // a std::map, so StepStatus nodes are address-stable for the lifetime of
  // the instance; resolving dependency names to pointers once drops the
  // per-refresh / per-write string lookups that dominated scheduling cost
  // on flows with hundreds of steps.

  /// Trigger index: data path -> steps that declare it in `reads`.
  /// on_data_written() consults only a path's readers instead of scanning
  /// every step per write.
  std::map<std::string, std::vector<StepStatus*>> readers_;
  /// Every step paired with its resolved start_after deps (a missing dep
  /// resolves to nullptr and keeps the step Waiting forever, matching the
  /// name-lookup behavior). refresh_readiness() walks this flat array.
  std::vector<std::pair<StepStatus*, std::vector<StepStatus*>>> ready_index_;
  /// Resolved finish_with deps, only for steps that declare any.
  std::map<std::string, std::vector<StepStatus*>> finish_deps_;
  /// Steps currently parked in AwaitingFinish, maintained at every
  /// transition in/out of that state. The unpark pass after a success
  /// visits only these (in name order, matching the old full-map scan)
  /// instead of every step.
  std::set<std::string> awaiting_;
  /// Step currently executing (its own writes do not re-trigger it).
  std::string current_step_;
  std::mutex* guard_ = nullptr;
  int livelock_limit_ = 20;
};

}  // namespace interop::wf
