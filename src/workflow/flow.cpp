#include "workflow/flow.hpp"

#include <map>

#include "base/graph.hpp"

namespace interop::wf {

std::string to_string(ActionLanguage l) {
  switch (l) {
    case ActionLanguage::Shell: return "shell";
    case ActionLanguage::Perl: return "perl";
    case ActionLanguage::Tcl: return "tcl";
    case ActionLanguage::CLang: return "c";
    case ActionLanguage::Native: return "native";
  }
  return "?";
}

std::string to_string(StepState s) {
  switch (s) {
    case StepState::Waiting: return "waiting";
    case StepState::Ready: return "ready";
    case StepState::Running: return "running";
    case StepState::AwaitingFinish: return "awaiting-finish";
    case StepState::Succeeded: return "succeeded";
    case StepState::Failed: return "failed";
    case StepState::NeedsRerun: return "needs-rerun";
  }
  return "?";
}

const StepDef* FlowTemplate::find_step(const std::string& step_name) const {
  for (const StepDef& s : steps)
    if (s.name == step_name) return &s;
  return nullptr;
}

std::string FlowTemplate::validate() const {
  std::map<std::string, base::NodeId> ids;
  base::Digraph graph;
  for (const StepDef& s : steps) {
    if (ids.count(s.name)) return "duplicate step: " + s.name;
    ids[s.name] = graph.add_node();
  }
  for (const StepDef& s : steps) {
    for (const std::string& dep : s.start_after) {
      auto it = ids.find(dep);
      if (it == ids.end())
        return "step " + s.name + " depends on unknown step " + dep;
      graph.add_edge(it->second, ids[s.name]);
    }
    for (const std::string& dep : s.finish_with) {
      if (!ids.count(dep))
        return "step " + s.name + " finishes with unknown step " + dep;
    }
  }
  if (graph.has_cycle()) return "dependency cycle in flow " + name;
  return "";
}

StepStatus* FlowInstance::find(const std::string& name) {
  auto it = steps.find(name);
  return it == steps.end() ? nullptr : &it->second;
}

const StepStatus* FlowInstance::find(const std::string& name) const {
  auto it = steps.find(name);
  return it == steps.end() ? nullptr : &it->second;
}

std::vector<std::string> FlowInstance::step_names() const {
  std::vector<std::string> out;
  for (const auto& [name, status] : steps) out.push_back(name);
  return out;
}

}  // namespace interop::wf
