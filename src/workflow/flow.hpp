#pragma once
// Workflow templates and instances — the §5 model.
//
// A FlowTemplate captures the process structure once; every design block
// derives its FlowInstance "from the same template, providing process
// consistency". Steps declare start dependencies ("certain events trigger
// the availability of tasks"), finish dependencies ("insure a task does not
// complete too soon"), data reads/writes (trigger subscriptions), required
// permissions, and an action in whatever language the flow developer likes
// — the action body here is a std::function, the `language` tag records the
// §5 "open language environment" claim that the engine does not care.

#include <atomic>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "workflow/data.hpp"

namespace interop::wf {

class Engine;
struct FlowInstance;

/// What an action reports back. Default completion policy: exit_code 0 =
/// success, non-zero = failure — unless the action set the state explicitly
/// through the API (§5 "default behavior, not built-in policies").
struct ActionResult {
  int exit_code = 0;
  std::string log;
};

/// Handle an action uses to talk to the workflow (the §5 "workflow
/// application procedural interface").
class ActionApi {
 public:
  ActionApi(Engine& engine, FlowInstance& instance, std::string step)
      : engine_(engine), instance_(instance), step_(std::move(step)) {}

  /// Design data access (through the flow's data manager).
  void write_data(const std::string& path, std::string content);
  std::optional<std::string> read_data(const std::string& path) const;

  /// Metadata variables (state proxies, separate from design data).
  void set_variable(const std::string& name, std::string value);
  std::optional<std::string> get_variable(const std::string& name) const;

  /// Explicit completion: overrides the default zero/non-zero policy.
  void set_step_state_success();
  void set_step_state_failure(const std::string& reason);

  /// Send a request to a long-running tool session (started on first use).
  std::string tool_request(const std::string& tool, const std::string& cmd);

  const std::string& step() const { return step_; }

  /// Cooperative cancellation: set when the runtime's watchdog expires this
  /// attempt's timeout (or the run is being stopped). Long-running actions
  /// should poll it and return early; the serial engine never sets it.
  bool cancel_requested() const {
    return cancel_ && cancel_->load(std::memory_order_relaxed);
  }
  /// Installed by the parallel runtime, one flag per attempt.
  void set_cancel_flag(const std::atomic<bool>* flag) { cancel_ = flag; }

  /// The completion policy applied to `result` for this action run: the
  /// explicitly set state when there is one, else zero/non-zero exit. The
  /// runtime uses this to classify attempts before deciding to retry.
  bool outcome_ok(const ActionResult& result) const {
    return explicit_state_ ? *explicit_state_ : result.exit_code == 0;
  }

  /// Effects recorded during the action run, in call order. The parallel
  /// runtime memoizes these so an unchanged step can be replayed from cache
  /// instead of re-executed.
  const std::vector<std::pair<std::string, std::string>>& data_writes() const {
    return data_writes_;
  }
  const std::vector<std::pair<std::string, std::string>>& var_writes() const {
    return var_writes_;
  }
  int tool_requests_made() const { return tool_requests_; }

 private:
  friend class Engine;
  Engine& engine_;
  FlowInstance& instance_;
  std::string step_;
  std::optional<bool> explicit_state_;
  std::string failure_reason_;
  std::vector<std::pair<std::string, std::string>> data_writes_;
  std::vector<std::pair<std::string, std::string>> var_writes_;
  int tool_requests_ = 0;
  const std::atomic<bool>* cancel_ = nullptr;
};

using ActionFn = std::function<ActionResult(ActionApi&)>;

/// §5 "open language environment": the engine records but never interprets
/// the implementation language.
enum class ActionLanguage { Shell, Perl, Tcl, CLang, Native };

std::string to_string(ActionLanguage l);

struct Action {
  std::string name;
  ActionLanguage language = ActionLanguage::Native;
  ActionFn fn;
};

struct StepDef {
  std::string name;
  Action action;
  /// Start dependencies: all must have succeeded before this step is ready.
  std::vector<std::string> start_after;
  /// Finish dependencies: this step cannot COMPLETE until these completed;
  /// if it runs first, it parks in AwaitingFinish.
  std::vector<std::string> finish_with;
  /// Data trigger subscriptions: a write to a read path after this step
  /// succeeded marks it NeedsRerun and notifies the user.
  std::vector<std::string> reads;
  std::vector<std::string> writes;
  /// Role required to run or reset this step ("" = anyone).
  std::string required_role;
  /// Name of a sub-flow template expanded per design block ("" = plain).
  std::string subflow;
  /// Stable identity of the action for content-addressed memoization:
  /// two steps with the same tag, the same declared reads/writes, and the
  /// same input contents are assumed to produce the same outputs. Exporters
  /// (core::export_flow) derive it from task/tool ids; when empty, the
  /// runtime falls back to the action name + language.
  std::string content_tag;
};

/// The process template.
struct FlowTemplate {
  std::string name;
  std::vector<StepDef> steps;

  const StepDef* find_step(const std::string& name) const;
  /// Check the start-dependency graph is a DAG over known steps.
  /// Returns an error message, or empty when valid.
  std::string validate() const;
};

enum class StepState {
  Waiting,         ///< start dependencies not yet satisfied
  Ready,           ///< runnable
  Running,
  AwaitingFinish,  ///< ran fine, parked on a finish dependency
  Succeeded,
  Failed,
  NeedsRerun,      ///< upstream data changed after success
};

std::string to_string(StepState s);

/// Per-step live status inside an instance.
struct StepStatus {
  StepDef def;           ///< expanded definition (block-qualified names)
  StepState state = StepState::Waiting;
  /// Longest start-dependency chain above this step; the engine runs
  /// runnable steps in rank order so rework flows downstream once.
  int rank = 0;
  int runs = 0;
  int reruns = 0;        ///< runs caused by NeedsRerun
  int failures = 0;
  /// Attempts that failed (or timed out) and were retried in place by the
  /// runtime without a Failed-state transition; `failures` counts only
  /// final, state-changing failures.
  int failed_attempts = 0;
  LogicalTime last_finished = 0;
  LogicalTime last_started = 0;  ///< logical time when the last run began
  std::string block;     ///< owning design block ("" = top)
  std::string log;
};

/// A flow instance: one top-level process, with sub-flows expanded per
/// design block but "the data and process status kept separate for each
/// block" (§5).
struct FlowInstance {
  std::string template_name;
  std::vector<std::string> blocks;
  /// Step statuses keyed by expanded name ("blockA:lint").
  std::map<std::string, StepStatus> steps;

  StepStatus* find(const std::string& name);
  const StepStatus* find(const std::string& name) const;
  /// All step names in deterministic order.
  std::vector<std::string> step_names() const;
};

}  // namespace interop::wf
