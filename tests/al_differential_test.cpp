// AlDiff — the differential golden suite pinning the bytecode VM to the
// tree-walker oracle. Every program runs on BOTH engines in fresh
// interpreters; results (written values), error messages, post-GC arena
// frame counts, and Environment live-count deltas must match exactly.
// The migration half replays the generator's a/L callback workload — the
// same scenarios the fuzz corpus drives — through both engines and
// requires byte-identical migrated designs.
//
// Suite names all start with AlDiff so CI's TSan/ASan label regex and the
// nightly sweep can select them wholesale.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "al/interp.hpp"
#include "al/number.hpp"
#include "base/diagnostics.hpp"
#include "fuzz/corpus.hpp"
#include "schematic/generator.hpp"
#include "schematic/migrate.hpp"
#include "schematic/textio.hpp"

namespace interop {
namespace {

using al::AlError;
using al::Engine;
using al::Interpreter;
using al::Value;

// ------------------------------------------------------------- programs

struct Outcome {
  bool ok = true;
  std::string text;  ///< result .write(), or the error message
  std::size_t arena_after_gc = 0;
  std::int64_t live_delta = 0;  ///< Environment leak across teardown
};

Outcome run_program(Engine engine, const std::string& src,
                    std::size_t step_limit = 0) {
  std::int64_t live_before = al::Environment::live_count();
  Outcome o;
  {
    Interpreter interp;
    interp.set_engine(engine);
    if (step_limit) interp.set_step_limit(step_limit);
    try {
      o.text = interp.eval_source(src).write();
    } catch (const AlError& e) {
      o.ok = false;
      o.text = e.what();
    }
    interp.collect_garbage();
    o.arena_after_gc = interp.arena_frames();
  }
  o.live_delta = al::Environment::live_count() - live_before;
  return o;
}

void expect_engines_agree(const std::string& src, std::size_t step_limit = 0) {
  Outcome walker = run_program(Engine::TreeWalker, src, step_limit);
  Outcome vm = run_program(Engine::Bytecode, src, step_limit);
  EXPECT_EQ(walker.ok, vm.ok) << src;
  EXPECT_EQ(walker.text, vm.text) << src;
  EXPECT_EQ(walker.arena_after_gc, vm.arena_after_gc) << src;
  EXPECT_EQ(walker.live_delta, vm.live_delta) << src;
  EXPECT_EQ(vm.live_delta, 0) << src << " leaked environments";
}

// Value-producing programs covering every special form, closure shape,
// and builtin family the tree-walker suite exercises — plus the corners
// where a compiler could plausibly diverge from an interpreter (scoping
// of let bindings, and/or result protocols, while results, shadowing,
// use-before-define, quote identity).
const char* const kValuePrograms[] = {
    "42",
    "2.5",
    "#t",
    "nil",
    "\"str\"",
    "(quote sym)",
    "(quote (1 2.0 \"x\" #f nil (nested)))",
    "(+ 1 2 3)",
    "(- 10 4 1)",
    "(* 2 3 4)",
    "(/ 10 2)",
    "(/ 1 2)",
    "(mod 7 3)",
    "(min 3 1 2)",
    "(max 3 1 2)",
    "(+ 1 0.5)",
    "(< 1 2 3)",
    "(< 1 3 2)",
    "(= 2 2)",
    "(equal? (list 1 2) (list 1 2))",
    "(not #f)",
    "(and)",
    "(and 1 2 3)",
    "(and 1 #f 3)",
    "(and nil 2)",
    "(or)",
    "(or #f 7)",
    "(or nil nil)",
    "(or (or #f #f) (and 1 2))",
    "(if (> 2 1) 10 20)",
    "(if #f 10)",
    "(cond ((= 1 2) 5) ((= 1 1) 6) (else 7))",
    "(cond ((= 1 2) 5) (else 7))",
    "(cond ((= 1 2) 5))",
    "(cond (#t 1 2 3))",
    "(begin)",
    "(begin 1 2 3)",
    "(let ((x 2) (y 3)) (* x y))",
    "(define x 1) (let ((x 2) (y x)) y)",      // bindings see OUTER scope
    "(let ((x 1) (x 2)) x)",                   // duplicate: last wins
    "(let ((x 1)) (let ((x 2)) x))",           // shadowing
    "(let ((x 1)) (define y 2) (+ x y))",      // define inside let scope
    "(define z 9) z",
    "(define z 9) (set! z 11) z",
    "(set! q 1)",                              // error text must match too
    "(define (adder n) (lambda (x) (+ x n)))"
    " (define add5 (adder 5)) (define add7 (adder 7))"
    " (list (add5 10) (add5 1) (add7 1))",
    "(define (fact n) (if (<= n 1) 1 (* n (fact (- n 1))))) (fact 10)",
    "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))"
    " (fib 15)",
    "(define i 0) (define acc 0)"
    " (while (< i 5) (set! acc (+ acc i)) (set! i (+ i 1))) acc",
    "(define i 0) (while (< i 3) (set! i (+ i 1)))",  // while result
    "(while #f 1)",                                   // zero iterations
    "(define (g) (h)) (define (h) 5) (g)",            // use-before-define
    "(lambda (x) x)",                                 // prints #<lambda>
    "(define f (lambda () 1)) (set! f (lambda () 2)) (f)",
    "(map (lambda (x) (* x x)) (list 1 2 3))",
    "(filter (lambda (x) (> x 1)) (list 0 1 2 3))",
    "(foldl + 0 (list 1 2 3 4))",
    "(foldl (lambda (a b) (cons b a)) nil (list 1 2))",
    "(string-append \"a\" \"b\" 3)",
    "(substring \"hello\" 1 3)",
    "(string-split \"r:4.7k:2p\" \":\")",
    "(string->number \"42\")",
    "(string->number \"2.5\")",
    "(string->number \"4.7k\")",
    "(string->number \"1e99999\")",     // out of range: #f on both engines
    "(number->string 7)",
    "(number->string 0.1)",
    "(number->string (/ 1 3))",
    "(length (list 1 2 3))",
    "(reverse (list 1 2 3))",
    "(append (list 1) (list 2 3))",
    // Closure cycles: the GC shape must match (arena counts after GC).
    "(define (selfie) selfie) (selfie)",
    "(define (mk) (lambda () mk)) ((mk))",
    "(define c nil)"
    " (let ((n 0)) (set! c (lambda () (set! n (+ n 1)) n)))"
    " (c) (c) (c)",
};

TEST(AlDiffValues, ProgramsAgreeAcrossEngines) {
  for (const char* src : kValuePrograms) expect_engines_agree(src);
}

// Programs whose ONLY failure is the listed one (a unit with two
// independent errors could legitimately report them in different order:
// the compiler sees the whole unit before the VM runs any of it).
const char* const kErrorPrograms[] = {
    "undefined-var",
    "(set! unbound 1)",
    "(define (f x) x) (f 1 2)",
    "(define (f x) x) (f)",
    "(1 2 3)",
    "()",
    "(quote)",
    "(quote a b)",
    "(if)",
    "(if 1 2 3 4)",
    "(cond (1))",
    "(cond 5)",
    "(define)",
    "(define 3 4)",
    "(define (3) 4)",
    "(define ())",
    "(lambda)",
    "(lambda x 1)",
    "(lambda (1) 1)",
    "(let)",
    "(let x 1)",
    "(let ((x)) 1)",
    "(let ((x 1)))",
    "(while)",
    "(define (f) (f)) (f)",                    // call depth
    "(nth (list 1) 5)",
    "(+ 1 \"a\")",
    "(substring \"ab\" 5 9)",
};

TEST(AlDiffErrors, ErrorMessagesAgreeAcrossEngines) {
  for (const char* src : kErrorPrograms) expect_engines_agree(src);
}

TEST(AlDiffErrors, StepLimitAgreesAcrossEngines) {
  // Both engines must hit the budget (exact step accounting differs — the
  // walker counts forms, the VM counts instructions — but the observable
  // error is the same).
  expect_engines_agree("(while #t 1)", /*step_limit=*/10000);
}

// number->string / string->number round-trip doubles bit-exactly, and both
// engines print the same shortest form.
TEST(AlDiffRoundTrip, DoubleFormattingRoundTrips) {
  const double cases[] = {0.1,    1.0 / 3.0, 1e-7,   12345.6789, 1e300,
                          5e-324, 2.5,       -0.0,   1e16,       0.3333333,
                          3.141592653589793, -271.828};
  for (double d : cases) {
    std::string printed = al::format_double(d);
    for (Engine e : {Engine::TreeWalker, Engine::Bytecode}) {
      Interpreter interp;
      interp.set_engine(e);
      Value back =
          interp.eval_source("(string->number \"" + printed + "\")");
      ASSERT_TRUE(back.is_double()) << printed;
      EXPECT_EQ(back.as_double(), d) << printed;  // exact, not approximate
      EXPECT_EQ(interp.eval_source("(number->string " + printed + ")")
                    .as_string(),
                printed);
    }
  }
}

// ------------------------------------------------------------ migration

/// Run the full §2 migration with the given a/L engine; returns the
/// serialized migrated design plus callback/diagnostic counts.
struct MigrationOutcome {
  std::string design_text;
  std::size_t callbacks_run = 0;
  std::size_t errors = 0;
};

MigrationOutcome migrate_with(Engine engine, const sch::GeneratorOptions& opt) {
  sch::Scenario scenario = sch::make_exar_scenario(opt);
  scenario.config.al_engine = engine;
  base::DiagnosticEngine diags;
  sch::MigrationResult result =
      sch::migrate_design(scenario.source, scenario.config, diags);
  return {sch::write_design(result.design), result.report.props.callbacks_run,
          diags.count(base::Severity::Error)};
}

void expect_migrations_agree(const sch::GeneratorOptions& opt) {
  MigrationOutcome walker = migrate_with(Engine::TreeWalker, opt);
  MigrationOutcome vm = migrate_with(Engine::Bytecode, opt);
  ASSERT_GT(walker.callbacks_run, 0u) << "scenario exercised no callbacks";
  EXPECT_EQ(walker.callbacks_run, vm.callbacks_run) << "seed " << opt.seed;
  EXPECT_EQ(walker.errors, vm.errors) << "seed " << opt.seed;
  EXPECT_EQ(walker.design_text, vm.design_text)
      << "migrated designs diverged at seed " << opt.seed;
}

TEST(AlDiffMigration, ExarScenarioMigrationsAgree) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    sch::GeneratorOptions opt;
    opt.seed = seed;
    opt.analog_fraction = 0.5;  // plenty of callback-bearing components
    expect_migrations_agree(opt);
  }
}

// Replay the fuzz corpus' schematic callback specs through both engines:
// the same generator parameters the reproducers pin, compared at the
// migrated-design level.
TEST(AlDiffMigration, CorpusCallbackSpecsAgree) {
#ifndef INTEROP_CORPUS_DIR
  GTEST_SKIP() << "corpus dir not configured";
#else
  std::size_t replayed = 0;
  for (const std::string& path : fuzz::list_reproducers(INTEROP_CORPUS_DIR)) {
    fuzz::Reproducer repro = fuzz::load_reproducer(path);
    if (!repro.spec.sch) continue;  // no schematic (thus no callback) leg
    sch::GeneratorOptions opt;
    opt.seed = repro.spec.seed;
    opt.sheets = repro.spec.sheets;
    opt.components_per_sheet = repro.spec.components_per_sheet;
    opt.nets_per_sheet = repro.spec.nets_per_sheet;
    opt.buses = repro.spec.buses;
    opt.bus_width = repro.spec.bus_width;
    opt.condensed_refs = repro.spec.condensed_refs;
    opt.postfix_nets = repro.spec.postfix_nets;
    opt.cross_page_nets = repro.spec.cross_page_nets;
    opt.global_taps = repro.spec.global_taps;
    opt.ports = repro.spec.ports;
    opt.analog_fraction = repro.spec.analog_pct / 100.0;
    expect_migrations_agree(opt);
    ++replayed;
  }
  EXPECT_GE(replayed, 1u) << "corpus had no schematic callback specs";
#endif
}

// Wide nightly sweep (ctest label: sweep): GOLDEN_SEED_RANGE=lo:hi widens
// the per-PR seed set; unset, the test skips so the default suite stays
// fast (mirrors the hdl_sim/pnr_route golden sweeps).
TEST(AlDiffSweep, MigrationsAgreeOverSeedRange) {
  const char* range = std::getenv("GOLDEN_SEED_RANGE");
  if (!range) GTEST_SKIP() << "GOLDEN_SEED_RANGE unset";
  std::uint64_t lo = 0, hi = 0;
  ASSERT_EQ(std::sscanf(range, "%llu:%llu",
                        reinterpret_cast<unsigned long long*>(&lo),
                        reinterpret_cast<unsigned long long*>(&hi)),
            2)
      << "GOLDEN_SEED_RANGE must be lo:hi, got " << range;
  for (std::uint64_t seed = lo; seed <= hi; ++seed) {
    sch::GeneratorOptions opt;
    opt.seed = seed;
    opt.analog_fraction = 0.5;
    expect_migrations_agree(opt);
  }
}

}  // namespace
}  // namespace interop
