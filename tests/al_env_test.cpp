// Regression tests for the a/L closure-environment lifecycle: the
// Environment<->Lambda shared_ptr cycle used to leak every frame a closure
// captured (three LSan suppressions rode along in CI). The interpreter now
// owns all frames in an arena, closures hold non-owning handles, and a
// mark/sweep pass reclaims cycle-only frames — so live-frame counts must
// stay bounded under lambda-heavy load and drop to the baseline at
// teardown. The whole file runs under the asan preset with NO suppressions.

#include <gtest/gtest.h>

#include "al/interp.hpp"
#include "al/value.hpp"

namespace interop::al {
namespace {

TEST(AlEnvLifecycle, LiveCountReturnsToBaselineAtTeardown) {
  std::int64_t before = Environment::live_count();
  {
    Interpreter interp;
    interp.eval_source("(define (make-adder n) (lambda (x) (+ x n)))"
                       "(define add3 (make-adder 3))"
                       "(add3 4)");
    EXPECT_GT(Environment::live_count(), before);
  }
  EXPECT_EQ(Environment::live_count(), before);
}

TEST(AlEnvLifecycle, SelfRecursiveClosureIsReclaimedAtTeardown) {
  std::int64_t before = Environment::live_count();
  {
    Interpreter interp;
    // The classic cycle: f's closure lives in the frame it captures.
    interp.eval_source("(define (f n) (if (< n 1) 0 (f (- n 1)))) (f 5)");
  }
  EXPECT_EQ(Environment::live_count(), before);
}

TEST(AlEnvLifecycle, LambdaHeavyLoopKeepsLiveCountBounded) {
  Interpreter interp;
  interp.set_gc_threshold(32);
  std::int64_t baseline = Environment::live_count();
  std::int64_t peak = 0;
  // Each iteration defines a fresh self-recursive closure (a guaranteed
  // frame cycle) plus a few throwaway lambdas. Without the collector the
  // live count would grow by several frames per iteration, past 2000.
  for (int i = 0; i < 400; ++i) {
    interp.eval_source(
        "(define (loopy n) (if (< n 1) 0 (loopy (- n 1))))"
        "(loopy 3)"
        "((lambda (x) ((lambda (y) (+ x y)) 2)) 1)");
    peak = std::max(peak, Environment::live_count() - baseline);
  }
  // Bound is generous (threshold 32 plus headroom), but far below the
  // ~2000+ frames the leak produced.
  EXPECT_LT(peak, 300) << "live environments grew without bound";
  EXPECT_LT(std::int64_t(interp.arena_frames()), 300);
}

TEST(AlEnvLifecycle, ExplicitCollectReclaimsCycleFrames) {
  Interpreter interp;
  interp.set_gc_threshold(1000000);  // keep automatic GC out of the way
  std::size_t base_frames = interp.arena_frames();
  // The body closes over n, so every call must materialize a real
  // environment frame (the bytecode engine keeps closure-free bodies in
  // stack slots and would otherwise allocate nothing to collect).
  for (int i = 0; i < 50; ++i)
    interp.eval_source(
        "(define (g n) (lambda () n) (if (< n 1) 0 (g (- n 1)))) (g 2)");
  ASSERT_GT(interp.arena_frames(), base_frames);
  interp.collect_garbage();
  // Only the frames still reachable from the global scope (g's defining
  // frames chain up to global, which holds the latest g) may survive.
  EXPECT_LT(interp.arena_frames(), base_frames + 10);
}

TEST(AlEnvLifecycle, SetBangCycleIsReclaimed) {
  Interpreter interp;
  interp.set_gc_threshold(1000000);
  for (int i = 0; i < 30; ++i) {
    // Build a cycle through mutation: the let-frame holds a closure that
    // captures the same frame via set!.
    interp.eval_source(
        "(define keep (let ((cell nil))"
        "  (set! cell (lambda () cell))"
        "  42))");
  }
  std::size_t before = interp.arena_frames();
  std::size_t freed = interp.collect_garbage();
  EXPECT_GT(freed, 0u);
  EXPECT_LT(interp.arena_frames(), before);
}

TEST(AlEnvLifecycle, SemanticsSurviveCollection) {
  Interpreter interp;
  // A closure reachable from global must keep working across a forced
  // collection, captured frame and all.
  interp.eval_source("(define (make-counter)"
                     "  (let ((n 0))"
                     "    (lambda () (set! n (+ n 1)) n)))"
                     "(define tick (make-counter))"
                     "(tick) (tick)");
  interp.collect_garbage();
  Value v = interp.eval_source("(tick)");
  EXPECT_EQ(v.as_int(), 3);

  // Recursion through a global closure still works post-collect.
  interp.eval_source("(define (fact n) (if (< n 2) 1 (* n (fact (- n 1)))))");
  interp.collect_garbage();
  EXPECT_EQ(interp.eval_source("(fact 6)").as_int(), 720);
}

TEST(AlEnvLifecycle, PinnedFramesOutsideArenaStayValid) {
  // Closures built over a standalone (non-arena) frame pin it strongly, so
  // the closure keeps working even after the creating scope is gone.
  Interpreter interp;
  Value fn;
  {
    auto frame = Environment::make(interp.global());
    frame->define("offset", Value(10));
    fn = interp.eval(interp.eval_source("'(lambda (x) (+ x offset))"), frame);
  }
  EXPECT_EQ(interp.call(fn, {Value(5)}).as_int(), 15);
}

}  // namespace
}  // namespace interop::al
