#include <gtest/gtest.h>

#include "al/interp.hpp"
#include "al/reader.hpp"

namespace interop::al {
namespace {

// ------------------------------------------------------------------ reader

TEST(Reader, Atoms) {
  EXPECT_TRUE(read_one("nil").is_nil());
  EXPECT_EQ(read_one("42").as_int(), 42);
  EXPECT_EQ(read_one("-17").as_int(), -17);
  EXPECT_DOUBLE_EQ(read_one("2.5").as_double(), 2.5);
  EXPECT_TRUE(read_one("#t").as_bool());
  EXPECT_FALSE(read_one("#f").as_bool());
  EXPECT_EQ(read_one("\"hi\\nthere\"").as_string(), "hi\nthere");
  EXPECT_EQ(read_one("foo-bar").as_symbol().name, "foo-bar");
}

TEST(Reader, ListsAndQuote) {
  Value v = read_one("(a (b 1) \"s\")");
  ASSERT_TRUE(v.is_list());
  EXPECT_EQ(v.as_list().size(), 3u);
  Value q = read_one("'x");
  EXPECT_EQ(q.write(), "(quote x)");
}

TEST(Reader, CommentsAndMultipleForms) {
  auto forms = read_all("1 ; comment\n2 3");
  EXPECT_EQ(forms.size(), 3u);
  EXPECT_EQ(forms[2].as_int(), 3);
}

TEST(Reader, Errors) {
  EXPECT_THROW(read_one("(unterminated"), AlError);
  EXPECT_THROW(read_one("\"open"), AlError);
  EXPECT_THROW(read_one(")"), AlError);
  EXPECT_THROW(read_one("1 2"), AlError);
}

TEST(Reader, WriteRoundTrip) {
  for (const char* src :
       {"(1 2 3)", "(a \"b\" 2.5 #t nil)", "(quote (x y))"}) {
    Value v = read_one(src);
    EXPECT_TRUE(read_one(v.write()).equals(v)) << src;
  }
}

// ------------------------------------------------------------------- eval

class AlEval : public ::testing::Test {
 protected:
  Value run(const std::string& src) { return interp.eval_source(src); }
  Interpreter interp;
};

TEST_F(AlEval, Arithmetic) {
  EXPECT_EQ(run("(+ 1 2 3)").as_int(), 6);
  EXPECT_EQ(run("(- 10 4 1)").as_int(), 5);
  EXPECT_EQ(run("(* 2 3 4)").as_int(), 24);
  EXPECT_EQ(run("(/ 10 2)").as_int(), 5);
  EXPECT_DOUBLE_EQ(run("(/ 1 2)").as_double(), 0.5);
  EXPECT_EQ(run("(mod 7 3)").as_int(), 1);
  EXPECT_EQ(run("(min 3 1 2)").as_int(), 1);
  EXPECT_EQ(run("(max 3 1 2)").as_int(), 3);
  EXPECT_DOUBLE_EQ(run("(+ 1 0.5)").as_double(), 1.5);
}

TEST_F(AlEval, ComparisonAndLogic) {
  EXPECT_TRUE(run("(< 1 2 3)").as_bool());
  EXPECT_FALSE(run("(< 1 3 2)").as_bool());
  EXPECT_TRUE(run("(= 2 2)").as_bool());
  EXPECT_TRUE(run("(equal? (list 1 2) (list 1 2))").as_bool());
  EXPECT_TRUE(run("(not #f)").as_bool());
  EXPECT_EQ(run("(and 1 2 3)").as_int(), 3);
  EXPECT_FALSE(run("(and 1 #f 3)").as_bool());
  EXPECT_EQ(run("(or #f 7)").as_int(), 7);
}

TEST_F(AlEval, SpecialForms) {
  EXPECT_EQ(run("(if (> 2 1) 10 20)").as_int(), 10);
  EXPECT_EQ(run("(if #f 10)").is_nil(), true);
  EXPECT_EQ(run("(cond ((= 1 2) 5) ((= 1 1) 6) (else 7))").as_int(), 6);
  EXPECT_EQ(run("(cond ((= 1 2) 5) (else 7))").as_int(), 7);
  EXPECT_EQ(run("(begin 1 2 3)").as_int(), 3);
  EXPECT_EQ(run("(let ((x 2) (y 3)) (* x y))").as_int(), 6);
  run("(define z 9)");
  EXPECT_EQ(run("z").as_int(), 9);
  run("(set! z 11)");
  EXPECT_EQ(run("z").as_int(), 11);
  EXPECT_THROW(run("(set! unbound 1)"), AlError);
}

TEST_F(AlEval, LambdasAndClosures) {
  run("(define (adder n) (lambda (x) (+ x n)))");
  run("(define add5 (adder 5))");
  EXPECT_EQ(run("(add5 10)").as_int(), 15);
  // Closures capture their own frame.
  run("(define add7 (adder 7))");
  EXPECT_EQ(run("(add5 1)").as_int(), 6);
  EXPECT_EQ(run("(add7 1)").as_int(), 8);
  EXPECT_THROW(run("(add5 1 2)"), AlError);  // arity
}

TEST_F(AlEval, Recursion) {
  run("(define (fact n) (if (<= n 1) 1 (* n (fact (- n 1)))))");
  EXPECT_EQ(run("(fact 10)").as_int(), 3628800);
}

TEST_F(AlEval, WhileLoop) {
  run("(define i 0) (define acc 0)");
  run("(while (< i 5) (set! acc (+ acc i)) (set! i (+ i 1)))");
  EXPECT_EQ(run("acc").as_int(), 10);
}

TEST_F(AlEval, StringBuiltins) {
  EXPECT_EQ(run("(string-append \"a\" \"b\" 3)").as_string(), "ab3");
  EXPECT_EQ(run("(string-length \"abcd\")").as_int(), 4);
  EXPECT_EQ(run("(substring \"hello\" 1 3)").as_string(), "el");
  EXPECT_EQ(run("(string-upcase \"ab\")").as_string(), "AB");
  EXPECT_EQ(run("(string-downcase \"AB\")").as_string(), "ab");
  Value parts = run("(string-split \"r:4.7k:2p\" \":\")");
  ASSERT_TRUE(parts.is_list());
  EXPECT_EQ(parts.as_list().size(), 3u);
  EXPECT_EQ(parts.as_list()[1].as_string(), "4.7k");
  EXPECT_EQ(run("(string-replace \"a.b\" \".\" \"_\")").as_string(), "a_b");
  EXPECT_EQ(run("(string-index \"hello\" \"ll\")").as_int(), 2);
  EXPECT_FALSE(run("(string-index \"hello\" \"z\")").truthy());
  EXPECT_TRUE(run("(string-prefix? \"vl_res\" \"vl_\")").as_bool());
  EXPECT_TRUE(run("(string-suffix? \"x.sch\" \".sch\")").as_bool());
  EXPECT_EQ(run("(string-trim \"  x \")").as_string(), "x");
  EXPECT_EQ(run("(string->number \"42\")").as_int(), 42);
  EXPECT_DOUBLE_EQ(run("(string->number \"2.5\")").as_double(), 2.5);
  EXPECT_FALSE(run("(string->number \"4.7k\")").truthy());
  EXPECT_EQ(run("(number->string 7)").as_string(), "7");
}

TEST_F(AlEval, ListBuiltins) {
  EXPECT_EQ(run("(length (list 1 2 3))").as_int(), 3);
  EXPECT_EQ(run("(first (list 4 5))").as_int(), 4);
  EXPECT_EQ(run("(rest (list 4 5 6))").as_list().size(), 2u);
  EXPECT_EQ(run("(nth (list 4 5 6) 2)").as_int(), 6);
  EXPECT_EQ(run("(cons 0 (list 1))").as_list().size(), 2u);
  EXPECT_EQ(run("(append (list 1) (list 2 3))").as_list().size(), 3u);
  EXPECT_EQ(run("(reverse (list 1 2 3))").as_list()[0].as_int(), 3);
  EXPECT_THROW(run("(nth (list 1) 5)"), AlError);
}

TEST_F(AlEval, HigherOrder) {
  EXPECT_EQ(run("(map (lambda (x) (* x x)) (list 1 2 3))").write(),
            "(1 4 9)");
  EXPECT_EQ(run("(filter (lambda (x) (> x 1)) (list 0 1 2 3))").write(),
            "(2 3)");
  EXPECT_EQ(run("(foldl + 0 (list 1 2 3 4))").as_int(), 10);
}

TEST_F(AlEval, StepLimitGuardsRunaway) {
  interp.set_step_limit(1000);
  EXPECT_THROW(run("(while #t 1)"), AlError);
}

TEST_F(AlEval, CallDepthGuardsRunawayRecursion) {
  run("(define (f) (f))");
  EXPECT_THROW(run("(f)"), AlError);
  // Legitimate deep-but-bounded recursion still works under the limit.
  interp.set_max_call_depth(64);
  run("(define (count n) (if (<= n 0) 0 (+ 1 (count (- n 1)))))");
  EXPECT_EQ(run("(count 50)").as_int(), 50);
  EXPECT_THROW(run("(count 100)"), AlError);
}

TEST_F(AlEval, HostBuiltinRegistration) {
  int called = 0;
  interp.register_builtin("host-fn", [&called](std::vector<Value>& args) {
    called = int(args[0].as_int());
    return Value(args[0].as_int() * 2);
  });
  EXPECT_EQ(run("(host-fn 21)").as_int(), 42);
  EXPECT_EQ(called, 21);
}

TEST_F(AlEval, Truthiness) {
  EXPECT_FALSE(Value().truthy());
  EXPECT_FALSE(Value(false).truthy());
  EXPECT_TRUE(Value(0).truthy());  // 0 is true, Lisp-style
  EXPECT_TRUE(Value("").truthy());
}

}  // namespace
}  // namespace interop::al
