#include <gtest/gtest.h>

#include <clocale>
#include <cstring>

#include "al/interp.hpp"
#include "al/number.hpp"
#include "al/reader.hpp"

namespace interop::al {
namespace {

// ------------------------------------------------------------------ reader

TEST(Reader, Atoms) {
  EXPECT_TRUE(read_one("nil").is_nil());
  EXPECT_EQ(read_one("42").as_int(), 42);
  EXPECT_EQ(read_one("-17").as_int(), -17);
  EXPECT_DOUBLE_EQ(read_one("2.5").as_double(), 2.5);
  EXPECT_TRUE(read_one("#t").as_bool());
  EXPECT_FALSE(read_one("#f").as_bool());
  EXPECT_EQ(read_one("\"hi\\nthere\"").as_string(), "hi\nthere");
  EXPECT_EQ(read_one("foo-bar").as_symbol().name, "foo-bar");
}

TEST(Reader, ListsAndQuote) {
  Value v = read_one("(a (b 1) \"s\")");
  ASSERT_TRUE(v.is_list());
  EXPECT_EQ(v.as_list().size(), 3u);
  Value q = read_one("'x");
  EXPECT_EQ(q.write(), "(quote x)");
}

TEST(Reader, CommentsAndMultipleForms) {
  auto forms = read_all("1 ; comment\n2 3");
  EXPECT_EQ(forms.size(), 3u);
  EXPECT_EQ(forms[2].as_int(), 3);
}

TEST(Reader, Errors) {
  EXPECT_THROW(read_one("(unterminated"), AlError);
  EXPECT_THROW(read_one("\"open"), AlError);
  EXPECT_THROW(read_one(")"), AlError);
  EXPECT_THROW(read_one("1 2"), AlError);
}

TEST(Reader, WriteRoundTrip) {
  for (const char* src :
       {"(1 2 3)", "(a \"b\" 2.5 #t nil)", "(quote (x y))"}) {
    Value v = read_one(src);
    EXPECT_TRUE(read_one(v.write()).equals(v)) << src;
  }
}

// Regression: strtoll used to clamp out-of-range integers to INT64_MAX
// with errno silently ignored. An over-wide integer literal now falls
// through to double (still the same number, just inexact), never a
// truncated int64.
TEST(Reader, OutOfRangeIntegerFallsThroughToDouble) {
  Value v = read_one("99999999999999999999");
  ASSERT_TRUE(v.is_double());
  EXPECT_DOUBLE_EQ(v.as_double(), 1e20);
  Value neg = read_one("-99999999999999999999");
  ASSERT_TRUE(neg.is_double());
  EXPECT_DOUBLE_EQ(neg.as_double(), -1e20);
  // The int64 boundary itself still reads exactly.
  EXPECT_EQ(read_one("9223372036854775807").as_int(),
            std::int64_t(9223372036854775807LL));
  ASSERT_TRUE(read_one("9223372036854775808").is_double());
}

// Regression: strtod used to turn 1e99999 into inf (ERANGE ignored).
// a/L numeric literals are finite by policy: anything out of double range
// — in either direction — is a symbol, as are inf/nan spellings.
TEST(Reader, OutOfRangeDoubleFallsThroughToSymbol) {
  EXPECT_TRUE(read_one("1e99999").is_symbol());
  EXPECT_TRUE(read_one("-1e99999").is_symbol());
  EXPECT_TRUE(read_one("1e-99999").is_symbol());
  EXPECT_TRUE(read_one("inf").is_symbol());
  EXPECT_TRUE(read_one("nan").is_symbol());
  EXPECT_TRUE(read_one("-inf").is_symbol());
}

TEST(Reader, PlusPrefixedNumbers) {
  EXPECT_EQ(read_one("+5").as_int(), 5);
  EXPECT_DOUBLE_EQ(read_one("+2.5").as_double(), 2.5);
  EXPECT_DOUBLE_EQ(read_one("+.5").as_double(), 0.5);
  EXPECT_TRUE(read_one("+").is_symbol());
  EXPECT_TRUE(read_one("+-5").is_symbol());
  EXPECT_TRUE(read_one("+x").is_symbol());
}

// The reader must not care about LC_NUMERIC: under a comma-decimal locale
// strtod would parse "1.5" as 1 (stopping at the period) or print 1.5 as
// "1,5". std::from_chars/std::to_chars are locale-independent by spec.
TEST(Reader, CommaDecimalLocaleDoesNotChangeParsing) {
  std::string saved = std::setlocale(LC_NUMERIC, nullptr);
  const char* comma_locale = nullptr;
  for (const char* cand : {"de_DE.UTF-8", "de_DE.utf8", "de_DE", "fr_FR.UTF-8",
                           "fr_FR.utf8", "fr_FR"}) {
    if (std::setlocale(LC_NUMERIC, cand)) {
      comma_locale = cand;
      break;
    }
  }
  if (!comma_locale) {
    std::setlocale(LC_NUMERIC, saved.c_str());
    GTEST_SKIP() << "no comma-decimal locale installed in this image";
  }
  Value v = read_one("1.5");
  EXPECT_TRUE(v.is_double());
  EXPECT_DOUBLE_EQ(v.as_double(), 1.5);
  EXPECT_DOUBLE_EQ(parse_double("2.75").value_or(0), 2.75);
  EXPECT_EQ(format_double(2.5), "2.5");  // not "2,5"
  Interpreter interp;
  EXPECT_DOUBLE_EQ(interp.eval_source("(string->number \"2.5\")").as_double(),
                   2.5);
  EXPECT_EQ(interp.eval_source("(number->string 2.5)").as_string(), "2.5");
  std::setlocale(LC_NUMERIC, saved.c_str());
}

// ------------------------------------------------------------------- eval

/// The whole evaluator suite runs on BOTH engines: the tree-walker oracle
/// and the bytecode VM must be observationally identical.
class AlEval : public ::testing::TestWithParam<Engine> {
 protected:
  AlEval() { interp.set_engine(GetParam()); }
  Value run(const std::string& src) { return interp.eval_source(src); }
  Interpreter interp;
};

INSTANTIATE_TEST_SUITE_P(Engines, AlEval,
                         ::testing::Values(Engine::TreeWalker,
                                           Engine::Bytecode),
                         [](const ::testing::TestParamInfo<Engine>& info) {
                           return info.param == Engine::TreeWalker
                                      ? "TreeWalker"
                                      : "Bytecode";
                         });

TEST_P(AlEval, Arithmetic) {
  EXPECT_EQ(run("(+ 1 2 3)").as_int(), 6);
  EXPECT_EQ(run("(- 10 4 1)").as_int(), 5);
  EXPECT_EQ(run("(* 2 3 4)").as_int(), 24);
  EXPECT_EQ(run("(/ 10 2)").as_int(), 5);
  EXPECT_DOUBLE_EQ(run("(/ 1 2)").as_double(), 0.5);
  EXPECT_EQ(run("(mod 7 3)").as_int(), 1);
  EXPECT_EQ(run("(min 3 1 2)").as_int(), 1);
  EXPECT_EQ(run("(max 3 1 2)").as_int(), 3);
  EXPECT_DOUBLE_EQ(run("(+ 1 0.5)").as_double(), 1.5);
}

TEST_P(AlEval, ComparisonAndLogic) {
  EXPECT_TRUE(run("(< 1 2 3)").as_bool());
  EXPECT_FALSE(run("(< 1 3 2)").as_bool());
  EXPECT_TRUE(run("(= 2 2)").as_bool());
  EXPECT_TRUE(run("(equal? (list 1 2) (list 1 2))").as_bool());
  EXPECT_TRUE(run("(not #f)").as_bool());
  EXPECT_EQ(run("(and 1 2 3)").as_int(), 3);
  EXPECT_FALSE(run("(and 1 #f 3)").as_bool());
  EXPECT_EQ(run("(or #f 7)").as_int(), 7);
}

TEST_P(AlEval, SpecialForms) {
  EXPECT_EQ(run("(if (> 2 1) 10 20)").as_int(), 10);
  EXPECT_EQ(run("(if #f 10)").is_nil(), true);
  EXPECT_EQ(run("(cond ((= 1 2) 5) ((= 1 1) 6) (else 7))").as_int(), 6);
  EXPECT_EQ(run("(cond ((= 1 2) 5) (else 7))").as_int(), 7);
  EXPECT_EQ(run("(begin 1 2 3)").as_int(), 3);
  EXPECT_EQ(run("(let ((x 2) (y 3)) (* x y))").as_int(), 6);
  run("(define z 9)");
  EXPECT_EQ(run("z").as_int(), 9);
  run("(set! z 11)");
  EXPECT_EQ(run("z").as_int(), 11);
  EXPECT_THROW(run("(set! unbound 1)"), AlError);
}

TEST_P(AlEval, LambdasAndClosures) {
  run("(define (adder n) (lambda (x) (+ x n)))");
  run("(define add5 (adder 5))");
  EXPECT_EQ(run("(add5 10)").as_int(), 15);
  // Closures capture their own frame.
  run("(define add7 (adder 7))");
  EXPECT_EQ(run("(add5 1)").as_int(), 6);
  EXPECT_EQ(run("(add7 1)").as_int(), 8);
  EXPECT_THROW(run("(add5 1 2)"), AlError);  // arity
}

TEST_P(AlEval, Recursion) {
  run("(define (fact n) (if (<= n 1) 1 (* n (fact (- n 1)))))");
  EXPECT_EQ(run("(fact 10)").as_int(), 3628800);
}

TEST_P(AlEval, WhileLoop) {
  run("(define i 0) (define acc 0)");
  run("(while (< i 5) (set! acc (+ acc i)) (set! i (+ i 1)))");
  EXPECT_EQ(run("acc").as_int(), 10);
}

TEST_P(AlEval, StringBuiltins) {
  EXPECT_EQ(run("(string-append \"a\" \"b\" 3)").as_string(), "ab3");
  EXPECT_EQ(run("(string-length \"abcd\")").as_int(), 4);
  EXPECT_EQ(run("(substring \"hello\" 1 3)").as_string(), "el");
  EXPECT_EQ(run("(string-upcase \"ab\")").as_string(), "AB");
  EXPECT_EQ(run("(string-downcase \"AB\")").as_string(), "ab");
  Value parts = run("(string-split \"r:4.7k:2p\" \":\")");
  ASSERT_TRUE(parts.is_list());
  EXPECT_EQ(parts.as_list().size(), 3u);
  EXPECT_EQ(parts.as_list()[1].as_string(), "4.7k");
  EXPECT_EQ(run("(string-replace \"a.b\" \".\" \"_\")").as_string(), "a_b");
  EXPECT_EQ(run("(string-index \"hello\" \"ll\")").as_int(), 2);
  EXPECT_FALSE(run("(string-index \"hello\" \"z\")").truthy());
  EXPECT_TRUE(run("(string-prefix? \"vl_res\" \"vl_\")").as_bool());
  EXPECT_TRUE(run("(string-suffix? \"x.sch\" \".sch\")").as_bool());
  EXPECT_EQ(run("(string-trim \"  x \")").as_string(), "x");
  EXPECT_EQ(run("(string->number \"42\")").as_int(), 42);
  EXPECT_DOUBLE_EQ(run("(string->number \"2.5\")").as_double(), 2.5);
  EXPECT_FALSE(run("(string->number \"4.7k\")").truthy());
  EXPECT_EQ(run("(number->string 7)").as_string(), "7");
}

TEST_P(AlEval, ListBuiltins) {
  EXPECT_EQ(run("(length (list 1 2 3))").as_int(), 3);
  EXPECT_EQ(run("(first (list 4 5))").as_int(), 4);
  EXPECT_EQ(run("(rest (list 4 5 6))").as_list().size(), 2u);
  EXPECT_EQ(run("(nth (list 4 5 6) 2)").as_int(), 6);
  EXPECT_EQ(run("(cons 0 (list 1))").as_list().size(), 2u);
  EXPECT_EQ(run("(append (list 1) (list 2 3))").as_list().size(), 3u);
  EXPECT_EQ(run("(reverse (list 1 2 3))").as_list()[0].as_int(), 3);
  EXPECT_THROW(run("(nth (list 1) 5)"), AlError);
}

TEST_P(AlEval, HigherOrder) {
  EXPECT_EQ(run("(map (lambda (x) (* x x)) (list 1 2 3))").write(),
            "(1 4 9)");
  EXPECT_EQ(run("(filter (lambda (x) (> x 1)) (list 0 1 2 3))").write(),
            "(2 3)");
  EXPECT_EQ(run("(foldl + 0 (list 1 2 3 4))").as_int(), 10);
}

TEST_P(AlEval, StepLimitGuardsRunaway) {
  interp.set_step_limit(1000);
  EXPECT_THROW(run("(while #t 1)"), AlError);
}

TEST_P(AlEval, CallDepthGuardsRunawayRecursion) {
  run("(define (f) (f))");
  EXPECT_THROW(run("(f)"), AlError);
  // Legitimate deep-but-bounded recursion still works under the limit.
  interp.set_max_call_depth(64);
  run("(define (count n) (if (<= n 0) 0 (+ 1 (count (- n 1)))))");
  EXPECT_EQ(run("(count 50)").as_int(), 50);
  EXPECT_THROW(run("(count 100)"), AlError);
}

TEST_P(AlEval, HostBuiltinRegistration) {
  int called = 0;
  interp.register_builtin("host-fn", [&called](std::vector<Value>& args) {
    called = int(args[0].as_int());
    return Value(args[0].as_int() * 2);
  });
  EXPECT_EQ(run("(host-fn 21)").as_int(), 42);
  EXPECT_EQ(called, 21);
}

TEST_P(AlEval, Truthiness) {
  EXPECT_FALSE(Value().truthy());
  EXPECT_FALSE(Value(false).truthy());
  EXPECT_TRUE(Value(0).truthy());  // 0 is true, Lisp-style
  EXPECT_TRUE(Value("").truthy());
}

}  // namespace
}  // namespace interop::al
