// Bytecode-engine-specific tests: properties of the compiler/VM that the
// differential suite cannot see because the tree-walker has no equivalent
// (disassembly, constant folding, flat-frame recursion depth beyond the
// C++ stack, compile caching) plus mixed-engine interop, where closures
// from one engine are called by the other.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "al/compile.hpp"
#include "al/interp.hpp"
#include "al/reader.hpp"
#include "al/vm.hpp"

namespace interop::al {
namespace {

std::shared_ptr<const Proto> compile_src(Interpreter& interp,
                                         const std::string& src) {
  return compile_unit(interp, read_all(src), "<test>");
}

TEST(AlVm, DisassembleShowsConstantsAndNames) {
  Interpreter interp;
  auto proto = compile_src(interp, "(define x 7) (+ x 2)");
  std::string text = disassemble(*proto);
  EXPECT_NE(text.find("const"), std::string::npos) << text;
  EXPECT_NE(text.find("define x"), std::string::npos) << text;
  EXPECT_NE(text.find("load x"), std::string::npos) << text;
  EXPECT_NE(text.find("call"), std::string::npos) << text;
}

TEST(AlVm, ConstantFoldingCollapsesPureBuiltinCalls) {
  Interpreter interp;
  // All-literal args to a pure builtin fold at compile time: no Call op.
  auto folded = compile_src(interp, "(+ 1 2 3)");
  EXPECT_EQ(disassemble(*folded).find("call"), std::string::npos)
      << disassemble(*folded);
  EXPECT_EQ(Vm::run(interp, folded, interp.global()).as_int(), 6);

  // A shadowed name must NOT fold — the unit rebinds "+" before use.
  auto shadowed =
      compile_src(interp, "(define (go) (+ 1 2)) (define + -) (go)");
  EXPECT_NE(disassemble(*shadowed).find("call"), std::string::npos)
      << disassemble(*shadowed);

  // Non-literal args never fold.
  auto dynamic = compile_src(interp, "(define a 1) (+ a 2)");
  EXPECT_NE(disassemble(*dynamic).find("call"), std::string::npos);
}

TEST(AlVm, FoldFailureFallsBackToRuntimeError) {
  Interpreter interp;
  interp.set_engine(Engine::Bytecode);
  // (substring "ab" 5 9) is whitelisted + all literals, but throws when
  // folded; compilation must keep the runtime call, and the runtime error
  // must match the walker's.
  try {
    interp.eval_source("(substring \"ab\" 5 9)");
    FAIL() << "expected AlError";
  } catch (const AlError& e) {
    Interpreter walker;
    walker.set_engine(Engine::TreeWalker);
    try {
      walker.eval_source("(substring \"ab\" 5 9)");
      FAIL() << "walker accepted it";
    } catch (const AlError& w) {
      EXPECT_STREQ(e.what(), w.what());
    }
  }
}

TEST(AlVm, DeepRecursionUsesFlatFramesNotTheCxxStack) {
  // 20000 activation records would overflow a native stack if each VM call
  // recursed in C++; the flat frame vector makes this just memory.
  Interpreter interp;
  interp.set_engine(Engine::Bytecode);
  interp.set_max_call_depth(25000);
  Value out = interp.eval_source(
      "(define (count n) (if (<= n 0) 0 (+ 1 (count (- n 1)))))"
      " (count 20000)");
  EXPECT_EQ(out.as_int(), 20000);
}

TEST(AlVm, MixedEngineClosuresInteroperate) {
  // A VM closure handed to the walker's higher-order builtins, and a
  // walker lambda called from VM code, must both work: host code sees one
  // is_callable() protocol regardless of which engine built the value.
  Interpreter vm_interp;
  vm_interp.set_engine(Engine::Bytecode);
  Value vm_fn = vm_interp.eval_source("(lambda (x) (* x 10))");
  ASSERT_TRUE(vm_fn.is_vm_closure());
  EXPECT_EQ(vm_interp.call(vm_fn, {Value(std::int64_t(4))}).as_int(), 40);

  // Walker lambda invoked while the engine is set to Bytecode: Call op
  // reenters the tree-walker.
  Interpreter interp;
  interp.set_engine(Engine::TreeWalker);
  interp.eval_source("(define (twice f x) (f (f x)))");
  interp.set_engine(Engine::Bytecode);
  Value out = interp.eval_source("(twice (lambda (n) (+ n 3)) 1)");
  EXPECT_EQ(out.as_int(), 7);
}

TEST(AlVm, ExpiredClosureEnvironmentErrors) {
  Value escaped;
  {
    Interpreter interp;
    interp.set_engine(Engine::Bytecode);
    escaped = interp.eval_source("(let ((n 5)) (lambda () n))");
    ASSERT_TRUE(escaped.is_vm_closure());
    // Still alive: callable while the defining interpreter exists.
    EXPECT_EQ(interp.call(escaped, {}).as_int(), 5);
  }
  Interpreter other;
  other.set_engine(Engine::Bytecode);
  try {
    other.call(escaped, {});
    FAIL() << "expected expired-environment error";
  } catch (const AlError& e) {
    EXPECT_NE(std::string(e.what()).find("expired"), std::string::npos)
        << e.what();
  }
}

TEST(AlVm, CompileCacheReusesProtosAcrossEvals) {
  // CallbackHost::run re-evals the same source per migrated object; the
  // cache must return the same compiled unit while still re-executing it
  // (fresh defines each time), and must not leak state between runs.
  Interpreter interp;
  interp.set_engine(Engine::Bytecode);
  const std::string src = "(define n 1) (set! n (+ n 1)) n";
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(interp.eval_source(src).as_int(), 2) << "iteration " << i;
}

TEST(AlVm, StepLimitAppliesPerTopLevelEval) {
  Interpreter interp;
  interp.set_engine(Engine::Bytecode);
  interp.set_step_limit(200);
  EXPECT_THROW(interp.eval_source("(define i 0) (while (< i 100000)"
                                  " (set! i (+ i 1)))"),
               AlError);
  // Budget resets for the next top-level eval: small programs still run.
  EXPECT_EQ(interp.eval_source("(+ 1 1)").as_int(), 2);
}

TEST(AlVm, GcReclaimsVmClosureCycles) {
  Interpreter interp;
  interp.set_engine(Engine::Bytecode);
  interp.eval_source(
      "(define (spin k)"
      "  (if (> k 0)"
      "      (begin (let ((self nil)) (set! self (lambda () self)))"
      "             (spin (- k 1)))"
      "      nil))"
      " (spin 200)");
  interp.collect_garbage();
  // Each loop iteration made a cyclic frame<->closure pair; all must be
  // collectable once unreachable. Globals frame remains.
  EXPECT_LT(interp.arena_frames(), 10u);
}

}  // namespace
}  // namespace interop::al
