#include "base/geometry.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace interop::base {
namespace {

TEST(Point, Arithmetic) {
  Point a{3, 4}, b{1, -2};
  EXPECT_EQ(a + b, (Point{4, 2}));
  EXPECT_EQ(a - b, (Point{2, 6}));
  EXPECT_EQ(-a, (Point{-3, -4}));
  EXPECT_EQ(manhattan(a, b), 2 + 6);
}

TEST(Rect, NormalizesCorners) {
  Rect r({5, 7}, {1, 2});
  EXPECT_EQ(r.lo(), (Point{1, 2}));
  EXPECT_EQ(r.hi(), (Point{5, 7}));
  EXPECT_EQ(r.width(), 4);
  EXPECT_EQ(r.height(), 5);
  EXPECT_EQ(r.area(), 20);
}

TEST(Rect, ContainsAndOverlap) {
  Rect r = Rect::from_xywh(0, 0, 10, 10);
  EXPECT_TRUE(r.contains(Point{0, 0}));
  EXPECT_TRUE(r.contains(Point{10, 10}));
  EXPECT_FALSE(r.contains(Point{11, 5}));
  EXPECT_TRUE(r.overlaps(Rect::from_xywh(5, 5, 10, 10)));
  EXPECT_FALSE(r.overlaps(Rect::from_xywh(10, 0, 5, 5)));  // edge touch only
  EXPECT_TRUE(r.touches(Rect::from_xywh(10, 0, 5, 5)));
  EXPECT_FALSE(r.touches(Rect::from_xywh(11, 0, 5, 5)));
}

TEST(Rect, UnionIntersection) {
  Rect a = Rect::from_xywh(0, 0, 4, 4);
  Rect b = Rect::from_xywh(2, 2, 4, 4);
  EXPECT_EQ(a.united(b), Rect::from_xywh(0, 0, 6, 6));
  auto i = a.intersected(b);
  ASSERT_TRUE(i.has_value());
  EXPECT_EQ(*i, Rect::from_xywh(2, 2, 2, 2));
  EXPECT_FALSE(a.intersected(Rect::from_xywh(100, 100, 1, 1)).has_value());
}

TEST(Rect, Inflate) {
  Rect r = Rect::from_xywh(2, 2, 4, 4);
  EXPECT_EQ(r.inflated(1), Rect::from_xywh(1, 1, 6, 6));
  EXPECT_EQ(r.inflated(-1), Rect::from_xywh(3, 3, 2, 2));
  // Over-shrink collapses to the center.
  EXPECT_EQ(r.inflated(-10).width(), 0);
}

TEST(Orient, StringRoundTrip) {
  for (Orient o : kAllOrients) {
    auto back = orient_from_string(to_string(o));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, o);
  }
  EXPECT_FALSE(orient_from_string("R45").has_value());
}

TEST(Orient, MirrorFlag) {
  EXPECT_FALSE(is_mirrored(Orient::R0));
  EXPECT_FALSE(is_mirrored(Orient::R270));
  EXPECT_TRUE(is_mirrored(Orient::MX));
  EXPECT_TRUE(is_mirrored(Orient::MYR90));
}

class OrientPairs : public ::testing::TestWithParam<std::tuple<Orient, Orient>> {};

TEST_P(OrientPairs, ComposeMatchesMatrixAction) {
  auto [a, b] = GetParam();
  // compose(a, b) applied to a point == b applied after a.
  Transform ta(a, {0, 0}), tb(b, {0, 0});
  Transform tc(compose(a, b), {0, 0});
  for (Point p : {Point{1, 0}, Point{0, 1}, Point{3, -7}}) {
    EXPECT_EQ(tc.apply(p), tb.apply(ta.apply(p)));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, OrientPairs,
    ::testing::Combine(::testing::ValuesIn(kAllOrients),
                       ::testing::ValuesIn(kAllOrients)));

class OrientEach : public ::testing::TestWithParam<Orient> {};

TEST_P(OrientEach, InverseUndoes) {
  Orient o = GetParam();
  EXPECT_EQ(compose(o, inverse(o)), Orient::R0);
  EXPECT_EQ(compose(inverse(o), o), Orient::R0);
}

TEST_P(OrientEach, TransformInverseRoundTrip) {
  Transform t(GetParam(), {13, -5});
  Transform inv = t.inverted();
  for (Point p : {Point{0, 0}, Point{2, 9}, Point{-4, 1}}) {
    EXPECT_EQ(inv.apply(t.apply(p)), p);
    EXPECT_EQ(t.apply(inv.apply(p)), p);
  }
}

INSTANTIATE_TEST_SUITE_P(AllOrients, OrientEach,
                         ::testing::ValuesIn(kAllOrients));

TEST(Transform, ComposeAssociatesWithApply) {
  Transform a(Orient::R90, {5, 0});
  Transform b(Orient::MX, {-2, 3});
  Point p{7, 11};
  EXPECT_EQ((a * b).apply(p), a.apply(b.apply(p)));
}

TEST(Transform, RotationMovesPin) {
  // A pin at (2,0) on a symbol placed R90 at origin (10,10).
  Transform t(Orient::R90, {10, 10});
  EXPECT_EQ(t.apply(Point{2, 0}), (Point{10, 12}));
}

TEST(Segment, ContainsOnAxis) {
  Segment h{{0, 5}, {10, 5}};
  EXPECT_TRUE(h.horizontal());
  EXPECT_TRUE(h.contains({0, 5}));
  EXPECT_TRUE(h.contains({7, 5}));
  EXPECT_FALSE(h.contains({7, 6}));
  EXPECT_FALSE(h.contains({11, 5}));

  Segment v{{3, 0}, {3, 4}};
  EXPECT_TRUE(v.vertical());
  EXPECT_TRUE(v.contains({3, 2}));
  EXPECT_FALSE(v.contains({2, 2}));
}

TEST(Segment, SplitAt) {
  Segment h{{0, 5}, {10, 5}};
  auto [l, r] = split_at(h, {4, 5});
  EXPECT_EQ(l, (Segment{{0, 5}, {4, 5}}));
  EXPECT_EQ(r, (Segment{{4, 5}, {10, 5}}));
}

TEST(Geometry, StreamOutput) {
  std::ostringstream os;
  os << Point{1, 2} << ' ' << Orient::MXR90;
  EXPECT_EQ(os.str(), "(1,2) MXR90");
}

}  // namespace
}  // namespace interop::base
