#include <gtest/gtest.h>

#include <sstream>

#include "base/diagnostics.hpp"
#include "base/graph.hpp"
#include "base/property.hpp"
#include "base/report.hpp"
#include "base/rng.hpp"
#include "base/strings.hpp"

namespace interop::base {
namespace {

// ---------------------------------------------------------------- property

TEST(PropertyValue, TextRendering) {
  EXPECT_EQ(PropertyValue("4.7k").text(), "4.7k");
  EXPECT_EQ(PropertyValue(42).text(), "42");
  EXPECT_EQ(PropertyValue(true).text(), "true");
  PropertyValue list(PropertyValue::List{PropertyValue(1), PropertyValue("x")});
  EXPECT_EQ(list.text(), "1 x");
}

TEST(PropertySet, SetGetErase) {
  PropertySet ps;
  EXPECT_TRUE(ps.empty());
  ps.set("model", PropertyValue("rmod"));
  EXPECT_TRUE(ps.has("model"));
  EXPECT_EQ(ps.get_text("model"), "rmod");
  EXPECT_EQ(ps.get_text("missing", "dflt"), "dflt");
  EXPECT_FALSE(ps.get("missing").has_value());
  EXPECT_TRUE(ps.erase("model"));
  EXPECT_FALSE(ps.erase("model"));
}

TEST(PropertySet, RenameSemantics) {
  PropertySet ps;
  ps.set("REFDES", PropertyValue("U7"));
  EXPECT_TRUE(ps.rename("REFDES", "instName"));
  EXPECT_EQ(ps.get_text("instName"), "U7");
  EXPECT_FALSE(ps.has("REFDES"));
  // Renaming onto an existing name fails and leaves both intact.
  ps.set("other", PropertyValue("x"));
  EXPECT_FALSE(ps.rename("instName", "other"));
  EXPECT_EQ(ps.get_text("instName"), "U7");
  // Renaming a missing property fails.
  EXPECT_FALSE(ps.rename("nope", "any"));
}

TEST(PropertySet, DeterministicIterationOrder) {
  PropertySet ps;
  ps.set("zeta", PropertyValue(1));
  ps.set("alpha", PropertyValue(2));
  ps.set("mid", PropertyValue(3));
  std::vector<std::string> names;
  for (const auto& [name, value] : ps) names.push_back(name);
  EXPECT_EQ(names, (std::vector<std::string>{"alpha", "mid", "zeta"}));
}

// ------------------------------------------------------------- diagnostics

TEST(Diagnostics, CountsBySeverityAndCode) {
  DiagnosticEngine de;
  de.note("a", "first");
  de.warn("b", "second");
  de.error("b", "third", {"sys", "obj"});
  EXPECT_EQ(de.all().size(), 3u);
  EXPECT_EQ(de.count(Severity::Note), 1u);
  EXPECT_EQ(de.count(Severity::Warning), 1u);
  EXPECT_EQ(de.count(Severity::Error), 1u);
  EXPECT_EQ(de.count_code("b"), 2u);
  EXPECT_TRUE(de.has_errors());
  EXPECT_EQ(de.with_code("b").size(), 2u);
  std::ostringstream os;
  de.print(os);
  EXPECT_NE(os.str().find("error [b] sys: obj: third"), std::string::npos);
  de.clear();
  EXPECT_FALSE(de.has_errors());
}

// ------------------------------------------------------------------ strings

TEST(Strings, SplitJoin) {
  EXPECT_EQ(split("a:b::c", ':'),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(split_ws("  a \t b\nc "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(join({"x", "y", "z"}, ", "), "x, y, z");
}

TEST(Strings, TrimCasePrefix) {
  EXPECT_EQ(trim("  hi \n"), "hi");
  EXPECT_EQ(to_lower("AbC"), "abc");
  EXPECT_EQ(to_upper("AbC"), "ABC");
  EXPECT_TRUE(starts_with("vl_nand2", "vl_"));
  EXPECT_FALSE(starts_with("x", "xyz"));
  EXPECT_TRUE(ends_with("top.sch", ".sch"));
}

TEST(Strings, ReplaceAllAndFormat) {
  EXPECT_EQ(replace_all("a.b.c", ".", "::"), "a::b::c");
  EXPECT_EQ(replace_all("aaa", "aa", "b"), "ba");
  EXPECT_EQ(strformat("%s=%d", "x", 42), "x=42");
}

// -------------------------------------------------------------------- graph

TEST(Digraph, TopoOrderOnDag) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  EXPECT_FALSE(g.add_edge(0, 1));  // duplicate suppressed
  EXPECT_EQ(g.edge_count(), 4u);
  auto order = g.topo_order();
  ASSERT_TRUE(order.has_value());
  std::vector<std::size_t> pos(4);
  for (std::size_t i = 0; i < order->size(); ++i) pos[(*order)[i]] = i;
  EXPECT_LT(pos[0], pos[1]);
  EXPECT_LT(pos[1], pos[3]);
  EXPECT_LT(pos[2], pos[3]);
  EXPECT_FALSE(g.has_cycle());
}

TEST(Digraph, DetectsCycle) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  EXPECT_TRUE(g.has_cycle());
}

TEST(Digraph, Reachability) {
  Digraph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  auto fwd = g.reachable_from(0);
  EXPECT_EQ(fwd.size(), 3u);
  auto back = g.reaching(2);
  EXPECT_EQ(back.size(), 3u);
  EXPECT_EQ(g.reachable_from(3).size(), 2u);
}

TEST(Digraph, InducedSubgraph) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  std::vector<std::optional<NodeId>> remap;
  Digraph sub = g.induced({true, false, true, true}, &remap);
  EXPECT_EQ(sub.size(), 3u);
  EXPECT_FALSE(remap[1].has_value());
  // Edge 1->2 vanished with node 1; 2->3 survives under new ids.
  EXPECT_TRUE(sub.has_edge(*remap[2], *remap[3]));
  EXPECT_EQ(sub.edge_count(), 1u);
}

// ---------------------------------------------------------------------- rng

TEST(Rng, DeterministicAndInRange) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
  Rng r(1);
  for (int i = 0; i < 1000; ++i) {
    std::int64_t v = r.uniform(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
    double d = r.uniform01();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, IdentifierShape) {
  Rng r(5);
  std::string id = r.identifier(12);
  EXPECT_EQ(id.size(), 12u);
  EXPECT_TRUE(isalpha(static_cast<unsigned char>(id[0])));
}

TEST(Rng, ShuffleKeepsElements) {
  Rng r(3);
  std::vector<int> v{1, 2, 3, 4, 5};
  auto sorted = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

// ------------------------------------------------------------------- report

TEST(ReportTable, FormatsAligned) {
  ReportTable t("demo", {"name", "value"});
  t.add_row({"alpha", ReportTable::num(std::int64_t(42))});
  t.add_row({"b", ReportTable::pct(0.125)});
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cell(1, 1), "12.5%");
  std::string s = t.str();
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("| alpha | 42"), std::string::npos);
}

TEST(ReportTable, NumberFormatting) {
  EXPECT_EQ(ReportTable::num(3.14159, 3), "3.142");
  EXPECT_EQ(ReportTable::num(std::int64_t(-7)), "-7");
  EXPECT_EQ(ReportTable::pct(1.0, 0), "100%");
}

}  // namespace
}  // namespace interop::base
