#include "base/units.hpp"

#include <gtest/gtest.h>

namespace interop::base {
namespace {

TEST(Rational, Normalizes) {
  Rational r(4, 8);
  EXPECT_EQ(r.num(), 1);
  EXPECT_EQ(r.den(), 2);
  Rational neg(3, -6);
  EXPECT_EQ(neg.num(), -1);
  EXPECT_EQ(neg.den(), 2);
}

TEST(Rational, Arithmetic) {
  Rational a(1, 10), b(1, 16);
  EXPECT_EQ(a + b, Rational(13, 80));
  EXPECT_EQ(a - b, Rational(3, 80));
  EXPECT_EQ(a * b, Rational(1, 160));
  EXPECT_EQ(a / b, Rational(8, 5));
  EXPECT_EQ(a.reciprocal(), Rational(10));
}

TEST(Rational, Ordering) {
  EXPECT_TRUE(Rational(1, 16) < Rational(1, 10));
  EXPECT_FALSE(Rational(1, 10) < Rational(1, 10));
}

TEST(Rational, Errors) {
  EXPECT_THROW(Rational(1, 0), std::invalid_argument);
  EXPECT_THROW(Rational(1, 2) / Rational(0), std::domain_error);
  EXPECT_THROW(Rational(0).reciprocal(), std::domain_error);
}

TEST(Rational, Str) {
  EXPECT_EQ(Rational(8, 5).str(), "8/5");
  EXPECT_EQ(Rational(4, 2).str(), "2");
}

TEST(Grid, PositionAndUnits) {
  Grid tenth(Rational(1, 10));
  EXPECT_EQ(tenth.position_of(5), Rational(1, 2));
  EXPECT_EQ(tenth.units_of(Rational(1, 2)), 5);
  EXPECT_FALSE(tenth.units_of(Rational(1, 16)).has_value());
}

TEST(Grid, SnapRounding) {
  Grid g(Rational(1, 4));
  EXPECT_EQ(g.snap(Rational(3, 8)), 2);   // 1.5 units -> rounds up
  EXPECT_EQ(g.snap(Rational(1, 3)), 1);   // 1.33 units -> 1
  EXPECT_EQ(g.snap(Rational(-3, 8)), -1); // -1.5 -> rounds toward +inf
}

// The paper's exact scaling case: Viewlogic 1/10" grid to Composer 1/16".
TEST(Grid, PaperScalingCase) {
  Grid vl(Rational(1, 10));
  Grid cd(Rational(1, 16));
  EXPECT_EQ(scale_factor(vl, cd), Rational(8, 5));

  // 5 Viewlogic units (half an inch) is exactly 8 Composer units.
  EXPECT_EQ(rescale_exact(5, vl, cd), 8);
  // 1 Viewlogic unit (0.1") is 1.6 Composer units: off-grid.
  EXPECT_FALSE(rescale_exact(1, vl, cd).has_value());
  EXPECT_EQ(rescale_snapped(1, vl, cd), 2);
  EXPECT_EQ(rescale_snapped(2, vl, cd), 3);  // 3.2 -> 3
}

class GridPairRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GridPairRoundTrip, ExactRescaleIsReversible) {
  auto [da, db] = GetParam();
  Grid a(Rational(1, da)), b(Rational(1, db));
  for (std::int64_t v = -20; v <= 20; ++v) {
    auto there = rescale_exact(v, a, b);
    if (!there) continue;
    auto back = rescale_exact(*there, b, a);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, v);
  }
}

INSTANTIATE_TEST_SUITE_P(CommonPitches, GridPairRoundTrip,
                         ::testing::Combine(::testing::Values(10, 16, 4, 20),
                                            ::testing::Values(10, 16, 4, 20)));

}  // namespace
}  // namespace interop::base
