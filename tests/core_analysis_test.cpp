#include <gtest/gtest.h>

#include "core/analysis.hpp"
#include "core/optimize.hpp"

namespace interop::core {
namespace {

// Two tasks, two tools whose ports disagree on every §6 classification axis.
struct Fixture {
  Fixture() {
    Task produce{"syn", "synthesize", TaskCategory::Creation, {"rtl"},
                 {"netlist"}, "synthesis"};
    Task consume{"route", "place and route", TaskCategory::Creation,
                 {"netlist"}, {"layout"}, "pnr"};
    tasks.add(produce);
    tasks.add(consume);

    ToolModel syn;
    syn.name = "SynTool";
    syn.vendor = "vendorA";
    syn.inputs = {{"rtl", "verilog", "4value", "hier", "long"}};
    syn.outputs = {{"netlist", "vnet", "12value", "hier", "long"}};
    syn.controls = {{"tcl", true}};
    syn.invocation_cost = 2.0;

    ToolModel route;
    route.name = "RouteTool";
    route.vendor = "vendorB";
    route.inputs = {{"netlist", "edif", "4value", "flat", "8char"}};
    route.outputs = {{"layout", "def", "na", "flat", "8char"}};
    route.controls = {{"gui", true}};
    route.invocation_cost = 3.0;

    tools.add(syn);
    tools.add(route);
    map.assign("syn", "SynTool");
    map.assign("route", "RouteTool");
  }

  TaskGraph tasks;
  ToolLibrary tools;
  TaskToolMap map;
};

TEST(Coverage, HolesOverlapsAndGaps) {
  Fixture f;
  TaskToolMap partial;
  partial.assign("syn", "SynTool");
  CoverageReport cov = analyze_coverage(f.tasks, f.tools, partial);
  EXPECT_EQ(cov.holes, std::vector<std::string>{"route"});

  TaskToolMap doubled = f.map;
  doubled.assign("syn", "RouteTool");
  cov = analyze_coverage(f.tasks, f.tools, doubled);
  EXPECT_EQ(cov.overlaps, std::vector<std::string>{"syn"});
  // RouteTool has no rtl port at all: a port gap.
  EXPECT_FALSE(cov.port_gaps.empty());

  cov = analyze_coverage(f.tasks, f.tools, f.map);
  EXPECT_TRUE(cov.holes.empty());
  EXPECT_TRUE(cov.overlaps.empty());
  EXPECT_TRUE(cov.port_gaps.empty());
}

TEST(FlowAnalysis, FindsAllFiveClassicProblems) {
  Fixture f;
  auto issues = analyze_flow(f.tasks, f.tools, f.map);
  std::set<IssueKind> kinds;
  for (const InteropIssue& i : issues) kinds.insert(i.kind);
  EXPECT_TRUE(kinds.count(IssueKind::Performance));         // vnet -> edif
  EXPECT_TRUE(kinds.count(IssueKind::NameMapping));         // long -> 8char
  EXPECT_TRUE(kinds.count(IssueKind::StructureMapping));    // hier -> flat
  EXPECT_TRUE(kinds.count(IssueKind::SemanticInterpretation));  // 12v -> 4v
  EXPECT_TRUE(kinds.count(IssueKind::ToolControl));         // tcl vs gui
  EXPECT_EQ(issues.size(), 5u);
}

TEST(FlowAnalysis, NoIssuesWhenPortsAgree) {
  Fixture f;
  // Align the consumer with the producer.
  ToolModel* route = f.tools.find_mutable("RouteTool");
  route->inputs[0] = *f.tools.find("SynTool")->output_for("netlist");
  route->controls.push_back({"tcl", true});
  EXPECT_TRUE(analyze_flow(f.tasks, f.tools, f.map).empty());
}

TEST(FlowAnalysis, SameToolEdgesAreFree) {
  Fixture f;
  TaskToolMap same;
  same.assign("syn", "SynTool");
  same.assign("route", "SynTool");
  EXPECT_TRUE(analyze_flow(f.tasks, f.tools, same).empty());
}

TEST(FlowCost, CombinesInvocationAndPenalty) {
  Fixture f;
  FlowCost cost = flow_cost(f.tasks, f.tools, f.map, 5.0);
  EXPECT_DOUBLE_EQ(cost.invocation, 5.0);        // 2 + 3
  EXPECT_DOUBLE_EQ(cost.interop_penalty, 25.0);  // 5 issues x 5.0
  EXPECT_DOUBLE_EQ(cost.total(), 30.0);
}

// ---- the three §6 optimizations ----

TEST(Optimize, RepartitionOnlyWorksWithinControllableVendor) {
  Fixture f;
  // Different vendors: nothing to repartition.
  OptimizationOutcome none = repartition_boundaries(
      f.tasks, f.tools, f.map, {"vendorA", "vendorB"});
  EXPECT_EQ(none.issues_removed, 0);

  // Same vendor and controllable: the boundary disappears.
  f.tools.find_mutable("RouteTool")->vendor = "vendorA";
  OptimizationOutcome out =
      repartition_boundaries(f.tasks, f.tools, f.map, {"vendorA"});
  EXPECT_GT(out.issues_removed, 0);
  EXPECT_GT(out.improvement(), 0.0);
  EXPECT_TRUE(analyze_flow(f.tasks, f.tools, f.map).empty());
}

TEST(Optimize, RepartitionRespectsBlackBoxes) {
  Fixture f;
  f.tools.find_mutable("RouteTool")->vendor = "vendorA";
  // Same vendor but NOT controllable (black boxes): no change.
  OptimizationOutcome out =
      repartition_boundaries(f.tasks, f.tools, f.map, {"someoneElse"});
  EXPECT_EQ(out.issues_removed, 0);
}

TEST(Optimize, DataConventionsFixConvertibleNamespaces) {
  Fixture f;
  std::size_t before = analyze_flow(f.tasks, f.tools, f.map).size();
  OptimizationOutcome out = apply_data_conventions(
      f.tasks, f.tools, f.map, {{"long", "8char"}});
  EXPECT_EQ(out.issues_removed, 1);
  EXPECT_EQ(analyze_flow(f.tasks, f.tools, f.map).size(), before - 1);

  // Non-convertible pairs stay broken.
  Fixture g;
  OptimizationOutcome none = apply_data_conventions(
      g.tasks, g.tools, g.map, {{"8char", "long"}});  // wrong direction
  EXPECT_EQ(none.issues_removed, 0);
}

TEST(Optimize, TechnologySubstitutionShrinksFlow) {
  // Three tasks: gate-sim + vector-gen replaced by formal verification
  // (the paper's own example of "technological innovation").
  TaskGraph tasks;
  tasks.add({"syn", "", TaskCategory::Creation, {"rtl"}, {"netlist"}, "s"});
  tasks.add({"vecgen", "", TaskCategory::Creation, {"rtl"}, {"vectors"},
             "v"});
  tasks.add({"gatesim", "", TaskCategory::Validation, {"netlist", "vectors"},
             {"equiv-report"}, "v"});
  ToolLibrary tools;
  ToolModel any;
  any.name = "OldTool";
  any.vendor = "x";
  any.inputs = {{"rtl", "verilog", "4value", "hier", "long"},
                {"netlist", "vnet", "4value", "hier", "long"},
                {"vectors", "wgl", "na", "flat", "long"}};
  any.outputs = {{"netlist", "vnet", "4value", "hier", "long"},
                 {"vectors", "wgl", "na", "flat", "long"},
                 {"equiv-report", "text", "na", "flat", "long"}};
  any.invocation_cost = 4.0;
  tools.add(any);
  TaskToolMap map;
  map.assign("syn", "OldTool");
  map.assign("vecgen", "OldTool");
  map.assign("gatesim", "OldTool");

  ToolModel formal;
  formal.name = "FormalEq";
  formal.vendor = "innovator";
  formal.inputs = {{"rtl", "verilog", "4value", "hier", "long"},
                   {"netlist", "vnet", "4value", "hier", "long"}};
  formal.outputs = {{"equiv-report", "text", "na", "flat", "long"}};
  formal.invocation_cost = 2.0;

  Substitution sub = substitute_technology(
      tasks, tools, map, {"vecgen", "gatesim"}, "formal_verify", formal);
  EXPECT_EQ(sub.tasks.size(), 2u);  // syn + formal_verify
  const Task* merged = sub.tasks.find("formal_verify");
  ASSERT_NE(merged, nullptr);
  // External interface preserved: consumes rtl+netlist, produces the report.
  EXPECT_EQ(merged->outputs, std::vector<std::string>{"equiv-report"});
  EXPECT_TRUE(std::find(merged->inputs.begin(), merged->inputs.end(),
                        "netlist") != merged->inputs.end());
  EXPECT_GT(sub.outcome.improvement(), 0.0);
  EXPECT_TRUE(sub.tasks.is_dag());
}

}  // namespace
}  // namespace interop::core
