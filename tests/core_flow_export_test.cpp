#include "core/flow_export.hpp"

#include <gtest/gtest.h>

#include "core/methodology.hpp"
#include "workflow/engine.hpp"

namespace interop::core {
namespace {

TEST(FlowExport, SmallGraphExportsAndRuns) {
  TaskGraph g;
  g.add({"write", "", TaskCategory::Creation, {}, {"rtl"}, "x"});
  g.add({"check", "", TaskCategory::Analysis, {"rtl"}, {"report"}, "x"});
  TaskToolMap map;
  map.assign("write", "Editor");
  map.assign("check", "Linter");

  wf::FlowTemplate flow = export_flow(g, map);
  EXPECT_EQ(flow.validate(), "");
  ASSERT_EQ(flow.steps.size(), 2u);
  EXPECT_EQ(flow.find_step("check")->start_after,
            std::vector<std::string>{"write"});
  // Stable content keys for the runtime's memoization layer.
  EXPECT_EQ(flow.find_step("write")->content_tag, "write@Editor");
  EXPECT_EQ(flow.find_step("check")->content_tag, "check@Linter");

  wf::Engine engine(flow, {}, std::make_unique<wf::SimpleDataManager>());
  ASSERT_EQ(engine.instantiate({}), "");
  EXPECT_EQ(engine.run_all(), 2);
  EXPECT_TRUE(engine.complete());
  EXPECT_TRUE(engine.data().exists("report"));
  // Each tool got its own session.
  EXPECT_EQ(engine.metrics().tool_spawns, 2);
}

TEST(FlowExport, UnmappedTaskFailsItsStep) {
  TaskGraph g;
  g.add({"orphan", "", TaskCategory::Creation, {}, {"out"}, "x"});
  wf::FlowTemplate flow = export_flow(g, TaskToolMap{});
  wf::Engine engine(flow, {}, std::make_unique<wf::SimpleDataManager>());
  ASSERT_EQ(engine.instantiate({}), "");
  engine.run_all();
  EXPECT_EQ(engine.status_report().at("orphan"), wf::StepState::Failed);
}

// The headline integration: run the PRUNED fpga-proto scenario of the full
// cell-based methodology through the workflow engine, end to end, then
// change the architecture spec and watch rework cascade along the real
// information-flow edges.
TEST(FlowExport, FpgaScenarioRunsEndToEnd) {
  CellBasedMethodology m = make_cell_based_methodology();
  TaskGraph pruned = apply_scenario(m.tasks, *m.scenario("fpga-proto"));
  ASSERT_GT(pruned.size(), 20u);

  wf::FlowTemplate flow = export_flow(pruned, m.map);
  EXPECT_EQ(flow.validate(), "");

  wf::Engine engine(flow, {}, std::make_unique<wf::VersioningDataManager>());
  ASSERT_EQ(engine.instantiate({}), "");
  int ran = engine.run_all();
  EXPECT_EQ(ran, int(pruned.size()));
  EXPECT_TRUE(engine.complete()) << engine.last_error();
  // The final deliverable of the scenario exists.
  EXPECT_TRUE(engine.data().exists("proto-signoff"));

  // An ECO arrives: the architecture spec changes. Trigger-based rework
  // re-runs exactly the downstream cone.
  engine.clear_notifications();
  engine.data().write("arch-spec", "v2");
  int reworked = engine.run_all();
  EXPECT_GT(reworked, 0);
  EXPECT_LT(reworked, int(pruned.size()));  // upstream tasks untouched
  EXPECT_TRUE(engine.complete());

  // Rework reached the deliverable (its producer depends on the spec).
  auto ver = dynamic_cast<wf::VersioningDataManager*>(&engine.data());
  ASSERT_NE(ver, nullptr);
  EXPECT_GE(ver->revision_count("proto-signoff"), 2u);
}

TEST(FlowExport, FullAsicScenarioValidates) {
  CellBasedMethodology m = make_cell_based_methodology();
  TaskGraph pruned = apply_scenario(m.tasks, *m.scenario("full-asic"));
  wf::FlowTemplate flow = export_flow(pruned, m.map);
  EXPECT_EQ(flow.validate(), "");
  EXPECT_EQ(flow.steps.size(), pruned.size());
}

}  // namespace
}  // namespace interop::core
