#include "core/methodology.hpp"

#include <gtest/gtest.h>

#include "core/optimize.hpp"

namespace interop::core {
namespace {

class Methodology : public ::testing::Test {
 protected:
  Methodology() : m(make_cell_based_methodology()) {}
  CellBasedMethodology m;
};

// The paper's scale claim: "approximately 200 tasks to describe a cell
// based design methodology that spans from product specification to final
// mask tapeout".
TEST_F(Methodology, ApproximatelyTwoHundredTasks) {
  EXPECT_GE(m.tasks.size(), 180u);
  EXPECT_LE(m.tasks.size(), 220u);
}

TEST_F(Methodology, SpansSpecificationToTapeout) {
  EXPECT_NE(m.tasks.find("spec.market_reqs"), nullptr);
  EXPECT_NE(m.tasks.find("tape.release"), nullptr);
  // Tapeout is reachable from specification.
  auto spec = m.tasks.node_of("spec.market_reqs");
  auto tape = m.tasks.node_of("tape.release");
  ASSERT_TRUE(spec && tape);
  auto reachable = m.tasks.graph().reachable_from(*spec);
  EXPECT_TRUE(std::find(reachable.begin(), reachable.end(), *tape) !=
              reachable.end());
}

TEST_F(Methodology, GraphIsAcyclic) { EXPECT_TRUE(m.tasks.is_dag()); }

TEST_F(Methodology, EveryTaskMappedNoGaps) {
  CoverageReport cov = analyze_coverage(m.tasks, m.tools, m.map);
  EXPECT_TRUE(cov.holes.empty()) << cov.holes.front();
  EXPECT_TRUE(cov.overlaps.empty());
  EXPECT_TRUE(cov.port_gaps.empty())
      << (cov.port_gaps.empty() ? "" : cov.port_gaps.front());
}

TEST_F(Methodology, TaskGraphIsNotLinear) {
  // §6: "task graphs more faithfully represent the designer's choices ...
  // in contrast, tool specific design flow descriptions simplify the
  // problem to one which is linear". A linear flow has max out-degree 1.
  const base::Digraph& g = m.tasks.graph();
  std::size_t max_out = 0;
  for (base::NodeId n = 0; n < g.size(); ++n)
    max_out = std::max(max_out, g.out_degree(n));
  EXPECT_GT(max_out, 3u);
}

TEST_F(Methodology, AnalysisFindsAllFiveProblemClasses) {
  auto issues = analyze_flow(m.tasks, m.tools, m.map);
  EXPECT_GT(issues.size(), 50u);
  std::set<IssueKind> kinds;
  for (const InteropIssue& i : issues) kinds.insert(i.kind);
  EXPECT_EQ(kinds.size(), 5u);
}

TEST_F(Methodology, ScenariosPruneTheGraph) {
  for (const char* name : {"full-asic", "fpga-proto", "ip-delivery"}) {
    const Scenario* sc = m.scenario(name);
    ASSERT_NE(sc, nullptr) << name;
    PruneReport report;
    TaskGraph pruned = apply_scenario(m.tasks, *sc, &report);
    EXPECT_LT(report.after, report.before) << name;
    EXPECT_GT(report.after, 10u) << name;
    EXPECT_TRUE(pruned.is_dag());
  }
  // The prototype scenario is much smaller than the full ASIC one.
  PruneReport full, proto;
  apply_scenario(m.tasks, *m.scenario("full-asic"), &full);
  apply_scenario(m.tasks, *m.scenario("fpga-proto"), &proto);
  EXPECT_LT(proto.after, full.after / 2);
}

TEST_F(Methodology, FullAsicScenarioExcludesFpga) {
  TaskGraph pruned = apply_scenario(m.tasks, *m.scenario("full-asic"));
  EXPECT_EQ(pruned.find("fpga.bitgen"), nullptr);
  EXPECT_NE(pruned.find("tape.stream_out"), nullptr);
}

TEST_F(Methodology, OptimizationsReduceCostInSequence) {
  TaskGraph flow = apply_scenario(m.tasks, *m.scenario("full-asic"));
  double cost0 = flow_cost(flow, m.tools, m.map).total();

  // (1) repartition within the vendors the CAD group controls.
  OptimizationOutcome r1 = repartition_boundaries(
      flow, m.tools, m.map, {"vlogic", "layo", "synplex"});
  EXPECT_GT(r1.issues_removed, 0);
  double cost1 = flow_cost(flow, m.tools, m.map).total();
  EXPECT_LT(cost1, cost0);

  // (2) naming conventions make long<->8char and case conversions safe.
  OptimizationOutcome r2 = apply_data_conventions(
      flow, m.tools, m.map,
      {{"long", "8char"}, {"case-insensitive", "long"},
       {"long", "case-insensitive"}});
  EXPECT_GT(r2.issues_removed, 0);
  double cost2 = flow_cost(flow, m.tools, m.map).total();
  EXPECT_LT(cost2, cost1);

  // (3) formal verification replaces the gate-level sim tasks.
  std::set<std::string> replaced;
  for (const Task& t : flow.tasks())
    if (t.id.rfind("syn.postsim.", 0) == 0) replaced.insert(t.id);
  ASSERT_FALSE(replaced.empty());
  ToolModel formal;
  formal.name = "FormalEq";
  formal.vendor = "innovator";
  formal.inputs = {{"netlist", "vnet", "12value", "hier", "case-insensitive"},
                   {"testbench", "verilog", "4value", "hier", "long"},
                   {"sim-models", "vmodel", "4value", "hier", "long"}};
  formal.outputs = {
      {"gate-sim-results", "vcd", "4value", "hier", "long"}};
  formal.invocation_cost = 0.5;
  Substitution sub = substitute_technology(flow, m.tools, m.map, replaced,
                                           "formal.verify_all", formal);
  EXPECT_EQ(sub.tasks.size(), flow.size() - replaced.size() + 1);
  EXPECT_LT(sub.outcome.after.total(), cost2 + 1e-9);
}

TEST_F(Methodology, PerBlockTasksExistForEveryBlock) {
  for (const std::string& b : methodology_blocks()) {
    EXPECT_NE(m.tasks.find("rtl.write." + b), nullptr) << b;
    EXPECT_NE(m.tasks.find("pr.route." + b), nullptr) << b;
  }
}

}  // namespace
}  // namespace interop::core
