#include "core/platform.hpp"

#include <gtest/gtest.h>

namespace interop::core {
namespace {

bool has_kind(const std::vector<PortabilityIssue>& issues,
              PortabilityIssue::Kind kind) {
  for (const PortabilityIssue& i : issues)
    if (i.kind == kind) return true;
  return false;
}

ScriptSpec sim_script() {
  ScriptSpec s;
  s.name = "run_sim";
  s.language = ScriptLanguage::Perl;
  s.command_spellings = {{"hostname", "hostname"}, {"hostid", "hostid"}};
  s.tools_used = {"VeriSim"};
  s.uses_native_extension = true;  // a PLI module
  return s;
}

// §3.4 "nonstandard operating system commands": hostid spells differently
// on the HP-flavored box.
TEST(Platform, CommandSpellingDiffersAcrossUnixFlavors) {
  auto issues = check_portability(sim_script(), sun_workstation(),
                                  hp_workstation());
  EXPECT_TRUE(has_kind(issues, PortabilityIssue::Kind::CommandSpelling));
  // hostname happens to agree? No: HP spells it "uname -n".
  int spelling = 0;
  for (const auto& i : issues)
    if (i.kind == PortabilityIssue::Kind::CommandSpelling) ++spelling;
  EXPECT_EQ(spelling, 2);
}

// §3.4 "tool version skew": the vendor lags the HP port.
TEST(Platform, ToolVersionSkewDetected) {
  auto issues = check_portability(sim_script(), sun_workstation(),
                                  hp_workstation());
  EXPECT_TRUE(has_kind(issues, PortabilityIssue::Kind::ToolVersionSkew));
}

// §3.4 "extension languages": the PLI module needs the other compiler.
TEST(Platform, NativeExtensionNeedsRecompile) {
  auto issues = check_portability(sim_script(), sun_workstation(),
                                  hp_workstation());
  EXPECT_TRUE(has_kind(issues, PortabilityIssue::Kind::RecompileNeeded));
}

// §3.4 "office / home computing incompatibilities": the home PC has no
// perl, no hostid, an ancient simulator, and no compiler at all.
TEST(Platform, HomePcBreaksEverything) {
  auto issues = check_portability(sim_script(), sun_workstation(), home_pc());
  EXPECT_TRUE(has_kind(issues, PortabilityIssue::Kind::MissingInterpreter));
  EXPECT_TRUE(has_kind(issues, PortabilityIssue::Kind::MissingCommand));
  EXPECT_TRUE(has_kind(issues, PortabilityIssue::Kind::ToolVersionSkew));
  EXPECT_TRUE(has_kind(issues, PortabilityIssue::Kind::NoCompiler));
}

TEST(Platform, SamePlatformIsClean) {
  auto issues = check_portability(sim_script(), sun_workstation(),
                                  sun_workstation());
  EXPECT_TRUE(issues.empty());
}

TEST(Platform, MissingToolDetected) {
  ScriptSpec s = sim_script();
  s.tools_used = {"SomethingElse"};
  s.uses_native_extension = false;
  auto issues = check_portability(s, sun_workstation(), hp_workstation());
  EXPECT_TRUE(has_kind(issues, PortabilityIssue::Kind::MissingTool));
}

// §3.5: "unless a company adopts and enforces a standard for an integration
// language, sharing and reuse ... will be limited."
TEST(ScriptReuse, MixedLanguagesStrandScripts) {
  std::vector<ScriptSpec> pool;
  auto add = [&pool](ScriptLanguage lang, int n) {
    for (int i = 0; i < n; ++i) {
      ScriptSpec s;
      s.name = to_string(lang) + std::to_string(i);
      s.language = lang;
      pool.push_back(s);
    }
  };
  add(ScriptLanguage::Tcl, 5);
  add(ScriptLanguage::Perl, 3);
  add(ScriptLanguage::Skill, 2);
  add(ScriptLanguage::Shell, 2);

  ReuseReport r = analyze_script_reuse(pool);
  ASSERT_TRUE(r.dominant.has_value());
  EXPECT_EQ(*r.dominant, ScriptLanguage::Tcl);
  EXPECT_EQ(r.shareable, 5);
  EXPECT_EQ(r.stranded, 7);
  EXPECT_NEAR(r.reuse_fraction(), 5.0 / 12.0, 1e-9);

  // After the company standardizes on Tcl:
  std::vector<ScriptSpec> standardized = pool;
  for (ScriptSpec& s : standardized) s.language = ScriptLanguage::Tcl;
  ReuseReport r2 = analyze_script_reuse(standardized);
  EXPECT_DOUBLE_EQ(r2.reuse_fraction(), 1.0);
  EXPECT_EQ(r2.stranded, 0);
}

TEST(ScriptReuse, EmptyPoolIsTriviallyReusable) {
  ReuseReport r = analyze_script_reuse({});
  EXPECT_DOUBLE_EQ(r.reuse_fraction(), 1.0);
  EXPECT_FALSE(r.dominant.has_value());
}

}  // namespace
}  // namespace interop::core
