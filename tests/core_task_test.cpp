#include <gtest/gtest.h>

#include "core/scenario.hpp"
#include "core/task.hpp"

namespace interop::core {
namespace {

TaskGraph small_graph() {
  TaskGraph g;
  Task a{"write_rtl", "write the RTL", TaskCategory::Creation, {"spec"},
         {"rtl"}, "rtl"};
  Task b{"simulate", "simulate it", TaskCategory::Validation,
         {"rtl", "testbench"}, {"sim-results"}, "verify"};
  Task c{"write_tb", "write the testbench", TaskCategory::Creation, {"spec"},
         {"testbench"}, "verify"};
  Task d{"synthesize", "map to gates", TaskCategory::Creation, {"rtl"},
         {"netlist"}, "synthesis"};
  g.add(a);
  g.add(b);
  g.add(c);
  g.add(d);
  return g;
}

TEST(TaskGraph, LinksThroughInfoKinds) {
  TaskGraph g = small_graph();
  EXPECT_EQ(g.size(), 4u);
  EXPECT_FALSE(g.add(Task{"write_rtl", "", TaskCategory::Creation, {}, {}}));
  EXPECT_EQ(g.producers_of("rtl"), std::vector<std::string>{"write_rtl"});
  auto consumers = g.consumers_of("rtl");
  EXPECT_EQ(consumers.size(), 2u);

  const base::Digraph& dg = g.graph();
  auto rtl_node = g.node_of("write_rtl");
  auto sim_node = g.node_of("simulate");
  ASSERT_TRUE(rtl_node && sim_node);
  EXPECT_TRUE(dg.has_edge(*rtl_node, *sim_node));
  EXPECT_TRUE(g.is_dag());
}

TEST(TaskGraph, ExternalAndTerminalKinds) {
  TaskGraph g = small_graph();
  EXPECT_TRUE(g.external_inputs().count("spec"));
  EXPECT_FALSE(g.external_inputs().count("rtl"));
  EXPECT_TRUE(g.terminal_outputs().count("sim-results"));
  EXPECT_TRUE(g.terminal_outputs().count("netlist"));
  EXPECT_FALSE(g.terminal_outputs().count("rtl"));
}

TEST(TaskGraph, ReachingOutputsAndSubset) {
  TaskGraph g = small_graph();
  // Only sim-results as goal: synthesize is pruned.
  auto keep = g.tasks_reaching_outputs({"sim-results"});
  EXPECT_EQ(keep.size(), 3u);
  EXPECT_FALSE(keep.count("synthesize"));
  TaskGraph sub = g.subset(keep);
  EXPECT_EQ(sub.size(), 3u);
  EXPECT_TRUE(sub.is_dag());
}

TEST(Scenario, PrunesByGoalAndExclusions) {
  TaskGraph g = small_graph();
  Scenario sc;
  sc.name = "sim-only";
  sc.goal_outputs = {"sim-results"};
  PruneReport report;
  TaskGraph pruned = apply_scenario(g, sc, &report);
  EXPECT_EQ(report.before, 4u);
  EXPECT_EQ(report.after, 3u);
  EXPECT_EQ(report.dropped, std::vector<std::string>{"synthesize"});

  Scenario no_tb = sc;
  no_tb.excluded_tasks = {"write_tb"};
  TaskGraph pruned2 = apply_scenario(g, no_tb);
  EXPECT_EQ(pruned2.size(), 2u);

  Scenario no_phase = sc;
  no_phase.excluded_phases = {"verify"};
  TaskGraph pruned3 = apply_scenario(g, no_phase);
  EXPECT_EQ(pruned3.size(), 1u);  // only write_rtl feeds... rtl feeds sim
}

TEST(Scenario, EmptyGoalsKeepEverything) {
  TaskGraph g = small_graph();
  Scenario sc;
  TaskGraph pruned = apply_scenario(g, sc);
  EXPECT_EQ(pruned.size(), g.size());
}

}  // namespace
}  // namespace interop::core
