// Replays every reproducer in tests/corpus/ through the full differential
// pipeline (ctest label: corpus). Each entry pins either a clean regression
// (a bug class that must stay fixed) or a paper-catalogued explained
// divergence (which must stay explained, with exactly the recorded kinds).
// A behaviour change in any dialect, scheduler, synthesizer or exporter
// that re-opens an old disagreement flips its corpus entry.

#include <gtest/gtest.h>

#include <filesystem>

#include "fuzz/corpus.hpp"

namespace fuzz = interop::fuzz;

namespace {

std::string corpus_dir() { return INTEROP_CORPUS_DIR; }

class CorpusReplay : public testing::TestWithParam<std::string> {};

TEST_P(CorpusReplay, Replays) {
  fuzz::Reproducer repro = fuzz::load_reproducer(GetParam());
  std::string error = fuzz::replay_reproducer(repro);
  EXPECT_TRUE(error.empty()) << error;
}

std::string param_name(const testing::TestParamInfo<std::string>& info) {
  std::string stem = std::filesystem::path(info.param).stem().string();
  for (char& c : stem)
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  return stem;
}

INSTANTIATE_TEST_SUITE_P(Corpus, CorpusReplay,
                         testing::ValuesIn(fuzz::list_reproducers(corpus_dir())),
                         param_name);

// The corpus must never silently evaporate (e.g. a bad path after a
// refactor would otherwise make the suite vacuously green).
TEST(CorpusReplayTest, CorpusHasSeedEntries) {
  EXPECT_GE(fuzz::list_reproducers(corpus_dir()).size(), 3u)
      << "expected the seeded corpus in " << corpus_dir();
}

// Reproducer files round-trip through the parser/formatter, so entries
// written by the fuzzer and entries written by hand stay interchangeable.
TEST(CorpusReplayTest, ReproducerFormatRoundTrips) {
  for (const std::string& path : fuzz::list_reproducers(corpus_dir())) {
    fuzz::Reproducer repro = fuzz::load_reproducer(path);
    fuzz::Reproducer back =
        fuzz::parse_reproducer(repro.name, fuzz::format_reproducer(repro));
    EXPECT_EQ(back.spec, repro.spec) << path;
    EXPECT_EQ(back.expect, repro.expect) << path;
  }
}

}  // namespace
