// Tests for the extension modules: VCD persistence, the annealing placer,
// and the §5 closed-loop tuning report.

#include <gtest/gtest.h>

#include "hdl/parser.hpp"
#include "hdl/vcd.hpp"
#include "pnr/generator.hpp"
#include "pnr/place.hpp"
#include "workflow/engine.hpp"

namespace {

// ---------------------------------------------------------------- VCD

TEST(Vcd, WriteContainsDeclarationsAndChanges) {
  using namespace interop::hdl;
  ElabDesign d = elaborate(parse(R"(
    module top(); reg a;
      initial begin a = 0; #5 a = 1; #5 a = 0; end
    endmodule)"), "top");
  Simulation sim(d, SchedulerPolicy::SourceOrder);
  sim.watch_all();
  sim.run(20);
  std::string vcd = write_vcd(d, sim.trace());
  EXPECT_NE(vcd.find("$timescale 1ns $end"), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 1 ! top.a $end"), std::string::npos);
  EXPECT_NE(vcd.find("#0\n0!"), std::string::npos);
  EXPECT_NE(vcd.find("#5\n1!"), std::string::npos);
  EXPECT_NE(vcd.find("#10\n0!"), std::string::npos);
}

TEST(Vcd, RoundTripsTrace) {
  using namespace interop::hdl;
  ElabDesign d = elaborate(parse(R"(
    module top(); reg clk; reg q;
      always @(posedge clk) q <= !q;
      initial begin clk = 0; q = 0; forever #5 clk = !clk; end
    endmodule)"), "top");
  Simulation sim(d, SchedulerPolicy::SourceOrder);
  sim.watch_all();
  sim.run(40);
  Trace original = sim.trace();
  Trace back = read_vcd(d, write_vcd(d, original));
  EXPECT_EQ(back, original);
}

TEST(Vcd, XAndZValuesSurvive) {
  using namespace interop::hdl;
  ElabDesign d = elaborate(parse(R"(
    module top(); reg en; wire t;
      assign t = en ? 1'b1 : 1'bz;
      initial begin en = 0; #5 en = 1; end
    endmodule)"), "top");
  Simulation sim(d, SchedulerPolicy::SourceOrder);
  sim.watch_all();
  sim.run(10);
  Trace back = read_vcd(d, write_vcd(d, sim.trace()));
  EXPECT_EQ(back, sim.trace());
  bool saw_z = false;
  for (const TraceEvent& e : back)
    if (e.value == Logic::Z) saw_z = true;
  EXPECT_TRUE(saw_z);
}

TEST(Vcd, RejectsUndeclaredId) {
  using namespace interop::hdl;
  ElabDesign d = elaborate(parse("module top(); reg a; endmodule"), "top");
  EXPECT_THROW(read_vcd(d, "$enddefinitions $end\n#0\n1?\n"),
               std::runtime_error);
}

// ------------------------------------------------------------- annealing

class Anneal : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Anneal, RefinementNeverWorsensBeyondNoise) {
  using namespace interop::pnr;
  PnrGenOptions opt;
  opt.seed = GetParam();
  opt.instances = 30;
  PhysDesign design = make_pnr_workload(opt);

  std::int64_t initial = total_hpwl(design);
  AnnealOptions aopt;
  aopt.seed = GetParam() * 3 + 1;
  PlaceResult r = place_annealed(design, aopt);
  EXPECT_EQ(r.hpwl_initial, initial);
  // Annealing ends cold: final is at or below the initial placement.
  EXPECT_LE(r.hpwl_final, initial);
  EXPECT_EQ(r.hpwl_final, total_hpwl(design));
  EXPECT_GT(r.swaps_accepted, 0);

  // Placement stays legal: no overlaps.
  for (std::size_t i = 0; i < design.instances.size(); ++i) {
    Rect bi = design.instances[i].placed_boundary(
        *design.find_cell(design.instances[i].cell));
    for (std::size_t j = i + 1; j < design.instances.size(); ++j) {
      Rect bj = design.instances[j].placed_boundary(
          *design.find_cell(design.instances[j].cell));
      EXPECT_FALSE(bi.overlaps(bj));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Anneal, ::testing::Values(2, 6, 11));

// Ablation finding: the same-footprint swap neighborhood is small enough
// that pure descent is near-optimal; annealing must at least stay within
// noise of it (and both crush raw row packing).
TEST(Anneal, WithinNoiseOfGreedy) {
  using namespace interop::pnr;
  std::int64_t greedy_total = 0, anneal_total = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    PnrGenOptions opt;
    opt.seed = seed;
    opt.instances = 30;
    PhysDesign g = make_pnr_workload(opt);
    PhysDesign a = g;
    PlaceOptions popt;
    popt.seed = seed;
    popt.swap_iterations = 3000;
    // place() was already run by the generator; apply refinement passes.
    greedy_total += place(g, popt).hpwl_final;
    AnnealOptions aopt;
    aopt.seed = seed;
    anneal_total += place_annealed(a, aopt).hpwl_final;
  }
  EXPECT_LE(anneal_total, std::int64_t(double(greedy_total) * 1.15));
}

// ---------------------------------------------------------- tuning report

TEST(Tuning, HotspotsIdentifyReworkAndFailures) {
  using namespace interop::wf;
  FlowTemplate flow;
  flow.name = "f";
  flow.steps = {
      {"src", {"src", ActionLanguage::Shell,
               [](ActionApi& api) {
                 api.write_data("a", "x");
                 return ActionResult{0, ""};
               }},
       {}, {}, {}, {"a"}, "", "", ""},
      {"churner", {"churner", ActionLanguage::Shell,
                   [](ActionApi&) { return ActionResult{0, ""}; }},
       {"src"}, {}, {"a"}, {}, "", "", ""},
      {"flaky", {"flaky", ActionLanguage::Shell,
                 [](ActionApi&) {
                   static int attempts = 0;
                   return ActionResult{++attempts < 3 ? 1 : 0, ""};
                 }},
       {}, {}, {}, {}, "", "", ""},
  };
  Engine engine(flow, {}, std::make_unique<SimpleDataManager>());
  ASSERT_EQ(engine.instantiate({}), "");
  engine.run_all();
  // Drive rework: the source data changes twice.
  for (int i = 0; i < 2; ++i) {
    engine.data().write("a", "v" + std::to_string(i));
    engine.run_all();
  }
  // Retry the flaky step until it passes.
  while (engine.status_report().at("flaky") == StepState::Failed) {
    engine.instance().find("flaky")->state = StepState::Ready;
    engine.run_step("flaky");
  }

  Engine::TuningReport report = engine.tuning_report();
  ASSERT_FALSE(report.rework_hotspots.empty());
  EXPECT_EQ(report.rework_hotspots[0].step, "churner");
  EXPECT_EQ(report.rework_hotspots[0].count, 2);
  ASSERT_FALSE(report.failure_hotspots.empty());
  EXPECT_EQ(report.failure_hotspots[0].step, "flaky");
  EXPECT_EQ(report.failure_hotspots[0].count, 2);
  EXPECT_GE(report.total_runs, 6);
}

TEST(Tuning, TopNTruncates) {
  using namespace interop::wf;
  FlowTemplate flow;
  flow.name = "f";
  for (int i = 0; i < 8; ++i) {
    StepDef s;
    s.name = "s" + std::to_string(i);
    s.action = {"fail", ActionLanguage::Shell,
                [](ActionApi&) { return ActionResult{1, ""}; }};
    flow.steps.push_back(std::move(s));
  }
  Engine engine(flow, {}, std::make_unique<SimpleDataManager>());
  ASSERT_EQ(engine.instantiate({}), "");
  engine.run_all();
  EXPECT_EQ(engine.tuning_report(3).failure_hotspots.size(), 3u);
  EXPECT_EQ(engine.tuning_report(20).failure_hotspots.size(), 8u);
}

}  // namespace
