// Golden tests for the delta-debugging minimizer: shrinking is exact on
// synthetic predicates (known minimal spec), deterministic run-to-run, and
// drives a real planted divergence down to its essential axes.

#include <gtest/gtest.h>

#include "fuzz/minimize.hpp"
#include "fuzz/pipeline.hpp"
#include "fuzz/spec.hpp"

namespace fuzz = interop::fuzz;

namespace {

/// The all-floors spec: every axis at its minimum.
fuzz::FuzzSpec floored_spec() {
  fuzz::FuzzSpec spec;
  for (const fuzz::SpecAxis& ax : fuzz::spec_axes()) spec.*(ax.field) = ax.min;
  return spec;
}

TEST(FuzzMinimizerTest, ShrinksToExactSyntheticMinimum) {
  // Predicate depends on two axes only; everything else must be floored
  // and those two must land exactly on their smallest satisfying values.
  auto predicate = [](const fuzz::FuzzSpec& s) {
    return s.regs >= 3 && s.buses >= 2;
  };
  fuzz::FuzzSpec start;  // defaults: regs=3, buses=2 — predicate holds
  start.regs = 8;
  start.buses = 5;
  fuzz::MinimizeResult shrunk = fuzz::minimize(start, predicate);

  fuzz::FuzzSpec expected = floored_spec();
  expected.seed = start.seed;  // seed is never minimized
  expected.regs = 3;
  expected.buses = 2;
  EXPECT_EQ(shrunk.spec, expected);
  EXPECT_TRUE(predicate(shrunk.spec));
}

TEST(FuzzMinimizerTest, BinarySearchFindsInteriorMinimum) {
  // Non-floor minimum in the middle of an axis range: the per-axis binary
  // search must land on it exactly, not merely below the start.
  auto predicate = [](const fuzz::FuzzSpec& s) { return s.die >= 97; };
  fuzz::FuzzSpec start;
  start.die = 150;
  fuzz::MinimizeResult shrunk = fuzz::minimize(start, predicate);
  EXPECT_EQ(shrunk.spec.die, 97);
}

TEST(FuzzMinimizerTest, DeterministicForFixedInput) {
  auto predicate = [](const fuzz::FuzzSpec& s) {
    return s.instances + s.pnr_nets >= 12;
  };
  fuzz::FuzzSpec start;
  start.instances = 20;
  start.pnr_nets = 14;
  fuzz::MinimizeResult a = fuzz::minimize(start, predicate);
  fuzz::MinimizeResult b = fuzz::minimize(start, predicate);
  EXPECT_EQ(a.spec, b.spec);
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.axes_floored, b.axes_floored);
}

TEST(FuzzMinimizerTest, RespectsEvaluationBudget) {
  int calls = 0;
  auto predicate = [&calls](const fuzz::FuzzSpec& s) {
    ++calls;
    return s.regs >= 2;
  };
  fuzz::FuzzSpec start;
  start.regs = 8;
  fuzz::MinimizeResult shrunk = fuzz::minimize(start, predicate, 10);
  EXPECT_LE(shrunk.evaluations, 10);
  EXPECT_EQ(shrunk.evaluations, calls);
  // Whatever the budget, the returned spec still satisfies the predicate.
  EXPECT_GE(shrunk.spec.regs, 2);
}

// A real divergence planted via the pipeline: a model with blocking
// write/read races diverges across scheduler policies (explained, §3.1).
// Minimization against "still shows hdl-policy-diff" must strip the
// uninvolved domains entirely and keep at least one race pair, and must be
// bit-identical across runs — the property that makes fuzzer-filed
// reproducers stable artifacts.
TEST(FuzzMinimizerTest, ShrinksPlantedPolicyDivergenceDeterministically) {
  fuzz::FuzzSpec start;
  start.seed = 5;
  start.races = 3;
  auto has_policy_diff = [](const fuzz::FuzzSpec& s) {
    for (const fuzz::Divergence& d : fuzz::run_pipeline(s).divergences)
      if (d.kind == "hdl-policy-diff") return true;
    return false;
  };
  ASSERT_TRUE(has_policy_diff(start));

  fuzz::MinimizeResult shrunk = fuzz::minimize(start, has_policy_diff);
  EXPECT_TRUE(has_policy_diff(shrunk.spec));
  EXPECT_EQ(shrunk.spec.sch, 0) << "schematic domain is uninvolved";
  EXPECT_EQ(shrunk.spec.pnr, 0) << "pnr domain is uninvolved";
  EXPECT_EQ(shrunk.spec.hdl, 1);
  EXPECT_GE(shrunk.spec.races, 1) << "the race is the divergence";

  fuzz::MinimizeResult again = fuzz::minimize(start, has_policy_diff);
  EXPECT_EQ(again.spec, shrunk.spec);
  EXPECT_EQ(again.evaluations, shrunk.evaluations);
}

}  // namespace
