// The fuzzer's own guarantees: the differential pipeline is pure, the
// feature bitmap is stable, specs round-trip, and — the load-bearing
// property — a fuzz run is bit-identical for any worker count.

#include <gtest/gtest.h>

#include "base/rng.hpp"
#include "fuzz/feature.hpp"
#include "fuzz/fuzzer.hpp"
#include "fuzz/pipeline.hpp"
#include "fuzz/spec.hpp"

namespace fuzz = interop::fuzz;

namespace {

TEST(FeatureBitmapTest, SetTestMergeAndHash) {
  fuzz::FeatureBitmap a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_TRUE(a.set("sch:ref:scalar"));
  EXPECT_FALSE(a.set("sch:ref:scalar")) << "second set of same feature";
  EXPECT_TRUE(a.test("sch:ref:scalar"));
  EXPECT_FALSE(a.test("sch:ref:range"));
  EXPECT_EQ(a.count(), 1u);

  fuzz::FeatureBitmap b;
  b.set("sch:ref:range");
  b.set("sch:ref:scalar");
  EXPECT_TRUE(a.would_grow(b));
  EXPECT_EQ(a.merge(b), 1u) << "only the range feature is new";
  EXPECT_FALSE(a.would_grow(b));
  EXPECT_EQ(a.count(), 2u);

  fuzz::FeatureBitmap c;
  c.set("sch:ref:scalar");
  c.set("sch:ref:range");
  EXPECT_EQ(a.hash(), c.hash()) << "hash depends on content, not order";
}

TEST(FuzzSpecTest, TextRoundTripIsIdentity) {
  fuzz::FuzzSpec spec;
  spec.seed = 0xdeadbeef;
  spec.buses = 5;
  spec.races = 2;
  spec.die = 149;
  EXPECT_EQ(fuzz::spec_from_text(fuzz::to_text(spec)), spec);
}

TEST(FuzzSpecTest, UnknownKeyThrows) {
  EXPECT_THROW(fuzz::spec_from_text("seed=1\nnot_an_axis=3\n"),
               std::runtime_error);
}

TEST(FuzzSpecTest, MutationIsDeterministicAndStaysLegal) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    fuzz::FuzzSpec a, b;
    interop::base::Rng ra(seed), rb(seed);
    for (int step = 0; step < 10; ++step) {
      fuzz::mutate(a, ra);
      fuzz::mutate(b, rb);
    }
    EXPECT_EQ(a, b) << "same rng stream must give the same mutant";
    for (const fuzz::SpecAxis& ax : fuzz::spec_axes()) {
      EXPECT_GE(a.*(ax.field), ax.min) << ax.name;
      EXPECT_LE(a.*(ax.field), ax.max) << ax.name;
    }
    EXPECT_TRUE(a.sch || a.hdl || a.pnr);
  }
}

TEST(FuzzPipelineTest, PureAndDeterministic) {
  fuzz::FuzzSpec spec;
  spec.seed = 42;
  spec.races = 1;
  spec.incomplete_sens = 1;
  fuzz::PipelineResult a = fuzz::run_pipeline(spec);
  fuzz::PipelineResult b = fuzz::run_pipeline(spec);
  EXPECT_EQ(a.features, b.features);
  EXPECT_EQ(a.bitmap.hash(), b.bitmap.hash());
  ASSERT_EQ(a.divergences.size(), b.divergences.size());
  for (std::size_t i = 0; i < a.divergences.size(); ++i) {
    EXPECT_EQ(a.divergences[i].kind, b.divergences[i].kind);
    EXPECT_EQ(a.divergences[i].detail, b.divergences[i].detail);
    EXPECT_EQ(a.divergences[i].explained, b.divergences[i].explained);
  }
  EXPECT_EQ(a.signature(), b.signature());
}

TEST(FuzzPipelineTest, FeatureListMatchesBitmap) {
  fuzz::PipelineResult r = fuzz::run_pipeline(fuzz::FuzzSpec{});
  EXPECT_FALSE(r.features.empty());
  for (const std::string& f : r.features)
    EXPECT_TRUE(r.bitmap.test(f)) << f;
  // Bitmap may be slightly smaller than the list if 8192-bit hashing
  // collides, but can never exceed it.
  EXPECT_LE(r.bitmap.count(), r.features.size());
  EXPECT_GE(r.bitmap.count(), r.features.size() - 2)
      << "implausibly many feature-key collisions";
}

// The acceptance property: `interop_fuzz --seed S --iters N` produces the
// same coverage bitmap, the same kept-seed count and the same reproducers
// for ANY --jobs value. Generation-based evaluation with a serial in-order
// merge is what makes parallel fuzzing debuggable.
TEST(FuzzRunTest, WorkerCountInvariance) {
  fuzz::FuzzOptions opt;
  opt.seed = 9;
  opt.iterations = 48;
  opt.generation_size = 8;

  opt.jobs = 1;
  fuzz::FuzzStats serial = fuzz::fuzz(opt);
  opt.jobs = 4;
  fuzz::FuzzStats parallel = fuzz::fuzz(opt);
  opt.jobs = 3;
  fuzz::FuzzStats odd = fuzz::fuzz(opt);

  EXPECT_EQ(serial.bitmap_hash, parallel.bitmap_hash);
  EXPECT_EQ(serial.bitmap_hash, odd.bitmap_hash);
  EXPECT_EQ(serial.coverage, parallel.coverage);
  EXPECT_EQ(serial.seeds_kept, parallel.seeds_kept);
  EXPECT_EQ(serial.evaluated, parallel.evaluated);
  EXPECT_EQ(serial.coverage_curve, parallel.coverage_curve);
  ASSERT_EQ(serial.reproducers.size(), parallel.reproducers.size());
  for (std::size_t i = 0; i < serial.reproducers.size(); ++i) {
    EXPECT_EQ(fuzz::format_reproducer(serial.reproducers[i]),
              fuzz::format_reproducer(parallel.reproducers[i]));
  }
}

TEST(FuzzRunTest, CoverageGrowsMonotonically) {
  fuzz::FuzzOptions opt;
  opt.seed = 3;
  opt.iterations = 64;
  opt.generation_size = 8;
  fuzz::FuzzStats stats = fuzz::fuzz(opt);

  ASSERT_FALSE(stats.coverage_curve.empty());
  for (std::size_t i = 1; i < stats.coverage_curve.size(); ++i)
    EXPECT_GE(stats.coverage_curve[i].second,
              stats.coverage_curve[i - 1].second);
  // Mutation must actually discover structure beyond the initial seeds.
  EXPECT_GT(stats.coverage_curve.back().second,
            stats.coverage_curve.front().second)
      << "no coverage growth across 8 generations";
  EXPECT_GT(stats.seeds_kept, 0);
}

// The repository's verifiers agree with its tools on every generated
// workload: short fuzz runs find no unexplained divergences. (The nightly
// CI job runs this same property at much larger scale.)
TEST(FuzzRunTest, ShortRunsAreClean) {
  for (std::uint64_t seed : {1ull, 2ull}) {
    fuzz::FuzzOptions opt;
    opt.seed = seed;
    opt.iterations = 32;
    opt.generation_size = 8;
    opt.jobs = 2;
    fuzz::FuzzStats stats = fuzz::fuzz(opt);
    EXPECT_EQ(stats.divergences_unexplained, 0) << "seed " << seed;
    EXPECT_TRUE(stats.reproducers.empty()) << "seed " << seed;
    EXPECT_GT(stats.designs, 0);
    EXPECT_GT(stats.round_trips, 0);
  }
}

}  // namespace
