#include "hdl/cosim.hpp"

#include <gtest/gtest.h>

#include "hdl/parser.hpp"

namespace interop::hdl {
namespace {

ElabDesign elab(const std::string& src, const std::string& top) {
  return elaborate(parse(src), top);
}

// The split design: A computes mid = a & b; B computes out = mid | c and
// feeds back fb = out ^ d into A, which computes w = fb & a.
// The combinational path a->mid->out->fb->w crosses the boundary twice.
const char* kSideA = R"(
  module sa(); reg a, b, d; wire fb; reg w_in; wire mid; wire w;
    assign mid = a & b;
    assign w = w_in & a;
    initial begin a = 1; b = 1; d = 0; w_in = 0; end
  endmodule
)";
const char* kSideB = R"(
  module sb(); reg mid_in, c; wire out; wire fb;
    assign out = mid_in | c;
    assign fb = out ^ 1'b0;
    initial begin mid_in = 0; c = 0; end
  endmodule
)";

// The same circuit in one kernel: the golden reference.
const char* kMonolithic = R"(
  module m(); reg a, b, c, d; wire mid, out, fb, w;
    assign mid = a & b;
    assign out = mid | c;
    assign fb = out ^ 1'b0;
    assign w = fb & a;
    initial begin a = 1; b = 1; c = 0; d = 0; end
  endmodule
)";

class Cosim : public ::testing::Test {
 protected:
  ElabDesign a = elab(kSideA, "sa");
  ElabDesign b = elab(kSideB, "sb");
  ElabDesign mono = elab(kMonolithic, "m");

  void bind(CosimHarness& h) {
    h.bind_a_to_b("sa.mid", "sb.mid_in");
    h.bind_b_to_a("sb.fb", "sa.w_in");
  }
};

TEST_F(Cosim, ConvergentExchangeMatchesMonolithic) {
  CosimOptions opt;
  opt.iterate_to_convergence = true;
  CosimHarness h(a, b, opt);
  bind(h);
  h.run(2);

  Simulation ref(mono, SchedulerPolicy::SourceOrder);
  ref.run(2);
  EXPECT_EQ(h.sim_b().value("sb.out"), ref.value("m.out"));
  EXPECT_EQ(h.sim_a().value("sa.w"), ref.value("m.w"));
  EXPECT_EQ(h.sim_a().value("sa.w"), Logic::L1);
  // The boundary needed more than one exchange: the path crosses twice.
  EXPECT_GT(h.peak_exchange_iterations(), 1);
}

// §3.1's "simulation cycle definition" mismatch: exchanging once per
// timestep leaves the twice-crossing path one exchange stale.
TEST_F(Cosim, OncePerStepExchangeLagsBehind) {
  CosimOptions opt;
  opt.iterate_to_convergence = false;
  CosimHarness h(a, b, opt);
  bind(h);
  h.run(0);  // time 0 only: one exchange

  // mid crossed (a&b = 1), but fb's effect on w has not arrived yet.
  EXPECT_EQ(h.sim_b().value("sb.out"), Logic::L1);
  EXPECT_EQ(h.sim_a().value("sa.w"), Logic::L0);  // STALE

  Simulation ref(mono, SchedulerPolicy::SourceOrder);
  ref.run(0);
  EXPECT_EQ(ref.value("m.w"), Logic::L1);
  EXPECT_NE(h.sim_a().value("sa.w"), ref.value("m.w"));

  // Given more timesteps, the stale value eventually drains through —
  // results depend on *when you look*, the classic co-simulation headache.
  h.run(3);
  EXPECT_EQ(h.sim_a().value("sa.w"), Logic::L1);
}

// §3.1's value-set inconsistency: the bridge flattens Z to X.
TEST_F(Cosim, ZFlattensToXAcrossTheBridge) {
  const char* src_a = R"(
    module za(); reg en; wire tri_out;
      assign tri_out = en ? 1'b1 : 1'bz;
      initial en = 0;
    endmodule
  )";
  const char* src_b = R"(
    module zb(); reg zin; reg seen;
      always @(zin) seen = zin;
      initial begin zin = 0; seen = 0; end
    endmodule
  )";
  ElabDesign za = elab(src_a, "za");
  ElabDesign zb = elab(src_b, "zb");

  for (bool lossy : {false, true}) {
    CosimOptions opt;
    opt.z_becomes_x = lossy;
    CosimHarness h(za, zb, opt);
    h.bind_a_to_b("za.tri_out", "zb.zin");
    h.run(1);
    EXPECT_EQ(h.sim_b().value("zb.seen"), lossy ? Logic::X : Logic::Z)
        << (lossy ? "lossy" : "faithful");
  }
}

TEST_F(Cosim, ExchangeIterationLimitGuards) {
  // An unstable boundary (inverter loop across the bridge) stops at the
  // iteration limit instead of hanging.
  const char* osc_a = R"(
    module oa(); reg in_a; wire out_a; assign out_a = !in_a;
      initial in_a = 0;
    endmodule
  )";
  const char* osc_b = R"(
    module ob(); reg in_b; wire out_b; assign out_b = in_b;
      initial in_b = 0;
    endmodule
  )";
  ElabDesign oa = elab(osc_a, "oa");
  ElabDesign ob = elab(osc_b, "ob");
  CosimOptions opt;
  opt.max_exchange_iterations = 5;
  CosimHarness h(oa, ob, opt);
  h.bind_a_to_b("oa.out_a", "ob.in_b");
  h.bind_b_to_a("ob.out_b", "oa.in_a");
  h.run(0);
  EXPECT_EQ(h.last_exchange_iterations(), 5);
}

}  // namespace
}  // namespace interop::hdl
