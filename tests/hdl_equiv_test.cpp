#include "hdl/equiv.hpp"

#include <gtest/gtest.h>

#include "hdl/parser.hpp"
#include "hdl/synth.hpp"

namespace interop::hdl {
namespace {

TEST(Equiv, IdenticalModulesAreEquivalent) {
  Module a = parse_module(R"(
    module t(a, b, y); input a, b; output y;
      assign y = a & b;
    endmodule)");
  Module b = clone(a);
  EquivResult r = check_equivalence(a, b);
  ASSERT_TRUE(r.comparable) << r.error;
  EXPECT_TRUE(r.equivalent);
  EXPECT_EQ(r.vectors_checked, 4);
}

TEST(Equiv, DeMorganEquivalence) {
  Module a = parse_module(R"(
    module t(a, b, y); input a, b; output y;
      assign y = ~(a & b);
    endmodule)");
  Module b = parse_module(R"(
    module t(a, b, y); input a, b; output y;
      assign y = ~a | ~b;
    endmodule)");
  EquivResult r = check_equivalence(a, b);
  ASSERT_TRUE(r.comparable) << r.error;
  EXPECT_TRUE(r.equivalent);
}

TEST(Equiv, FindsCounterexample) {
  Module a = parse_module(R"(
    module t(a, b, y); input a, b; output y;
      assign y = a & b;
    endmodule)");
  Module b = parse_module(R"(
    module t(a, b, y); input a, b; output y;
      assign y = a | b;
    endmodule)");
  EquivResult r = check_equivalence(a, b);
  ASSERT_TRUE(r.comparable) << r.error;
  EXPECT_FALSE(r.equivalent);
  ASSERT_TRUE(r.counterexample.has_value());
  EXPECT_EQ(r.counterexample->output, "y");
  // The distinguishing vector has exactly one input high.
  int ones = 0;
  for (const std::string& assign : r.counterexample->assignment)
    if (assign.back() == '1') ++ones;
  EXPECT_EQ(ones, 1);
}

// The §6 substitution use case: the synthesized netlist is formally
// equivalent to the RTL, so gate-level simulation tasks can be replaced.
TEST(Equiv, SynthesizedNetlistMatchesRtl) {
  Module rtl = parse_module(R"(
    module t(s, a, b, y); input s, a, b; output y; reg y;
      always @(s or a or b) begin
        if (s) y = a; else y = b;
      end
    endmodule)");
  SynthResult syn = synthesize(rtl, vendor_a_subset());
  ASSERT_TRUE(syn.ok);
  EquivResult r = check_equivalence(rtl, syn.netlist);
  ASSERT_TRUE(r.comparable) << r.error;
  EXPECT_TRUE(r.equivalent);
  EXPECT_EQ(r.vectors_checked, 8);
}

TEST(Equiv, VectorPortsMatchAcrossFlattening) {
  Module rtl = parse_module(R"(
    module t(y); output y; wire [1:0] v; wire y;
      assign v = 2'b10;
      assign y = v[1] ^ v[0];
    endmodule)");
  SynthResult syn = synthesize(rtl, vendor_a_subset());
  ASSERT_TRUE(syn.ok);
  // RTL "y" vs netlist "y"; internal v flattened to v_1/v_0 — outputs match.
  EquivResult r = check_equivalence(rtl, syn.netlist);
  ASSERT_TRUE(r.comparable) << r.error;
  EXPECT_TRUE(r.equivalent);
}

// The incomplete-sensitivity model: as a FUNCTION of (a,b,c) the completed
// combinational interpretation IS the expression — equivalence holds
// point-wise even though the event behaviour differs (T5b shows that side).
TEST(Equiv, CombinationalViewOfSensitivityTrap) {
  Module rtl = parse_module(R"(
    module t(a, b, c, o); input a, b, c; output o; reg o;
      always @(a or b) o = a & b & c;
    endmodule)");
  SynthResult syn = synthesize(rtl, vendor_a_subset());
  ASSERT_TRUE(syn.ok);
  EquivResult r = check_equivalence(rtl, syn.netlist);
  ASSERT_TRUE(r.comparable) << r.error;
  EXPECT_TRUE(r.equivalent);
}

TEST(Equiv, RejectsSequentialModules) {
  Module seq = parse_module(R"(
    module t(clk, d, q); input clk, d; output q; reg q;
      always @(posedge clk) q <= d;
    endmodule)");
  EquivResult r = check_equivalence(seq, seq);
  EXPECT_FALSE(r.comparable);
  EXPECT_NE(r.error.find("sequential"), std::string::npos);
}

TEST(Equiv, RejectsTooManyInputs) {
  // A module with a 20-bit input port: exhaustive checking must refuse.
  Module m = parse_module(R"(
    module t(v, y); input v; output y; wire [19:0] v; wire y;
      assign y = v[0];
    endmodule)");
  EquivResult r = check_equivalence(m, m, /*max_inputs=*/8);
  EXPECT_FALSE(r.comparable);
  EXPECT_NE(r.error.find("too many inputs"), std::string::npos);
}

TEST(Equiv, MismatchedInterfaceReported) {
  Module a = parse_module(
      "module t(a, y); input a; output y; assign y = a; endmodule");
  Module b = parse_module(
      "module t(b, y); input b; output y; assign y = b; endmodule");
  EquivResult r = check_equivalence(a, b);
  EXPECT_FALSE(r.comparable);
  EXPECT_NE(r.error.find("missing"), std::string::npos);
}

}  // namespace
}  // namespace interop::hdl
