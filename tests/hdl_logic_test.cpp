#include "hdl/logic.hpp"

#include <gtest/gtest.h>

namespace interop::hdl {
namespace {

TEST(Logic, CharRoundTrip) {
  for (Logic v : kAllLogic) EXPECT_EQ(logic_from_char(to_char(v)), v);
  EXPECT_EQ(logic_from_char('?'), Logic::X);
}

TEST(Logic, AndTruthTable) {
  EXPECT_EQ(logic_and(Logic::L1, Logic::L1), Logic::L1);
  EXPECT_EQ(logic_and(Logic::L0, Logic::X), Logic::L0);  // 0 dominates
  EXPECT_EQ(logic_and(Logic::X, Logic::L0), Logic::L0);
  EXPECT_EQ(logic_and(Logic::L1, Logic::X), Logic::X);
  EXPECT_EQ(logic_and(Logic::Z, Logic::L1), Logic::X);   // Z reads as X
}

TEST(Logic, OrTruthTable) {
  EXPECT_EQ(logic_or(Logic::L1, Logic::X), Logic::L1);   // 1 dominates
  EXPECT_EQ(logic_or(Logic::L0, Logic::L0), Logic::L0);
  EXPECT_EQ(logic_or(Logic::L0, Logic::X), Logic::X);
  EXPECT_EQ(logic_or(Logic::Z, Logic::L0), Logic::X);
}

TEST(Logic, XorNotEq) {
  EXPECT_EQ(logic_xor(Logic::L1, Logic::L0), Logic::L1);
  EXPECT_EQ(logic_xor(Logic::L1, Logic::L1), Logic::L0);
  EXPECT_EQ(logic_xor(Logic::L1, Logic::X), Logic::X);
  EXPECT_EQ(logic_not(Logic::L0), Logic::L1);
  EXPECT_EQ(logic_not(Logic::Z), Logic::X);
  EXPECT_EQ(logic_eq(Logic::L1, Logic::L1), Logic::L1);
  EXPECT_EQ(logic_eq(Logic::X, Logic::L1), Logic::X);
}

TEST(Logic, Resolution) {
  EXPECT_EQ(resolve(Logic::Z, Logic::L1), Logic::L1);
  EXPECT_EQ(resolve(Logic::L0, Logic::Z), Logic::L0);
  EXPECT_EQ(resolve(Logic::L0, Logic::L1), Logic::X);
  EXPECT_EQ(resolve(Logic::L1, Logic::L1), Logic::L1);
}

TEST(Logic, Mux) {
  EXPECT_EQ(logic_mux(Logic::L1, Logic::L0, Logic::L1), Logic::L0);
  EXPECT_EQ(logic_mux(Logic::L0, Logic::L0, Logic::L1), Logic::L1);
  EXPECT_EQ(logic_mux(Logic::X, Logic::L1, Logic::L1), Logic::L1);
  EXPECT_EQ(logic_mux(Logic::X, Logic::L0, Logic::L1), Logic::X);
}

// Strength-aware resolution (vendor B's value set).
TEST(ExtValue, StrongerDriverWins) {
  ExtValue strong1{Logic::L1, Strength::Strong};
  ExtValue weak0{Logic::L0, Strength::Weak};
  EXPECT_EQ(resolve_ext(strong1, weak0), strong1);
  EXPECT_EQ(resolve_ext(weak0, strong1), strong1);
  ExtValue supply0{Logic::L0, Strength::Supply};
  EXPECT_EQ(resolve_ext(supply0, strong1), supply0);
}

TEST(ExtValue, EqualStrengthConflictsGoX) {
  ExtValue a{Logic::L1, Strength::Strong};
  ExtValue b{Logic::L0, Strength::Strong};
  EXPECT_EQ(resolve_ext(a, b).value, Logic::X);
}

TEST(ExtValue, ZYields) {
  ExtValue z{Logic::Z, Strength::Weak};
  ExtValue w1{Logic::L1, Strength::Weak};
  EXPECT_EQ(resolve_ext(z, w1), w1);
}

TEST(ExtValue, StringForm) {
  EXPECT_EQ(to_string(ExtValue{Logic::L1, Strength::Weak}), "We1");
  EXPECT_EQ(to_string(ExtValue{Logic::X, Strength::Supply}), "Sux");
}

// The paper's co-simulation point: mapping through the common (4-value)
// interface LOSES information — strength-resolved outcomes change.
TEST(ExtValue, CosimRoundTripLosesInformation) {
  CosimLoss loss = cosim_resolution_loss();
  EXPECT_EQ(loss.total_pairs, 144);  // 12 x 12
  EXPECT_GT(loss.divergent_pairs, 0);
  // A concrete divergent case: weak0 vs strong1.
  ExtValue w0{Logic::L0, Strength::Weak}, s1{Logic::L1, Strength::Strong};
  EXPECT_EQ(to_logic(resolve_ext(w0, s1)), Logic::L1);
  EXPECT_EQ(to_logic(resolve_ext(to_ext(to_logic(w0)), to_ext(to_logic(s1)))),
            Logic::X);
}

}  // namespace
}  // namespace interop::hdl
