#include "hdl/naming.hpp"

#include <gtest/gtest.h>

namespace interop::hdl::naming {
namespace {

// The paper's example: cntr_reset1 and cntr_reset2 alias onto cntr_res.
TEST(LengthAlias, PaperExample) {
  AliasReport r =
      find_length_aliases({"cntr_reset1", "cntr_reset2", "clk"}, 8);
  ASSERT_EQ(r.collisions.size(), 1u);
  const auto& [trunc, originals] = *r.collisions.begin();
  EXPECT_EQ(trunc, "cntr_res");
  EXPECT_EQ(originals.size(), 2u);
  EXPECT_EQ(r.names_aliased, 2u);
  EXPECT_EQ(r.names_total, 3u);
}

TEST(LengthAlias, NoCollisionsForShortNames) {
  AliasReport r = find_length_aliases({"a", "b", "abcdefgh"}, 8);
  EXPECT_TRUE(r.collisions.empty());
}

TEST(LengthAlias, DuplicateNamesAreNotCollisions) {
  AliasReport r = find_length_aliases({"signal_one", "signal_one"}, 8);
  EXPECT_TRUE(r.collisions.empty());
}

class SignificanceSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SignificanceSweep, ShorterSignificanceNeverReducesAliasing) {
  std::vector<std::string> names;
  for (int i = 0; i < 40; ++i)
    names.push_back("net_block_" + std::to_string(i));
  std::size_t sig = GetParam();
  AliasReport shorter = find_length_aliases(names, sig);
  AliasReport longer = find_length_aliases(names, sig + 4);
  EXPECT_GE(shorter.names_aliased, longer.names_aliased);
}

INSTANTIATE_TEST_SUITE_P(Sig, SignificanceSweep,
                         ::testing::Values(4, 6, 8, 10, 12));

// -------------------------------------------------------------- escaped

TEST(Escaped, LiteralKeepsEverything) {
  EscapedInterpretation r = interpret_escaped("data[3]", EscapePolicy::Literal);
  EXPECT_EQ(r.base, "data[3]");
  EXPECT_FALSE(r.bit.has_value());
  EXPECT_FALSE(r.active_low);
}

// "Some analysis tools always assume that the use of [] implies a bit on a
// bus" — the paper's exact case.
TEST(Escaped, BracketPolicySplitsBit) {
  EscapedInterpretation r =
      interpret_escaped("data[3]", EscapePolicy::BracketIsBit);
  EXPECT_EQ(r.base, "data");
  ASSERT_TRUE(r.bit.has_value());
  EXPECT_EQ(*r.bit, 3);
}

TEST(Escaped, BracketPolicyIgnoresNonNumeric) {
  EscapedInterpretation r =
      interpret_escaped("data[x]", EscapePolicy::BracketIsBit);
  EXPECT_EQ(r.base, "data[x]");
  EXPECT_FALSE(r.bit.has_value());
}

// "... or a * implies an active low signal."
TEST(Escaped, StarPolicyMarksActiveLow) {
  EscapedInterpretation r =
      interpret_escaped("reset*", EscapePolicy::StarActiveLow);
  EXPECT_EQ(r.base, "reset");
  EXPECT_TRUE(r.active_low);
}

TEST(Escaped, DivergenceDetection) {
  EXPECT_TRUE(escaped_divergence("data[3]", EscapePolicy::Literal,
                                 EscapePolicy::BracketIsBit));
  EXPECT_TRUE(escaped_divergence("rst*", EscapePolicy::Literal,
                                 EscapePolicy::StarActiveLow));
  EXPECT_FALSE(escaped_divergence("plain", EscapePolicy::Literal,
                                  EscapePolicy::BracketIsBit));
}

// -------------------------------------------------------------- keywords

// The paper: "in" and "out" are valid Verilog names but VHDL keywords.
TEST(Keywords, InOutClash) {
  EXPECT_TRUE(vhdl_keywords().count("in"));
  EXPECT_TRUE(vhdl_keywords().count("out"));
  EXPECT_FALSE(verilog_keywords().count("in"));
  EXPECT_FALSE(verilog_keywords().count("out"));

  KeywordRenames r =
      rename_keyword_clashes({"in", "out", "clk"}, vhdl_keywords());
  ASSERT_EQ(r.renames.size(), 2u);
  EXPECT_EQ(r.renames.at("in"), "in_v");
  EXPECT_EQ(r.renames.at("out"), "out_v");
}

TEST(Keywords, CaseInsensitiveVhdl) {
  KeywordRenames r = rename_keyword_clashes({"Signal"}, vhdl_keywords());
  EXPECT_EQ(r.renames.size(), 1u);
}

TEST(Keywords, RenamesAreUniquified) {
  // "in_v" is already taken, so "in" must pick a different name.
  KeywordRenames r = rename_keyword_clashes({"in", "in_v"}, vhdl_keywords());
  EXPECT_EQ(r.renames.at("in"), "in_v2");
}

// -------------------------------------------------------------- flatten

TEST(Flatten, NaiveIsAmbiguous) {
  // The classic collision the paper's underscore-joining causes.
  EXPECT_EQ(flatten_naive({"a_b", "c"}), flatten_naive({"a", "b_c"}));
}

TEST(Flatten, ReversibleRoundTrips) {
  std::vector<std::vector<std::string>> cases = {
      {"top", "u1", "q"},
      {"a_b", "c"},
      {"a", "b_c"},
      {"x__y", "z_"},
      {"single"},
  };
  for (const auto& path : cases) {
    std::string flat = flatten_reversible(path);
    EXPECT_EQ(unflatten_reversible(flat), path) << flat;
  }
}

TEST(Flatten, ReversibleSeparatesAmbiguousPaths) {
  EXPECT_NE(flatten_reversible({"a_b", "c"}), flatten_reversible({"a", "b_c"}));
}

TEST(Flatten, AnalyzeCountsCollisions) {
  std::vector<std::vector<std::string>> paths = {
      {"a_b", "c"}, {"a", "b_c"}, {"top", "u1", "q"}};
  FlattenReport r = analyze_flattening(paths);
  EXPECT_EQ(r.paths, 3u);
  EXPECT_EQ(r.naive_collisions, 2u);
  EXPECT_EQ(r.reversible_collisions, 0u);
  EXPECT_EQ(r.reversible_roundtrip_failures, 0u);
}

}  // namespace
}  // namespace interop::hdl::naming
