#include <gtest/gtest.h>

#include "hdl/lexer.hpp"
#include "hdl/parser.hpp"

namespace interop::hdl {
namespace {

// ------------------------------------------------------------------ lexer

TEST(Lexer, KeywordsAndIdentifiers) {
  auto toks = lex("module foo_1 endmodule");
  ASSERT_EQ(toks.size(), 4u);  // + eof
  EXPECT_EQ(toks[0].kind, Tok::KwModule);
  EXPECT_EQ(toks[1].kind, Tok::Identifier);
  EXPECT_EQ(toks[1].text, "foo_1");
  EXPECT_EQ(toks[2].kind, Tok::KwEndmodule);
}

TEST(Lexer, EscapedIdentifier) {
  auto toks = lex("\\data[3] x");
  EXPECT_EQ(toks[0].kind, Tok::Identifier);
  EXPECT_EQ(toks[0].text, "data[3]");
  EXPECT_TRUE(toks[0].escaped);
  EXPECT_EQ(toks[1].text, "x");
  EXPECT_FALSE(toks[1].escaped);
}

TEST(Lexer, BasedLiterals) {
  auto toks = lex("4'b10x1 8'hff 4'd9 42");
  EXPECT_EQ(toks[0].width, 4);
  EXPECT_TRUE(toks[0].has_x);
  EXPECT_EQ(toks[0].xz_bits, "10x1");
  EXPECT_EQ(toks[1].value, 255);
  EXPECT_EQ(toks[1].width, 8);
  EXPECT_EQ(toks[2].value, 9);
  EXPECT_EQ(toks[3].value, 42);
}

TEST(Lexer, CommentsAndLines) {
  auto toks = lex("a // comment\n/* multi\nline */ b");
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].text, "b");
  EXPECT_EQ(toks[1].line, 3);
}

TEST(Lexer, TwoCharOperators) {
  auto toks = lex("a <= b == c != d");
  EXPECT_EQ(toks[1].text, "<=");
  EXPECT_EQ(toks[3].text, "==");
  EXPECT_EQ(toks[5].text, "!=");
}

TEST(Lexer, Errors) {
  EXPECT_THROW(lex("/* open"), ParseError);
  EXPECT_THROW(lex("4'q10"), ParseError);
  EXPECT_THROW(lex("`bad"), ParseError);
}

// ----------------------------------------------------------------- parser

TEST(Parser, ModulePortsAndNets) {
  Module m = parse_module(R"(
    module top(a, b, y);
      input a, b;
      output y;
      wire [3:0] bus;
      reg state;
    endmodule
  )");
  EXPECT_EQ(m.name, "top");
  ASSERT_EQ(m.ports.size(), 3u);
  EXPECT_EQ(m.ports[0].dir, PortDir::Input);
  EXPECT_EQ(m.ports[2].dir, PortDir::Output);
  const NetDecl* bus = m.find_net("bus");
  ASSERT_NE(bus, nullptr);
  EXPECT_EQ(bus->width(), 4);
  EXPECT_EQ(m.find_net("state")->kind, NetKind::Reg);
}

TEST(Parser, OutputRegUpgrade) {
  Module m = parse_module(R"(
    module t(q); output q; reg q; endmodule
  )");
  EXPECT_EQ(m.find_net("q")->kind, NetKind::Reg);
}

TEST(Parser, ContinuousAssignWithDelay) {
  Module m = parse_module(R"(
    module t(); wire a, b, c;
      assign a = b & c;
      assign #3 c = b | a;
    endmodule
  )");
  ASSERT_EQ(m.assigns.size(), 2u);
  EXPECT_EQ(m.assigns[0].delay, 0);
  EXPECT_EQ(m.assigns[1].delay, 3);
  EXPECT_EQ(m.assigns[0].rhs->bin_op, BinOp::And);
}

TEST(Parser, GatePrimitives) {
  Module m = parse_module(R"(
    module t(); wire a, b, y; wire [1:0] v;
      nand g1 (y, a, b);
      not (a, b);
      xor #2 (v[0], v[1], y);
    endmodule
  )");
  ASSERT_EQ(m.gates.size(), 3u);
  EXPECT_EQ(m.gates[0].kind, GateKind::Nand);
  EXPECT_EQ(m.gates[0].name, "g1");
  EXPECT_EQ(m.gates[2].delay, 2);
  EXPECT_EQ(m.gates[2].conns[0].index, 0);
}

TEST(Parser, AlwaysSensitivityForms) {
  Module m = parse_module(R"(
    module t(); reg q; wire a, b, clk;
      always @(a or b) q = a & b;
      always @(posedge clk) q <= a;
      always @(*) q = b;
    endmodule
  )");
  ASSERT_EQ(m.always_blocks.size(), 3u);
  EXPECT_EQ(m.always_blocks[0].sensitivity.size(), 2u);
  EXPECT_EQ(m.always_blocks[1].sensitivity[0].edge, EdgeKind::Pos);
  EXPECT_TRUE(m.always_blocks[2].star);
  EXPECT_TRUE(m.always_blocks[1].body->nonblocking);
}

TEST(Parser, IfElseAndBlocks) {
  Module m = parse_module(R"(
    module t(); reg q; wire a, d;
      always @(a) begin
        if (a != d) q = 1'b1;
        else q = 1'b0;
      end
    endmodule
  )");
  const Stmt& body = *m.always_blocks[0].body;
  ASSERT_EQ(body.kind, Stmt::Kind::Block);
  ASSERT_EQ(body.body[0]->kind, Stmt::Kind::If);
  EXPECT_EQ(body.body[0]->condition->bin_op, BinOp::Ne);
  EXPECT_NE(body.body[0]->else_branch, nullptr);
}

TEST(Parser, InitialWithDelaysAndForever) {
  Module m = parse_module(R"(
    module t(); reg clk, d;
      initial begin
        clk = 0;
        d = 0;
        #5 d = 1;
        forever #10 clk = !clk;
      end
    endmodule
  )");
  ASSERT_EQ(m.initial_blocks.size(), 1u);
  const Stmt& body = *m.initial_blocks[0].body;
  ASSERT_EQ(body.body.size(), 4u);
  EXPECT_EQ(body.body[2]->kind, Stmt::Kind::Delay);
  EXPECT_EQ(body.body[2]->delay, 5);
  EXPECT_EQ(body.body[3]->kind, Stmt::Kind::Forever);
}

TEST(Parser, ModuleInstantiation) {
  SourceUnit unit = parse(R"(
    module child(i, o); input i; output o; assign o = i; endmodule
    module top(); wire x, y;
      child u1 (.i(x), .o(y));
    endmodule
  )");
  ASSERT_EQ(unit.modules.size(), 2u);
  const Module* top = unit.find_module("top");
  ASSERT_NE(top, nullptr);
  ASSERT_EQ(top->instances.size(), 1u);
  EXPECT_EQ(top->instances[0].module, "child");
  EXPECT_EQ(top->instances[0].conns[0].port, "i");
  EXPECT_EQ(top->instances[0].conns[0].signal, "x");
}

TEST(Parser, CaseStatement) {
  Module m = parse_module(R"(
    module t(); reg [1:0] q; wire [1:0] s;
      always @(*) begin
        case (s)
          0: q = 2'b00;
          1: q = 2'b01;
          default: q = 2'b11;
        endcase
      end
    endmodule
  )");
  const Stmt& c = *m.always_blocks[0].body->body[0];
  ASSERT_EQ(c.kind, Stmt::Kind::Case);
  ASSERT_EQ(c.arms.size(), 3u);
  EXPECT_TRUE(c.arms[2].match.empty());  // default
}

TEST(Parser, OperatorPrecedence) {
  Module m = parse_module(R"(
    module t(); wire a, b, c, y;
      assign y = a & b | c;
    endmodule
  )");
  // | binds looser than &: (a&b) | c.
  const Expr& e = *m.assigns[0].rhs;
  EXPECT_EQ(e.bin_op, BinOp::Or);
  EXPECT_EQ(e.operands[0]->bin_op, BinOp::And);
}

TEST(Parser, TernaryAndUnary) {
  Module m = parse_module(R"(
    module t(); wire s, a, b, y;
      assign y = s ? ~a : !b;
    endmodule
  )");
  const Expr& e = *m.assigns[0].rhs;
  EXPECT_EQ(e.kind, Expr::Kind::Cond);
  EXPECT_EQ(e.operands[1]->un_op, UnOp::BitNot);
  EXPECT_EQ(e.operands[2]->un_op, UnOp::Not);
}

TEST(Parser, SyntaxErrors) {
  EXPECT_THROW(parse_module("module t( endmodule"), ParseError);
  EXPECT_THROW(parse_module("module t(); wire a endmodule"), ParseError);
  EXPECT_THROW(parse_module("module t(); assign = 1; endmodule"), ParseError);
  EXPECT_THROW(parse("module a(); endmodule module b();"), ParseError);
}

}  // namespace
}  // namespace interop::hdl
