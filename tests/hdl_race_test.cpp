#include "hdl/race.hpp"

#include <gtest/gtest.h>

#include "hdl/parser.hpp"

namespace interop::hdl {
namespace {

ElabDesign elab(const std::string& src) {
  return elaborate(parse(src), "top");
}

// A clean synchronous design: every policy agrees.
TEST(Race, CleanDesignAgreesUnderAllPolicies) {
  ElabDesign d = elab(R"(
    module top(); reg clk; reg d; reg q1, q2;
      always @(posedge clk) q1 <= d;
      always @(posedge clk) q2 <= q1;
      initial begin
        clk = 0; d = 0; q1 = 0; q2 = 0;
        #2 d = 1;
        forever #5 clk = !clk;
      end
    endmodule
  )");
  RaceReport r = detect_races(d, 60);
  EXPECT_FALSE(r.disagreement) << r.divergent_signals.front();
  EXPECT_GE(r.runs, 4);
}

// The classic blocking-assignment race: two always blocks read/write the
// same signal with blocking assigns on the same clock edge. The settled
// value of q2 depends on which block runs first — a legal disagreement.
TEST(Race, BlockingAssignRaceDetected) {
  ElabDesign d = elab(R"(
    module top(); reg clk; reg q1, q2;
      always @(posedge clk) q1 = !q1;
      always @(posedge clk) q2 = q1;
      initial begin
        clk = 0; q1 = 0; q2 = 0;
        #5 clk = 1;
      end
    endmodule
  )");
  RaceReport r = detect_races(d, 10);
  EXPECT_TRUE(r.disagreement);
  bool q2_diverges = false;
  for (const std::string& s : r.divergent_signals)
    if (s == "top.q2") q2_diverges = true;
  EXPECT_TRUE(q2_diverges);
}

// The nonblocking fix for the same model: no divergence.
TEST(Race, NonblockingFixRemovesRace) {
  ElabDesign d = elab(R"(
    module top(); reg clk; reg q1, q2;
      always @(posedge clk) q1 <= !q1;
      always @(posedge clk) q2 <= q1;
      initial begin
        clk = 0; q1 = 0; q2 = 0;
        #5 clk = 1;
      end
    endmodule
  )");
  RaceReport r = detect_races(d, 10);
  EXPECT_FALSE(r.disagreement);
}

// The paper's §3.1 sketch: "assign a = b & c; always ... b = d;
// if (a != d) // which value of a?" — whether the continuous assignment has
// propagated when `a` is read depends on event ordering. (Within ONE always
// block run-to-completion makes the stale read deterministic — see
// PaperSketchWithinOneBlockIsDeterministic below — so the genuinely racy
// form puts the write and the read in separate same-edge processes.)
TEST(Race, PaperContinuousAssignRace) {
  ElabDesign d = elab(R"(
    module top(); reg clk; reg b, c, d; reg flag; wire a;
      assign a = b & c;
      always @(posedge clk) b = d;
      always @(posedge clk) begin
        if (a != d) flag = 1;
        else flag = 0;
      end
      initial begin
        clk = 0; b = 0; c = 1; d = 1; flag = 0;
        #5 clk = 1;
      end
    endmodule
  )");
  RaceReport r = detect_races(d, 10);
  EXPECT_TRUE(r.disagreement);
  bool flag_diverges = false;
  for (const std::string& s : r.divergent_signals)
    if (s == "top.flag") flag_diverges = true;
  EXPECT_TRUE(flag_diverges);
}

// The same sketch inside one always block: every policy agrees (the block
// runs to completion, so `a` is always read stale). This is exactly why the
// paper says telling "model race" from "simulator bug" is troublesome — a
// user can move one statement and change which behaviors are legal.
TEST(Race, PaperSketchWithinOneBlockIsDeterministic) {
  ElabDesign d = elab(R"(
    module top(); reg clk; reg b, c, d; reg flag; wire a;
      assign a = b & c;
      always @(posedge clk) begin
        b = d;
        if (a != d) flag = 1;
        else flag = 0;
      end
      initial begin
        clk = 0; b = 0; c = 1; d = 1; flag = 0;
        #5 clk = 1;
      end
    endmodule
  )");
  RaceReport r = detect_races(d, 10);
  EXPECT_FALSE(r.disagreement);
}

TEST(Race, RunPolicyProducesTrace) {
  ElabDesign d = elab(R"(
    module top(); reg a;
      initial begin a = 0; #5 a = 1; end
    endmodule
  )");
  Trace t = run_policy(d, SchedulerPolicy::SourceOrder, 10);
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0].time, 0);
  EXPECT_EQ(t[1].time, 5);
  EXPECT_EQ(t[1].value, Logic::L1);
}

TEST(Race, PoliciesAreSelfConsistent) {
  // The same policy re-run gives the identical trace (determinism).
  ElabDesign d = elab(R"(
    module top(); reg clk; reg q1, q2;
      always @(posedge clk) q1 = !q1;
      always @(posedge clk) q2 = q1;
      initial begin clk = 0; q1 = 0; q2 = 0; #5 clk = 1; end
    endmodule
  )");
  EXPECT_EQ(run_policy(d, SchedulerPolicy::Seeded, 10, 42),
            run_policy(d, SchedulerPolicy::Seeded, 10, 42));
  EXPECT_EQ(run_policy(d, SchedulerPolicy::ReverseOrder, 10),
            run_policy(d, SchedulerPolicy::ReverseOrder, 10));
}

}  // namespace
}  // namespace interop::hdl
