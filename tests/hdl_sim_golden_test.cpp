// Differential golden tests for the dense simulation kernel.
//
// §3.1's point is that every SchedulerPolicy is a LEGAL simulator: the
// optimization from tree-based to dense index-addressed structures is only
// valid because each policy's observable behaviour — its end-of-timestep
// trace and delta-cycle count — is preserved exactly. The golden hashes
// below were captured from the reference (std::set / std::multiset /
// std::map) kernel before the rewrite; any byte of divergence in any
// policy's trace fails these tests.

#include "hdl/sim.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>

#include "base/rng.hpp"
#include "hdl/parser.hpp"

namespace interop::hdl {
namespace {

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t trace_hash(const Trace& t) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const TraceEvent& e : t) {
    h = fnv1a(h, std::uint64_t(e.time));
    h = fnv1a(h, e.signal);
    h = fnv1a(h, std::uint64_t(e.value));
  }
  return h;
}

// The same generated-model family experiment T3 uses: clean models follow
// nonblocking discipline (race-free by construction), racy models embed
// blocking write/read pairs across same-edge processes.
std::string make_model(std::uint64_t seed, int regs, int races) {
  interop::base::Rng rng(seed);
  std::ostringstream os;
  os << "module top();\n  reg clk;\n";
  for (int i = 0; i < regs; ++i) os << "  reg r" << i << ";\n";
  for (int i = 0; i < regs; ++i) {
    int a = int(rng.index(std::size_t(regs)));
    int b = int(rng.index(std::size_t(regs)));
    const char* op = rng.chance(0.5) ? "&" : "^";
    os << "  always @(posedge clk) r" << i << " <= r" << a << ' ' << op
       << " r" << b << ";\n";
  }
  for (int k = 0; k < races; ++k) {
    os << "  reg w" << k << "; reg v" << k << ";\n";
    os << "  always @(posedge clk) w" << k << " = !w" << k << ";\n";
    os << "  always @(posedge clk) v" << k << " = w" << k << ";\n";
  }
  os << "  initial begin\n    clk = 0;\n";
  for (int i = 0; i < regs; ++i)
    os << "    r" << i << " = " << (rng.chance(0.5) ? 1 : 0) << ";\n";
  for (int k = 0; k < races; ++k)
    os << "    w" << k << " = 0; v" << k << " = 0;\n";
  os << "    forever #5 clk = !clk;\n  end\nendmodule\n";
  return os.str();
}

// The bench kernel model: a 4-bit ripple counter clocked by an initial
// thread (exercises thread wake-ups + the NBA queue).
constexpr const char* kCounter = R"(
  module top(); reg clk; reg [3:0] q;
    always @(posedge clk) begin
      q[0] <= !q[0];
      q[1] <= q[1] ^ q[0];
      q[2] <= q[2] ^ (q[1] & q[0]);
      q[3] <= q[3] ^ (q[2] & q[1] & q[0]);
    end
    initial begin clk = 0; q = 4'b0000; forever #5 clk = !clk; end
  endmodule
)";

// Delayed gates and a delayed continuous assign (exercises the scheduled-
// update heap: several updates in flight at distinct and equal times).
constexpr const char* kDelayNet = R"(
  module top(); reg a; reg b; wire w1; wire w2; wire w3; wire w4;
    and #3 g1(w1, a, b);
    or #2 g2(w2, w1, a);
    xor #1 g3(w3, w2, b);
    assign #2 w4 = w3 ^ w1;
    initial begin a = 0; b = 0;
      #7 a = 1; #5 b = 1; #3 a = 0; #6 b = 0; #4 a = 1;
    end
  endmodule
)";

struct Golden {
  const char* model;
  int policy;  ///< SchedulerPolicy as int
  std::uint64_t hash;
  std::uint64_t deltas;
  std::size_t events;
};

// Captured from the pre-optimization tree-based kernel (seed commit
// 9be33dd), run to t=60 (generated models) / t=200 (counter) / t=60
// (delaynet) with watch_all and Seeded seed 0x1234.
constexpr Golden kGoldens[] = {
    {"clean0", 0, 0x2967c110beb302cfULL, 36ULL, 31},
    {"clean0", 1, 0x2967c110beb302cfULL, 36ULL, 31},
    {"clean0", 2, 0x2967c110beb302cfULL, 36ULL, 31},
    {"clean1", 0, 0xa8ac106e7b98a7a0ULL, 36ULL, 36},
    {"clean1", 1, 0xa8ac106e7b98a7a0ULL, 36ULL, 36},
    {"clean1", 2, 0xa8ac106e7b98a7a0ULL, 36ULL, 36},
    {"clean2", 0, 0x20faef83c002100fULL, 36ULL, 37},
    {"clean2", 1, 0x20faef83c002100fULL, 36ULL, 37},
    {"clean2", 2, 0x20faef83c002100fULL, 36ULL, 37},
    {"clean3", 0, 0x9e08332598c1b0e3ULL, 36ULL, 26},
    {"clean3", 1, 0x9e08332598c1b0e3ULL, 36ULL, 26},
    {"clean3", 2, 0x9e08332598c1b0e3ULL, 36ULL, 26},
    {"racy0", 0, 0xef1829d6ef396f83ULL, 60ULL, 49},
    {"racy0", 1, 0xecf0757896a8e7a1ULL, 60ULL, 47},
    {"racy0", 2, 0x6b294832801b561bULL, 60ULL, 43},
    {"racy1", 0, 0xcd72b97cec437654ULL, 60ULL, 55},
    {"racy1", 1, 0xc7dfb8dc9d709bf6ULL, 60ULL, 53},
    {"racy1", 2, 0xc8797ea2edebc96cULL, 60ULL, 49},
    {"counter", 0, 0xcc6c16c09d51e315ULL, 20ULL, 82},
    {"counter", 1, 0xcc6c16c09d51e315ULL, 20ULL, 82},
    {"counter", 2, 0xcc6c16c09d51e315ULL, 20ULL, 82},
    {"delaynet", 0, 0x046b35867ea255f3ULL, 29ULL, 28},
    {"delaynet", 1, 0x046b35867ea255f3ULL, 29ULL, 28},
    {"delaynet", 2, 0x046b35867ea255f3ULL, 29ULL, 28},
};

std::string model_source(const std::string& name) {
  if (name == "counter") return kCounter;
  if (name == "delaynet") return kDelayNet;
  if (name.rfind("clean", 0) == 0)
    return make_model(std::uint64_t(name[5] - '0'), 6, 0);
  return make_model(std::uint64_t(name[4] - '0') + 1000, 6, 2);
}

std::int64_t horizon_for(const std::string& name) {
  return name == "counter" ? 200 : 60;
}

Trace run_traced(const ElabDesign& d, SchedulerPolicy policy,
                 std::int64_t until, std::uint64_t* deltas_out) {
  Simulation sim(d, policy, 0x1234);
  sim.watch_all();
  sim.run(until);
  if (deltas_out) *deltas_out = sim.delta_cycles();
  return sim.trace();
}

TEST(SimGolden, EveryPolicyTraceMatchesReferenceKernel) {
  for (const Golden& g : kGoldens) {
    ElabDesign d = elaborate(parse(model_source(g.model)), "top");
    std::uint64_t deltas = 0;
    Trace t = run_traced(d, SchedulerPolicy(g.policy),
                         horizon_for(g.model), &deltas);
    EXPECT_EQ(trace_hash(t), g.hash)
        << g.model << " policy " << to_string(SchedulerPolicy(g.policy));
    EXPECT_EQ(deltas, g.deltas) << g.model << " policy " << g.policy;
    EXPECT_EQ(t.size(), g.events) << g.model << " policy " << g.policy;
  }
}

TEST(SimGolden, RaceFreeModelsAgreeAcrossAllPolicies) {
  // Race-free models must produce the SAME trace under every legal
  // scheduler — the §3.1 invariant, checked event-for-event (not just by
  // hash) on a fresh set of generated seeds.
  for (std::uint64_t seed : {0, 1, 2, 3, 7, 11}) {
    ElabDesign d = elaborate(parse(make_model(seed, 6, 0)), "top");
    Trace src = run_traced(d, SchedulerPolicy::SourceOrder, 60, nullptr);
    Trace rev = run_traced(d, SchedulerPolicy::ReverseOrder, 60, nullptr);
    Trace sed = run_traced(d, SchedulerPolicy::Seeded, 60, nullptr);
    EXPECT_EQ(src, rev) << "seed " << seed;
    EXPECT_EQ(src, sed) << "seed " << seed;
  }
}

TEST(SimGolden, RacyModelsStillDisagreeAcrossPolicies) {
  // The dense kernel must not accidentally serialize the policies into one
  // order: racy models are REQUIRED to diverge somewhere across policies
  // (that divergence is experiment T3's detection signal).
  int divergent = 0;
  for (std::uint64_t seed : {1000, 1001, 1002, 1003}) {
    ElabDesign d = elaborate(parse(make_model(seed, 6, 2)), "top");
    Trace src = run_traced(d, SchedulerPolicy::SourceOrder, 60, nullptr);
    Trace rev = run_traced(d, SchedulerPolicy::ReverseOrder, 60, nullptr);
    if (src != rev) ++divergent;
  }
  EXPECT_GT(divergent, 0);
}

/// "lo:hi" from GOLDEN_SEED_RANGE; false (-> GTEST_SKIP) when unset, so
/// the broad sweep only runs when ctest's `sweep`-labeled entries (or a
/// nightly CI job) opt in. See tests/CMakeLists.txt.
bool golden_seed_range(std::uint64_t* lo, std::uint64_t* hi) {
  const char* v = std::getenv("GOLDEN_SEED_RANGE");
  if (!v || !*v) return false;
  std::string s(v);
  std::size_t colon = s.find(':');
  if (colon == std::string::npos) return false;
  try {
    *lo = std::stoull(s.substr(0, colon));
    *hi = std::stoull(s.substr(colon + 1));
  } catch (const std::exception&) {
    return false;
  }
  return *lo <= *hi;
}

TEST(SimGoldenSweep, RaceFreeModelsAgreeOverSeedRange) {
  std::uint64_t lo = 0, hi = 0;
  if (!golden_seed_range(&lo, &hi))
    GTEST_SKIP() << "set GOLDEN_SEED_RANGE=lo:hi to run the broad sweep";
  for (std::uint64_t seed = lo; seed <= hi; ++seed) {
    ElabDesign d = elaborate(parse(make_model(seed, 6, 0)), "top");
    Trace src = run_traced(d, SchedulerPolicy::SourceOrder, 60, nullptr);
    Trace rev = run_traced(d, SchedulerPolicy::ReverseOrder, 60, nullptr);
    Trace sed = run_traced(d, SchedulerPolicy::Seeded, 60, nullptr);
    ASSERT_EQ(src, rev) << "seed " << seed;
    ASSERT_EQ(src, sed) << "seed " << seed;
    // Flaky-proofing: a repeat run of the same policy must reproduce the
    // trace bit-for-bit (no hidden global state in the dense kernel).
    Trace again = run_traced(d, SchedulerPolicy::SourceOrder, 60, nullptr);
    ASSERT_EQ(trace_hash(src), trace_hash(again)) << "seed " << seed;
  }
}

TEST(SimGolden, WatchSubsetFiltersTrace) {
  // watch(id) on the dense bitmap must behave like the old set insert: only
  // watched signals appear, in ascending id order within a timestep.
  ElabDesign d = elaborate(parse(kCounter), "top");
  SignalId clk = d.signal("top.clk");
  Simulation sim(d, SchedulerPolicy::SourceOrder);
  sim.watch(clk);
  sim.run(50);
  ASSERT_FALSE(sim.trace().empty());
  for (const TraceEvent& e : sim.trace()) EXPECT_EQ(e.signal, clk);
}

}  // namespace
}  // namespace interop::hdl
