#include "hdl/sim.hpp"

#include <gtest/gtest.h>

#include "hdl/parser.hpp"

namespace interop::hdl {
namespace {

ElabDesign elab(const std::string& src, const std::string& top = "top") {
  return elaborate(parse(src), top);
}

TEST(Elaborate, FlattensHierarchyWithDottedNames) {
  ElabDesign d = elab(R"(
    module inv(i, o); input i; output o; not (o, i); endmodule
    module top(); wire a, b, c;
      inv u1 (.i(a), .o(b));
      inv u2 (.i(b), .o(c));
    endmodule
  )");
  EXPECT_NO_THROW(d.signal("top.a"));
  EXPECT_NO_THROW(d.signal("top.b"));
  // Ports alias the parent signal: no separate "top.u1.i".
  EXPECT_THROW(d.signal("top.u1.i"), ElabError);
  EXPECT_EQ(d.gates.size(), 2u);
}

TEST(Elaborate, ChildLocalsGetHierarchicalNames) {
  ElabDesign d = elab(R"(
    module child(i, o); input i; output o; wire mid;
      not (mid, i); not (o, mid);
    endmodule
    module top(); wire a, y; child u1 (.i(a), .o(y)); endmodule
  )");
  EXPECT_NO_THROW(d.signal("top.u1.mid"));
}

TEST(Elaborate, VectorBitsExpand) {
  ElabDesign d = elab(R"(
    module top(); wire [3:0] bus; assign bus = 4'b1010; endmodule
  )");
  EXPECT_NO_THROW(d.signal("top.bus[3]"));
  EXPECT_NO_THROW(d.signal("top.bus[0]"));
  EXPECT_EQ(d.bus("top.bus", 3, 0).size(), 4u);
}

TEST(Elaborate, Errors) {
  EXPECT_THROW(elab("module top(); wire a; assign a = nosuch; endmodule"),
               ElabError);
  EXPECT_THROW(elab(R"(
    module top(); wire a; missing u1 (.x(a)); endmodule
  )"),
               ElabError);
  EXPECT_THROW(elab(R"(
    module top(); reg q; wire a;
      always @(a) #5 q = 1;
    endmodule
  )"),
               ElabError);
}

TEST(Sim, GateEvaluatesAtTimeZero) {
  ElabDesign d = elab(R"(
    module top(); wire a, b, y;
      assign a = 1'b1;
      assign b = 1'b1;
      and (y, a, b);
    endmodule
  )");
  Simulation sim(d, SchedulerPolicy::SourceOrder);
  sim.run(0);
  EXPECT_EQ(sim.value("top.y"), Logic::L1);
}

TEST(Sim, InitialBlockDrivesRegs) {
  ElabDesign d = elab(R"(
    module top(); reg a; wire y;
      not (y, a);
      initial a = 1'b0;
    endmodule
  )");
  Simulation sim(d, SchedulerPolicy::SourceOrder);
  sim.run(0);
  EXPECT_EQ(sim.value("top.a"), Logic::L0);
  EXPECT_EQ(sim.value("top.y"), Logic::L1);
}

TEST(Sim, DelayedStimulusAdvancesTime) {
  ElabDesign d = elab(R"(
    module top(); reg a; wire y;
      not (y, a);
      initial begin a = 0; #10 a = 1; end
    endmodule
  )");
  Simulation sim(d, SchedulerPolicy::SourceOrder);
  sim.run(5);
  EXPECT_EQ(sim.value("top.y"), Logic::L1);
  sim.run(20);
  EXPECT_EQ(sim.value("top.a"), Logic::L1);
  EXPECT_EQ(sim.value("top.y"), Logic::L0);
}

TEST(Sim, ClockGeneratorForeverLoop) {
  ElabDesign d = elab(R"(
    module top(); reg clk;
      initial begin clk = 0; forever #5 clk = !clk; end
    endmodule
  )");
  Simulation sim(d, SchedulerPolicy::SourceOrder);
  sim.watch(d.signal("top.clk"));
  sim.run(23);
  // Toggles at 5, 10, 15, 20.
  ASSERT_EQ(sim.trace().size(), 5u);  // includes t=0 init to 0
  EXPECT_EQ(sim.trace()[0].time, 0);
  EXPECT_EQ(sim.trace()[1].time, 5);
  EXPECT_EQ(sim.trace()[1].value, Logic::L1);
  EXPECT_EQ(sim.trace()[4].time, 20);
}

TEST(Sim, GateDelayPropagates) {
  ElabDesign d = elab(R"(
    module top(); reg a; wire y;
      not #3 (y, a);
      initial begin a = 0; #10 a = 1; end
    endmodule
  )");
  Simulation sim(d, SchedulerPolicy::SourceOrder);
  sim.run(11);
  EXPECT_EQ(sim.value("top.y"), Logic::L1);  // inversion of old a until 13
  sim.run(13);
  EXPECT_EQ(sim.value("top.y"), Logic::L0);
}

TEST(Sim, AlwaysCombinationalFollowsInputs) {
  ElabDesign d = elab(R"(
    module top(); reg a, b; reg y;
      always @(a or b) y = a & b;
      initial begin a = 0; b = 0; #5 a = 1; #5 b = 1; end
    endmodule
  )");
  Simulation sim(d, SchedulerPolicy::SourceOrder);
  sim.run(4);
  EXPECT_EQ(sim.value("top.y"), Logic::L0);
  sim.run(12);
  EXPECT_EQ(sim.value("top.y"), Logic::L1);
}

// The paper's modeling-style example: out is NOT recomputed when only c
// changes, because c is missing from the sensitivity list.
TEST(Sim, IncompleteSensitivityHonoredInSimulation) {
  ElabDesign d = elab(R"(
    module top(); reg a, b, c; reg out;
      always @(a or b) out = a & b & c;
      initial begin
        a = 1; b = 1; c = 1;
        #10 c = 0;
        #10 a = 0;
        #5  a = 1;
      end
    endmodule
  )");
  Simulation sim(d, SchedulerPolicy::SourceOrder);
  sim.run(15);
  // c fell at t=10 but out still holds the stale 1.
  EXPECT_EQ(sim.value("top.out"), Logic::L1);
  sim.run(30);
  // a toggled: block re-ran and picked up c=0.
  EXPECT_EQ(sim.value("top.out"), Logic::L0);
}

TEST(Sim, PosedgeTriggersOnlyOnRise) {
  ElabDesign d = elab(R"(
    module top(); reg clk, d; reg q;
      always @(posedge clk) q = d;
      initial begin
        q = 0; d = 1; clk = 0;
        #5 clk = 1;
        #5 clk = 0;
        #2 d = 0;
        #3 clk = 1;
      end
    endmodule
  )");
  Simulation sim(d, SchedulerPolicy::SourceOrder);
  sim.run(7);
  EXPECT_EQ(sim.value("top.q"), Logic::L1);  // captured d=1 at t=5
  sim.run(11);
  EXPECT_EQ(sim.value("top.q"), Logic::L1);  // falling edge: no trigger
  sim.run(16);
  EXPECT_EQ(sim.value("top.q"), Logic::L0);  // captured d=0 at t=15
}

TEST(Sim, NonblockingSwapWorks) {
  ElabDesign d = elab(R"(
    module top(); reg clk; reg a, b;
      always @(posedge clk) begin
        a <= b;
        b <= a;
      end
      initial begin
        a = 0; b = 1; clk = 0;
        #5 clk = 1;
      end
    endmodule
  )");
  Simulation sim(d, SchedulerPolicy::SourceOrder);
  sim.run(6);
  EXPECT_EQ(sim.value("top.a"), Logic::L1);
  EXPECT_EQ(sim.value("top.b"), Logic::L0);
}

TEST(Sim, VectorAssignAndSelect) {
  ElabDesign d = elab(R"(
    module top(); wire [3:0] v; wire y;
      assign v = 4'b1010;
      assign y = v[1];
    endmodule
  )");
  Simulation sim(d, SchedulerPolicy::SourceOrder);
  sim.run(0);
  EXPECT_EQ(sim.value("top.v[3]"), Logic::L1);
  EXPECT_EQ(sim.value("top.v[2]"), Logic::L0);
  EXPECT_EQ(sim.value("top.y"), Logic::L1);
}

TEST(Sim, ArithmeticAndComparison) {
  ElabDesign d = elab(R"(
    module top(); wire [3:0] a, b, s; wire gt;
      assign a = 4'd9;
      assign b = 4'd3;
      assign s = a + b;
      assign gt = a > b;
    endmodule
  )");
  Simulation sim(d, SchedulerPolicy::SourceOrder);
  sim.run(0);
  EXPECT_EQ(sim.value("top.s[3]"), Logic::L1);  // 12 = 1100
  EXPECT_EQ(sim.value("top.s[2]"), Logic::L1);
  EXPECT_EQ(sim.value("top.s[1]"), Logic::L0);
  EXPECT_EQ(sim.value("top.s[0]"), Logic::L0);
  EXPECT_EQ(sim.value("top.gt"), Logic::L1);
}

TEST(Sim, XPropagatesThroughGates) {
  ElabDesign d = elab(R"(
    module top(); reg a; wire y0, y1;
      and (y0, a, a);
      or  (y1, a, a);
    endmodule
  )");
  Simulation sim(d, SchedulerPolicy::SourceOrder);
  sim.run(0);
  EXPECT_EQ(sim.value("top.y0"), Logic::X);  // a never driven
  EXPECT_EQ(sim.value("top.y1"), Logic::X);
}

TEST(Sim, ZeroDelayOscillationGuard) {
  ElabDesign d = elab(R"(
    module top(); wire a; not (a, a); endmodule
  )");
  Simulation sim(d, SchedulerPolicy::SourceOrder);
  sim.set_delta_limit(1000);
  // a starts X; not(X)=X: stable. Force a value to start the oscillation.
  sim.force(d.signal("top.a"), Logic::L0);
  EXPECT_THROW(sim.run(0), std::runtime_error);
}

TEST(Sim, CaseStatementSelects) {
  ElabDesign d = elab(R"(
    module top(); reg [1:0] s; reg [1:0] q;
      always @(s) begin
        case (s)
          0: q = 2'b11;
          1: q = 2'b10;
          default: q = 2'b00;
        endcase
      end
      initial begin s = 0; #5 s = 1; #5 s = 2; end
    endmodule
  )");
  Simulation sim(d, SchedulerPolicy::SourceOrder);
  sim.run(1);
  EXPECT_EQ(sim.value("top.q[1]"), Logic::L1);
  EXPECT_EQ(sim.value("top.q[0]"), Logic::L1);
  sim.run(6);
  EXPECT_EQ(sim.value("top.q[0]"), Logic::L0);
  sim.run(11);
  EXPECT_EQ(sim.value("top.q[1]"), Logic::L0);
}

TEST(Sim, HierarchicalSimulation) {
  ElabDesign d = elab(R"(
    module halfadd(a, b, s, c); input a, b; output s, c;
      xor (s, a, b);
      and (c, a, b);
    endmodule
    module top(); reg x, y; wire s, c;
      halfadd u1 (.a(x), .b(y), .s(s), .c(c));
      initial begin x = 1; y = 1; end
    endmodule
  )");
  Simulation sim(d, SchedulerPolicy::SourceOrder);
  sim.run(0);
  EXPECT_EQ(sim.value("top.s"), Logic::L0);
  EXPECT_EQ(sim.value("top.c"), Logic::L1);
}

}  // namespace
}  // namespace interop::hdl
