#include "hdl/synth.hpp"

#include <gtest/gtest.h>

#include "hdl/parser.hpp"
#include "hdl/sim.hpp"

namespace interop::hdl {
namespace {

bool has_code(const std::vector<SubsetViolation>& v, const std::string& code) {
  for (const SubsetViolation& x : v)
    if (x.code == code) return true;
  return false;
}

// ------------------------------------------------------------ subset rules

TEST(Subset, VendorsDifferOnSensitivityCompletion) {
  Module m = parse_module(R"(
    module t(a, b, out); input a, b; output out; reg out; wire c;
      always @(a or b) out = a & b & c;
    endmodule
  )");
  auto va = check_subset(m, vendor_a_subset());
  EXPECT_TRUE(has_code(va, "warn:sensitivity-completed"));
  auto vb = check_subset(m, vendor_b_subset());
  EXPECT_TRUE(has_code(vb, "incomplete-sensitivity"));
}

TEST(Subset, VendorsDifferOnArithmetic) {
  Module m = parse_module(R"(
    module t(a, b, s); input a, b; output s; reg [1:0] s;
      always @(a or b) s = a + b;
    endmodule
  )");
  EXPECT_TRUE(has_code(check_subset(m, vendor_a_subset()), "arithmetic"));
  EXPECT_FALSE(has_code(check_subset(m, vendor_b_subset()), "arithmetic"));
}

TEST(Subset, VendorsDifferOnLatchInference) {
  Module m = parse_module(R"(
    module t(en, d, q); input en, d; output q; reg q;
      always @(en or d) if (en) q = d;
    endmodule
  )");
  EXPECT_TRUE(has_code(check_subset(m, vendor_a_subset()), "if-without-else"));
  EXPECT_FALSE(
      has_code(check_subset(m, vendor_b_subset()), "if-without-else"));
}

TEST(Subset, BothRejectInitialAndDelays) {
  Module m = parse_module(R"(
    module t(a, y); input a; output y;
      assign #2 y = a;
      initial y = 0;
    endmodule
  )");
  for (const VendorSubset& v : {vendor_a_subset(), vendor_b_subset()}) {
    auto viol = check_subset(m, v);
    EXPECT_TRUE(has_code(viol, "initial-block")) << v.name;
    EXPECT_TRUE(has_code(viol, "delay-control")) << v.name;
  }
}

TEST(Subset, IdentifierLengthLimit) {
  Module m = parse_module(R"(
    module t(); wire averyveryverylongname; endmodule
  )");
  EXPECT_FALSE(
      has_code(check_subset(m, vendor_a_subset()), "identifier-too-long"));
  EXPECT_TRUE(
      has_code(check_subset(m, vendor_b_subset()), "identifier-too-long"));
}

TEST(Subset, MultipleDriversRejected) {
  Module m = parse_module(R"(
    module t(a, b, y); input a, b; output y;
      assign y = a;
      assign y = b;
    endmodule
  )");
  EXPECT_TRUE(
      has_code(check_subset(m, vendor_a_subset()), "multiple-drivers"));
}

// The intersection is what a portable model may use (the paper's advice).
TEST(Subset, IntersectionIsMostRestrictive) {
  VendorSubset both = intersect(vendor_a_subset(), vendor_b_subset());
  EXPECT_FALSE(both.allows_arithmetic);
  EXPECT_FALSE(both.allows_while_loops);
  EXPECT_FALSE(both.allows_latch_inference);
  EXPECT_FALSE(both.completes_sensitivity);
  EXPECT_FALSE(both.allows_nonblocking_in_always);
  EXPECT_EQ(both.max_identifier_length, 12);

  // A portable model: complete list, else branch, short names, no math.
  Module portable = parse_module(R"(
    module t(a, b, y); input a, b; output y; reg y;
      always @(a or b) begin
        if (a) y = b; else y = 0;
      end
    endmodule
  )");
  EXPECT_TRUE(check_subset(portable, both).empty());
}

// -------------------------------------------------------------- synthesis

TEST(Synth, SimpleCombinationalMatchesSimulation) {
  Module m = parse_module(R"(
    module t(a, b, y); input a, b; output y; reg y;
      always @(a or b) y = a & b;
    endmodule
  )");
  SynthResult r = synthesize(m, vendor_a_subset());
  ASSERT_TRUE(r.ok);
  EXPECT_GT(r.gates_emitted, 0);
  EXPECT_EQ(r.latches_inferred, 0);

  // Simulate the netlist for all four input combinations.
  SourceUnit unit;
  unit.modules.push_back(std::move(r.netlist));
  ElabDesign d = elaborate(unit, "t_syn");
  for (int a = 0; a <= 1; ++a) {
    for (int b = 0; b <= 1; ++b) {
      Simulation sim(d, SchedulerPolicy::SourceOrder);
      sim.force(d.signal("t_syn.a"), logic_of(a));
      sim.force(d.signal("t_syn.b"), logic_of(b));
      sim.run(0);
      EXPECT_EQ(sim.value("t_syn.y"), logic_of(a && b)) << a << b;
    }
  }
}

TEST(Synth, IfElseBecomesMux) {
  Module m = parse_module(R"(
    module t(s, a, b, y); input s, a, b; output y; reg y;
      always @(s or a or b) begin
        if (s) y = a; else y = b;
      end
    endmodule
  )");
  SynthResult r = synthesize(m, vendor_a_subset());
  ASSERT_TRUE(r.ok);
  SourceUnit unit;
  unit.modules.push_back(std::move(r.netlist));
  ElabDesign d = elaborate(unit, "t_syn");
  for (int s = 0; s <= 1; ++s) {
    for (int a = 0; a <= 1; ++a) {
      for (int b = 0; b <= 1; ++b) {
        Simulation sim(d, SchedulerPolicy::SourceOrder);
        sim.force(d.signal("t_syn.s"), logic_of(s));
        sim.force(d.signal("t_syn.a"), logic_of(a));
        sim.force(d.signal("t_syn.b"), logic_of(b));
        sim.run(0);
        EXPECT_EQ(sim.value("t_syn.y"), logic_of(s ? a : b));
      }
    }
  }
}

TEST(Synth, VectorXorBitBlasts) {
  Module m = parse_module(R"(
    module t(y); output y; wire [1:0] a, b; wire [1:0] w; wire y;
      assign a = 2'b10;
      assign b = 2'b01;
      assign w = a ^ b;
      assign y = w[1] & w[0];
    endmodule
  )");
  SynthResult r = synthesize(m, vendor_a_subset());
  ASSERT_TRUE(r.ok) << (r.violations.empty() ? "" : r.violations[0].message);
  SourceUnit unit;
  unit.modules.push_back(std::move(r.netlist));
  ElabDesign d = elaborate(unit, "t_syn");
  Simulation sim(d, SchedulerPolicy::SourceOrder);
  sim.run(0);
  EXPECT_EQ(sim.value("t_syn.y"), Logic::L1);  // 10^01 = 11
  EXPECT_NO_THROW(d.signal("t_syn.w_1"));      // flattened bit name
}

TEST(Synth, LatchInferenceCountedForVendorB) {
  Module m = parse_module(R"(
    module t(en, d, q); input en, d; output q; reg q;
      always @(en or d) if (en) q = d;
    endmodule
  )");
  SynthResult r = synthesize(m, vendor_b_subset());
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.latches_inferred, 1);

  // The latch really latches: q holds when en=0.
  SourceUnit unit;
  unit.modules.push_back(std::move(r.netlist));
  ElabDesign d = elaborate(unit, "t_syn");
  Simulation sim(d, SchedulerPolicy::SourceOrder);
  sim.force(d.signal("t_syn.en"), Logic::L1);
  sim.force(d.signal("t_syn.d"), Logic::L1);
  sim.run(0);
  EXPECT_EQ(sim.value("t_syn.q"), Logic::L1);
  sim.force(d.signal("t_syn.en"), Logic::L0);
  sim.force(d.signal("t_syn.d"), Logic::L0);
  sim.run(0);
  EXPECT_EQ(sim.value("t_syn.q"), Logic::L1);  // held
}

TEST(Synth, VendorBRejectsLatchForVendorA) {
  Module m = parse_module(R"(
    module t(en, d, q); input en, d; output q; reg q;
      always @(en or d) if (en) q = d;
    endmodule
  )");
  SynthResult r = synthesize(m, vendor_a_subset());
  EXPECT_FALSE(r.ok);
}

TEST(Synth, RippleAdderForVendorB) {
  Module m = parse_module(R"(
    module t(s); output s; wire [2:0] a, b, s;
      assign a = 3'd3;
      assign b = 3'd5;
      assign s = a + b;
    endmodule
  )");
  SynthResult r = synthesize(m, vendor_b_subset());
  ASSERT_TRUE(r.ok) << (r.violations.empty() ? "" : r.violations[0].message);
  SourceUnit unit;
  unit.modules.push_back(std::move(r.netlist));
  ElabDesign d = elaborate(unit, "t_syn");
  Simulation sim(d, SchedulerPolicy::SourceOrder);
  sim.run(0);
  // 3 + 5 = 8 mod 8 = 0.
  EXPECT_EQ(sim.value("t_syn.s_2"), Logic::L0);
  EXPECT_EQ(sim.value("t_syn.s_1"), Logic::L0);
  EXPECT_EQ(sim.value("t_syn.s_0"), Logic::L0);
}

// The paper's modeling-style divergence, end to end: RTL simulation honors
// the written (incomplete) sensitivity list; the synthesized netlist is
// combinational. They disagree after a c-only change.
TEST(Synth, SensitivityMismatchRtlVsGates) {
  const char* rtl_src = R"(
    module t(a, b, c, out); input a, b, c; output out; reg out;
      always @(a or b) out = a & b & c;
    endmodule
  )";
  Module m = parse_module(rtl_src);
  SynthResult r = synthesize(m, vendor_a_subset());
  ASSERT_TRUE(r.ok);

  // RTL sim.
  ElabDesign rtl = elaborate(parse(rtl_src), "t");
  Simulation rtl_sim(rtl, SchedulerPolicy::SourceOrder);
  for (const char* sig : {"t.a", "t.b", "t.c"})
    rtl_sim.force(rtl.signal(sig), Logic::L1);
  rtl_sim.run(0);
  EXPECT_EQ(rtl_sim.value("t.out"), Logic::L1);
  rtl_sim.force(rtl.signal("t.c"), Logic::L0);  // c-only change
  rtl_sim.run(1);
  EXPECT_EQ(rtl_sim.value("t.out"), Logic::L1);  // stale: not re-triggered

  // Gate sim.
  SourceUnit unit;
  unit.modules.push_back(std::move(r.netlist));
  ElabDesign gates = elaborate(unit, "t_syn");
  Simulation gate_sim(gates, SchedulerPolicy::SourceOrder);
  for (const char* sig : {"t_syn.a", "t_syn.b", "t_syn.c"})
    gate_sim.force(gates.signal(sig), Logic::L1);
  gate_sim.run(0);
  gate_sim.force(gates.signal("t_syn.c"), Logic::L0);
  gate_sim.run(1);
  EXPECT_EQ(gate_sim.value("t_syn.out"), Logic::L0);  // combinational

  // The divergence the paper warns about:
  EXPECT_NE(rtl_sim.value("t.out"), gate_sim.value("t_syn.out"));
}

TEST(Synth, CaseLowersToMuxChain) {
  Module m = parse_module(R"(
    module t(q); output q; wire [1:0] s; reg q;
      assign s = 2'b01;
      always @(s) begin
        case (s)
          0: q = 0;
          1: q = 1;
          default: q = 0;
        endcase
      end
    endmodule
  )");
  SynthResult r = synthesize(m, vendor_a_subset());
  ASSERT_TRUE(r.ok) << (r.violations.empty() ? "" : r.violations[0].message);
  SourceUnit unit;
  unit.modules.push_back(std::move(r.netlist));
  ElabDesign d = elaborate(unit, "t_syn");
  Simulation sim(d, SchedulerPolicy::SourceOrder);
  sim.run(0);
  EXPECT_EQ(sim.value("t_syn.q"), Logic::L1);
}

TEST(Synth, NameMapRecordsFlattening) {
  Module m = parse_module(R"(
    module t(); wire [1:0] v; assign v = 2'b10; endmodule
  )");
  SynthResult r = synthesize(m, vendor_a_subset());
  ASSERT_TRUE(r.ok);
  bool found = false;
  for (const auto& [rtl_name, flat] : r.name_map)
    if (rtl_name == "v[1]" && flat == "v_1") found = true;
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace interop::hdl
