#include "hdl/timing.hpp"

#include <gtest/gtest.h>

namespace interop::hdl {
namespace {

const TimingSpec kSpec{3, 2};  // setup 3, hold 2

TEST(Timing, CleanDataPasses) {
  TimingModel m(SimVersion::V1_5, false);
  // Clock at 10; data settled at 2 (well before setup window).
  TimingResult r = m.check({2}, {10}, kSpec);
  EXPECT_EQ(r.total(), 0);
}

TEST(Timing, SetupViolationInsideWindow) {
  TimingModel m(SimVersion::V1_5, false);
  TimingResult r = m.check({8}, {10}, kSpec);  // 10-3 < 8 < 10
  EXPECT_EQ(r.setup_violations, 1);
  EXPECT_EQ(r.hold_violations, 0);
}

TEST(Timing, HoldViolationInsideWindow) {
  TimingModel m(SimVersion::V1_5, false);
  TimingResult r = m.check({11}, {10}, kSpec);  // 10 < 11 < 12
  EXPECT_EQ(r.hold_violations, 1);
}

// The version change: boundary transitions flip from legal to violating.
TEST(Timing, BoundarySemanticsChangedIn16a) {
  // Data exactly at clk - setup (t=7, clk=10) and exactly at clk.
  std::vector<std::int64_t> data{7, 10};
  std::vector<std::int64_t> clocks{10};

  TimingModel old_sim(SimVersion::V1_5, false);
  TimingResult r_old = old_sim.check(data, clocks, kSpec);
  EXPECT_EQ(r_old.setup_violations, 0);  // open windows
  EXPECT_EQ(r_old.hold_violations, 0);

  TimingModel new_sim(SimVersion::V1_6A, false);
  TimingResult r_new = new_sim.check(data, clocks, kSpec);
  EXPECT_EQ(r_new.setup_violations, 2);  // both boundary edges now count
  EXPECT_EQ(r_new.hold_violations, 1);   // t=10 coincident edge
}

// "+pre_16a_path": newer versions reproduce the old behavior exactly.
TEST(Timing, CompatFlagRestoresOldBehavior) {
  std::vector<std::int64_t> data{7, 8, 10, 11, 15};
  std::vector<std::int64_t> clocks{10, 20};

  TimingModel v15(SimVersion::V1_5, false);
  TimingModel v16_compat(SimVersion::V1_6A, true);
  TimingModel v20_compat(SimVersion::V2_0, true);

  TimingResult golden = v15.check(data, clocks, kSpec);
  EXPECT_EQ(v16_compat.check(data, clocks, kSpec), golden);
  EXPECT_EQ(v20_compat.check(data, clocks, kSpec), golden);

  // And without the flag they drift.
  TimingModel v16(SimVersion::V1_6A, false);
  EXPECT_NE(v16.check(data, clocks, kSpec), golden);
}

TEST(Timing, V20GlitchRejectionDiffersFrom16a) {
  // A glitch pair at 8/9 inside the setup window: 1.6a reports both,
  // 2.0 filters the pulse and reports none.
  std::vector<std::int64_t> data{8, 9};
  std::vector<std::int64_t> clocks{10};
  TimingModel v16(SimVersion::V1_6A, false);
  TimingModel v20(SimVersion::V2_0, false);
  EXPECT_EQ(v16.check(data, clocks, kSpec).setup_violations, 2);
  EXPECT_EQ(v20.check(data, clocks, kSpec).setup_violations, 0);
}

TEST(Timing, VersionNames) {
  EXPECT_EQ(to_string(SimVersion::V1_5), "1.5");
  EXPECT_EQ(to_string(SimVersion::V1_6A), "1.6a");
  EXPECT_EQ(to_string(SimVersion::V2_0), "2.0");
}

class TimingSweep : public ::testing::TestWithParam<int> {};

// Property: with the compat flag, every version agrees with V1_5 on every
// workload; without it, 1.6a never reports fewer violations than 1.5.
TEST_P(TimingSweep, CompatInvariantAndMonotonicity) {
  int seed = GetParam();
  std::vector<std::int64_t> data, clocks;
  std::uint64_t s = std::uint64_t(seed) * 2654435761u + 12345;
  auto next = [&s]() {
    s ^= s << 13; s ^= s >> 7; s ^= s << 17;
    return s;
  };
  std::int64_t t = 0;
  for (int i = 0; i < 50; ++i) data.push_back(t += 1 + next() % 7);
  t = 5;
  for (int i = 0; i < 20; ++i) clocks.push_back(t += 8 + next() % 5);

  TimingModel v15(SimVersion::V1_5, false);
  TimingResult golden = v15.check(data, clocks, kSpec);
  for (SimVersion v : {SimVersion::V1_6A, SimVersion::V2_0}) {
    TimingModel compat(v, true);
    EXPECT_EQ(compat.check(data, clocks, kSpec), golden) << to_string(v);
  }
  TimingModel v16(SimVersion::V1_6A, false);
  TimingResult r16 = v16.check(data, clocks, kSpec);
  EXPECT_GE(r16.setup_violations, golden.setup_violations);
  EXPECT_GE(r16.hold_violations, golden.hold_violations);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimingSweep, ::testing::Range(1, 16));

}  // namespace
}  // namespace interop::hdl
