// Regression tests for the Metrics text exposition: the service's
// metrics dump endpoint is golden-tested against this format, so it must
// be byte-deterministic (globally sorted by name, ties broken by kind)
// and immune to hostile metric names (whitespace is escaped, never able
// to desync the line structure).

#include <gtest/gtest.h>

#include <algorithm>

#include "obs/metrics.hpp"

using interop::obs::Metrics;

TEST(RuntimeObsExposition, GloballySortedAcrossKinds) {
  Metrics m;
  // Register deliberately out of order and interleaved across kinds.
  m.histogram("svc.latency").observe(3);
  m.counter("svc.rejected").add(2);
  m.gauge("svc.depth").set(7);
  m.counter("alpha").add(1);
  m.gauge("zeta").set(-4);

  EXPECT_EQ(m.expose(),
            "counter alpha 1\n"
            "gauge svc.depth 7\n"
            "histogram svc.latency count=1 sum=3 p50~3 p99~3 max<=3\n"
            "counter svc.rejected 2\n"
            "gauge zeta -4\n");
}

TEST(RuntimeObsExposition, SameNameTiesBreakCounterGaugeHistogram) {
  Metrics m;
  m.histogram("x").observe(0);
  m.gauge("x").set(5);
  m.counter("x").add(9);

  EXPECT_EQ(m.expose(),
            "counter x 9\n"
            "gauge x 5\n"
            "histogram x count=1 sum=0 p50~0 p99~0 max<=0\n");
}

TEST(RuntimeObsExposition, EscapesWhitespaceInNames) {
  Metrics m;
  m.counter("bad name").add(1);
  m.counter("worse\nname").add(2);
  m.counter("tab\tname").add(3);
  m.counter("back\\slash").add(4);

  std::string text = m.expose();
  EXPECT_EQ(text,
            "counter back\\\\slash 4\n"
            "counter bad\\sname 1\n"
            "counter tab\\tname 3\n"
            "counter worse\\nname 2\n");
  // The defining property: one metric per line, two fields before the
  // value, no matter what the name contained.
  for (std::size_t pos = 0, line = 0; pos < text.size(); ++line) {
    std::size_t end = text.find('\n', pos);
    ASSERT_NE(end, std::string::npos);
    std::string row = text.substr(pos, end - pos);
    EXPECT_EQ(std::count(row.begin(), row.end(), ' '), 2) << row;
    pos = end + 1;
  }
}

TEST(RuntimeObsExposition, EscapeIsIdentityOnCleanNames) {
  EXPECT_EQ(Metrics::escape_metric_name("runtime.cache.hit"),
            "runtime.cache.hit");
  EXPECT_EQ(Metrics::escape_metric_name("a b\\c\nd\te"),
            "a\\sb\\\\c\\nd\\te");
}

TEST(RuntimeObsExposition, DeterministicAcrossRegistrationOrder) {
  Metrics a, b;
  a.counter("one").add(1);
  a.gauge("two").set(2);
  a.histogram("three").observe(3);
  b.histogram("three").observe(3);
  b.counter("one").add(1);
  b.gauge("two").set(2);
  EXPECT_EQ(a.expose(), b.expose());
}
