// Observability layer tests. Suites are named Runtime* on purpose: the
// tsan preset's ctest filter (-R Runtime) must cover the concurrent
// emit-while-flush path.

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/check.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/executor.hpp"
#include "workflow/engine.hpp"

namespace interop {
namespace {

using obs::EventKind;
using obs::TraceEvent;
using obs::TraceSession;

// ----------------------------------------------------------- trace core

TEST(RuntimeObsTrace, DisarmedEmittersAreNoops) {
  ASSERT_FALSE(obs::armed());
  obs::begin_span("t", "x", 1);
  obs::end_span("t", "x", 1);
  obs::instant("t", "i");
  obs::counter("t", "c", 7);
  obs::Span span("t", "raii");
  EXPECT_EQ(span.id(), 0u);

  // Arming afterwards must not resurrect any of the above.
  TraceSession session;
  session.arm();
  EXPECT_TRUE(obs::armed());
  session.disarm();
  EXPECT_TRUE(session.flush().empty());
}

TEST(RuntimeObsTrace, SpanLatchesArmStateAtConstruction) {
  TraceSession session;
  session.arm();
  {
    obs::Span outer("t", "outer");
    EXPECT_NE(outer.id(), 0u);
    session.disarm();
    // End emits even though the session is disarmed now: a started span
    // never dangles.
  }
  std::vector<TraceEvent> events = session.flush();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, EventKind::Begin);
  EXPECT_EQ(events[1].kind, EventKind::End);
  EXPECT_EQ(events[0].id, events[1].id);
}

TEST(RuntimeObsTrace, FlushPreservesPerThreadOrderAndAssignsTids) {
  TraceSession session;
  session.arm();
  obs::instant("t", "a");
  obs::instant("t", "b");
  obs::counter("t", "c", 1);
  session.disarm();
  std::vector<TraceEvent> events = session.flush();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].name, "a");
  EXPECT_EQ(events[1].name, "b");
  EXPECT_EQ(events[2].name, "c");
  for (const TraceEvent& e : events) EXPECT_EQ(e.tid, events[0].tid);
}

// The TSan-verified concurrency contract: many threads emit while the
// session owner flushes concurrently; nothing is lost, spans stay
// well-nested per thread.
TEST(RuntimeObsTrace, ConcurrentEmitWhileFlushing) {
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 200;

  TraceSession session;
  session.arm();

  std::atomic<bool> go{false};
  std::atomic<int> done{0};
  std::vector<std::thread> emitters;
  emitters.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    emitters.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < kSpansPerThread; ++i) {
        obs::Span span("stress", "work" + std::to_string(t));
        obs::counter("stress", "i", i);
      }
      done.fetch_add(1, std::memory_order_release);
    });
  }
  go.store(true, std::memory_order_release);
  // Flush aggressively while emitters run — the racy path under test.
  while (done.load(std::memory_order_acquire) < kThreads) session.flush();
  for (std::thread& t : emitters) t.join();
  session.disarm();

  std::vector<TraceEvent> events = session.flush();
  EXPECT_EQ(events.size(), std::size_t(kThreads) * kSpansPerThread * 3);

  // Per-tid span nesting must be intact; reuse the checker on the JSON.
  std::ostringstream os;
  session.write_chrome_json(os);
  obs::TraceCheckResult check = obs::check_chrome_trace(os.str());
  EXPECT_TRUE(check.ok) << (check.errors.empty() ? "" : check.errors[0]);
  EXPECT_EQ(check.spans, std::size_t(kThreads) * kSpansPerThread);
}

TEST(RuntimeObsTrace, BinaryRoundTrip) {
  TraceSession session;
  session.arm();
  obs::begin_span("cat", "span \"quoted\"", 42, "\"k\":1");
  obs::counter("cat", "c", -5);
  obs::instant("cat", "i", "\"msg\":\"x\\ny\"");
  obs::end_span("cat", "span \"quoted\"", 42);
  session.disarm();

  std::vector<TraceEvent> original = session.flush();
  std::stringstream buf;
  session.write_binary(buf);
  std::vector<TraceEvent> decoded;
  ASSERT_TRUE(TraceSession::read_binary(buf, &decoded));
  EXPECT_EQ(decoded, original);

  // Corrupted magic is rejected.
  std::stringstream bad("XXXXgarbage");
  EXPECT_FALSE(TraceSession::read_binary(bad, &decoded));
}

// ----------------------------------------------------------- metrics

TEST(RuntimeObsMetrics, CountersGaugesHistograms) {
  obs::Metrics m;
  m.counter("a.count").add();
  m.counter("a.count").add(4);
  EXPECT_EQ(m.counter("a.count").value(), 5);

  m.gauge("a.depth").set(7);
  m.gauge("a.depth").add(-2);
  EXPECT_EQ(m.gauge("a.depth").value(), 5);

  auto& h = m.histogram("a.us");
  h.observe(0);
  h.observe(1);
  h.observe(5);
  h.observe(1000);
  EXPECT_EQ(h.count(), 4);
  EXPECT_EQ(h.sum(), 1006);
  EXPECT_EQ(h.bucket(obs::MetricHistogram::bucket_of(0)), 1);
  EXPECT_EQ(h.bucket(obs::MetricHistogram::bucket_of(5)), 1);

  std::string text = m.expose();
  EXPECT_NE(text.find("counter a.count 5"), std::string::npos);
  EXPECT_NE(text.find("gauge a.depth 5"), std::string::npos);
  EXPECT_NE(text.find("histogram a.us count=4 sum=1006"), std::string::npos);

  // Reset zeroes in place; cached references stay valid.
  auto& c = m.counter("a.count");
  m.reset();
  EXPECT_EQ(c.value(), 0);
  EXPECT_EQ(h.count(), 0);
}

TEST(RuntimeObsMetrics, Log2BucketBoundaries) {
  using H = obs::MetricHistogram;
  EXPECT_EQ(H::bucket_of(0), 0);
  EXPECT_EQ(H::bucket_of(1), 1);
  EXPECT_EQ(H::bucket_of(2), 2);
  EXPECT_EQ(H::bucket_of(3), 2);
  EXPECT_EQ(H::bucket_of(4), 3);
  EXPECT_EQ(H::bucket_of(~std::uint64_t(0)), 64);
  EXPECT_EQ(H::bucket_upper(0), 0u);
  EXPECT_EQ(H::bucket_upper(2), 3u);
  EXPECT_EQ(H::bucket_upper(64), ~std::uint64_t(0));
}

// ----------------------------------------------------------- checker

TEST(RuntimeObsCheck, AcceptsAWellFormedTrace) {
  const char* good = R"({"traceEvents":[
    {"name":"a","cat":"t","ph":"B","ts":1,"pid":1,"tid":0},
    {"name":"b","cat":"t","ph":"B","ts":2,"pid":1,"tid":0},
    {"name":"b","cat":"t","ph":"E","ts":3,"pid":1,"tid":0},
    {"name":"a","cat":"t","ph":"E","ts":4,"pid":1,"tid":0},
    {"name":"c","cat":"t","ph":"C","ts":4,"pid":1,"tid":0,"args":{"value":2}},
    {"name":"i","cat":"t","ph":"i","ts":5,"pid":1,"tid":1}]})";
  obs::TraceCheckResult r = obs::check_chrome_trace(good);
  EXPECT_TRUE(r.ok) << (r.errors.empty() ? "" : r.errors[0]);
  EXPECT_EQ(r.events, 6u);
  EXPECT_EQ(r.spans, 2u);
  EXPECT_EQ(r.counters, 1u);
  EXPECT_EQ(r.instants, 1u);
}

TEST(RuntimeObsCheck, RejectsBadTraces) {
  // Not JSON at all.
  EXPECT_FALSE(obs::check_chrome_trace("not json").ok);
  // Missing traceEvents.
  EXPECT_FALSE(obs::check_chrome_trace(R"({"foo":[]})").ok);
  // Unclosed span.
  EXPECT_FALSE(obs::check_chrome_trace(
                   R"({"traceEvents":[
        {"name":"a","ph":"B","ts":1,"pid":1,"tid":0}]})")
                   .ok);
  // E without B.
  EXPECT_FALSE(obs::check_chrome_trace(
                   R"({"traceEvents":[
        {"name":"a","ph":"E","ts":1,"pid":1,"tid":0}]})")
                   .ok);
  // Mismatched nesting (E closes the wrong name).
  EXPECT_FALSE(obs::check_chrome_trace(
                   R"({"traceEvents":[
        {"name":"a","ph":"B","ts":1,"pid":1,"tid":0},
        {"name":"b","ph":"B","ts":2,"pid":1,"tid":0},
        {"name":"a","ph":"E","ts":3,"pid":1,"tid":0},
        {"name":"b","ph":"E","ts":4,"pid":1,"tid":0}]})")
                   .ok);
  // Timestamp regression on one tid.
  EXPECT_FALSE(obs::check_chrome_trace(
                   R"({"traceEvents":[
        {"name":"i","ph":"i","ts":5,"pid":1,"tid":0},
        {"name":"j","ph":"i","ts":4,"pid":1,"tid":0}]})")
                   .ok);
  // Missing required key (no ts).
  EXPECT_FALSE(obs::check_chrome_trace(
                   R"({"traceEvents":[
        {"name":"i","ph":"i","pid":1,"tid":0}]})")
                   .ok);
}

// ----------------------------------------------------------- golden flow

namespace {

wf::Action write_action(std::string out, std::vector<std::string> reads) {
  return {out, wf::ActionLanguage::Native,
          [out, reads](wf::ActionApi& api) {
            std::string content;
            for (const std::string& r : reads)
              content += api.read_data(r).value_or("?");
            api.write_data(out, content + "+" + out);
            return wf::ActionResult{0, "ok"};
          }};
}

wf::FlowTemplate golden_flow(int width) {
  wf::FlowTemplate flow;
  flow.name = "golden";
  wf::StepDef src;
  src.name = "src";
  src.writes = {"src.out"};
  src.action = write_action("src.out", {});
  flow.steps.push_back(src);
  wf::StepDef sink;
  sink.name = "sink";
  for (int i = 0; i < width; ++i) {
    std::string name = "w" + std::to_string(i);
    wf::StepDef step;
    step.name = name;
    step.start_after = {"src"};
    step.reads = {"src.out"};
    step.writes = {name + ".out"};
    step.action = write_action(name + ".out", {"src.out"});
    flow.steps.push_back(std::move(step));
    sink.start_after.push_back(name);
    sink.reads.push_back(name + ".out");
  }
  sink.writes = {"sink.out"};
  sink.action = write_action("sink.out", sink.reads);
  flow.steps.push_back(std::move(sink));
  return flow;
}

}  // namespace

// A pinned-seed flow run with injected faults produces a schema-valid
// Chrome trace whose per-step span counts reconcile exactly with the
// RunJournal's attempt records (cross-linked by span id).
TEST(RuntimeObsGolden, FlowTraceMatchesJournal) {
  using namespace interop::runtime;

  TraceSession session;
  session.arm();

  RetryPolicy retry;
  retry.max_attempts = 3;
  retry.backoff_base_us = 10;
  FaultPlan plan;
  plan.schedule[{"w1", 1}] = FaultKind::Fail;       // w1 retries once
  plan.schedule[{"w3", 1}] = FaultKind::TornWrite;  // w3 retries once

  ParallelExecutor par(golden_flow(6), {},
                       std::make_unique<wf::SimpleDataManager>(),
                       {.workers = 4, .retry = retry}, nullptr);
  par.set_fault_injector(
      std::make_shared<FaultInjector>(/*seed=*/1234, plan));
  ASSERT_TRUE(par.instantiate({}).empty());
  RunStats stats = par.run();
  session.disarm();

  EXPECT_EQ(stats.failures, 0);
  EXPECT_EQ(stats.retries, 2);

  // Schema validity of the serialized trace.
  std::ostringstream os;
  session.write_chrome_json(os);
  obs::TraceCheckResult check = obs::check_chrome_trace(os.str());
  ASSERT_TRUE(check.ok) << (check.errors.empty() ? "" : check.errors[0]);
  EXPECT_GT(check.spans, 0u);
  EXPECT_GT(check.instants, 0u);  // engine transitions + backoff markers

  // Reconciliation: every journaled attempt carries a span id, and that
  // span exists in the trace exactly once as Begin + once as End, named
  // after the step.
  std::vector<TraceEvent> events = session.flush();
  std::map<std::uint64_t, int> begins, ends;
  std::map<std::uint64_t, std::string> span_name;
  for (const TraceEvent& e : events) {
    if (e.id == 0) continue;
    if (e.kind == EventKind::Begin) {
      ++begins[e.id];
      span_name[e.id] = e.name;
    } else if (e.kind == EventKind::End) {
      ++ends[e.id];
    }
  }
  std::map<std::string, int> journal_attempts, trace_attempt_spans;
  for (const JournalEntry& e : par.journal().entries()) {
    ASSERT_NE(e.span, 0u) << "journal entry without a trace span: " << e.step;
    EXPECT_EQ(begins[e.span], 1) << "span " << e.span;
    EXPECT_EQ(ends[e.span], 1) << "span " << e.span;
    EXPECT_EQ(span_name[e.span], "step:" + e.step);
    ++journal_attempts[e.step];
  }
  for (const auto& [id, n] : begins) {
    const std::string& name = span_name[id];
    if (name.rfind("step:", 0) == 0) ++trace_attempt_spans[name.substr(5)];
  }
  EXPECT_EQ(trace_attempt_spans, journal_attempts);

  // The faulted steps show their extra attempt in both views.
  EXPECT_EQ(journal_attempts["w1"], 2);
  EXPECT_EQ(journal_attempts["w3"], 2);
  EXPECT_EQ(journal_attempts["w0"], 1);

  // The JSON journal export carries the span cross-links.
  std::string journal_json = par.journal().to_json(par.engine().instance());
  EXPECT_NE(journal_json.find("\"span\":"), std::string::npos);
}

}  // namespace
}  // namespace interop
