#include "pnr/abstract.hpp"

#include <gtest/gtest.h>

#include "pnr/design.hpp"
#include "pnr/floorplanner.hpp"
#include "pnr/generator.hpp"
#include "pnr/place.hpp"

namespace interop::pnr {
namespace {

TEST(Abstract, AccessDirsBasics) {
  AccessDirs all = AccessDirs::all();
  EXPECT_EQ(all.count(), 4);
  EXPECT_TRUE(all.any());
  AccessDirs west{false, false, false, true};
  EXPECT_EQ(to_string(west), "W");
  EXPECT_EQ(to_string(AccessDirs{}), "-");
}

TEST(Abstract, DeriveAccessFromBlockages) {
  AbstractPin pin;
  pin.name = "A";
  pin.shapes.push_back({Layer::M1, Rect::from_xywh(5, 5, 1, 1)});
  // Blockage strip hugging the north side.
  std::vector<Blockage> blk = {{Layer::M1, Rect::from_xywh(5, 6, 1, 1)}};
  AccessDirs d = derive_access_from_blockages(pin, blk);
  EXPECT_FALSE(d.north);
  EXPECT_TRUE(d.south);
  EXPECT_TRUE(d.east);
  EXPECT_TRUE(d.west);
  // Different layer does not block.
  std::vector<Blockage> other = {{Layer::M2, Rect::from_xywh(5, 6, 1, 1)}};
  EXPECT_TRUE(derive_access_from_blockages(pin, other).north);
}

// The emulation round-trip: synthesize strips from access dirs, then derive
// them back — the geometric encoding is faithful.
class AccessRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(AccessRoundTrip, SynthesizeDeriveRoundTrips) {
  int mask = GetParam();
  AccessDirs want{(mask & 1) != 0, (mask & 2) != 0, (mask & 4) != 0,
                  (mask & 8) != 0};
  AbstractPin pin;
  pin.name = "P";
  pin.shapes.push_back({Layer::M1, Rect::from_xywh(10, 10, 1, 1)});
  std::vector<Blockage> strips = synthesize_access_blockages(pin, want);
  EXPECT_EQ(derive_access_from_blockages(pin, strips), want);
}

INSTANTIATE_TEST_SUITE_P(AllMasks, AccessRoundTrip, ::testing::Range(0, 16));

TEST(Design, PinPositionWithPlacement) {
  CellAbstract cell;
  cell.name = "c";
  cell.boundary = Rect::from_xywh(0, 0, 6, 4);
  AbstractPin pin;
  pin.name = "A";
  pin.shapes.push_back({Layer::M1, Rect::from_xywh(0, 2, 1, 1)});
  cell.pins.push_back(pin);

  PhysInstance inst;
  inst.cell = "c";
  inst.origin = {10, 20};
  inst.orient = Orient::R0;
  EXPECT_EQ(inst.pin_position(cell, "A"), (Point{10, 22}));
  EXPECT_EQ(inst.placed_boundary(cell), Rect::from_xywh(10, 20, 6, 4));

  inst.orient = Orient::MY;  // mirror about Y: pin flips to the east side
  Rect b = inst.placed_boundary(cell);
  EXPECT_EQ(b, Rect::from_xywh(10, 20, 6, 4));
  EXPECT_EQ(inst.pin_position(cell, "A").x, 16);
}

TEST(Library, HasFullPinVocabulary) {
  auto lib = make_pnr_library();
  const CellAbstract& dff = lib.at("dff");
  const AbstractPin* ck = dff.find_pin("CK");
  ASSERT_NE(ck, nullptr);
  EXPECT_TRUE(ck->props.must_connect);
  EXPECT_EQ(to_string(ck->props.access), "S");
  EXPECT_EQ(dff.find_pin("Q")->props.equivalent_class, 1);
  EXPECT_EQ(dff.find_pin("QA")->props.equivalent_class, 1);
  EXPECT_TRUE(dff.find_pin("VP")->props.multiple_connect);
  EXPECT_TRUE(dff.find_pin("VP")->props.connect_by_abutment);
  EXPECT_EQ(lib.at("nd2").legal_orients.size(), 2u);
}

TEST(Place, RowsAreLegalAndImprove) {
  PnrGenOptions opt;
  opt.seed = 3;
  opt.instances = 16;
  PhysDesign design = make_pnr_workload(opt);
  // Everything inside the die, nothing overlapping keepouts.
  for (const PhysInstance& inst : design.instances) {
    const CellAbstract* cell = design.find_cell(inst.cell);
    Rect b = inst.placed_boundary(*cell);
    EXPECT_TRUE(design.floorplan.die.contains(b)) << inst.name;
    for (const Keepout& ko : design.floorplan.keepouts)
      EXPECT_FALSE(ko.rect.overlaps(b)) << inst.name;
  }
  // Swap improvement never worsens HPWL.
  PlaceOptions popt;
  popt.seed = 7;
  popt.swap_iterations = 500;
  popt.row_height = 9;
  PlaceResult pr = place(design, popt);
  EXPECT_LE(pr.hpwl_final, pr.hpwl_initial);
}

TEST(Place, NoOverlapsBetweenInstances) {
  PnrGenOptions opt;
  opt.seed = 5;
  opt.instances = 20;
  PhysDesign design = make_pnr_workload(opt);
  for (std::size_t i = 0; i < design.instances.size(); ++i) {
    Rect bi = design.instances[i].placed_boundary(
        *design.find_cell(design.instances[i].cell));
    for (std::size_t j = i + 1; j < design.instances.size(); ++j) {
      Rect bj = design.instances[j].placed_boundary(
          *design.find_cell(design.instances[j].cell));
      EXPECT_FALSE(bi.overlaps(bj))
          << design.instances[i].name << " vs " << design.instances[j].name;
    }
  }
}

TEST(Floorplanner, PacksBlocksWithinAspectBounds) {
  std::vector<BlockSpec> blocks = {
      {"cpu", 400, 0.5, 2.0},
      {"cache", 200, 0.5, 2.0},
      {"io", 100, 0.25, 4.0},
  };
  FloorplanResult fp = floorplan_blocks(blocks, 60, 60);
  ASSERT_TRUE(fp.ok) << fp.error;
  ASSERT_EQ(fp.blocks.size(), 3u);
  for (const BlockSpec& spec : blocks) {
    const Rect& r = fp.blocks.at(spec.name);
    EXPECT_GE(r.area(), spec.area);
    double aspect = double(r.height()) / double(r.width());
    EXPECT_GE(aspect, spec.min_aspect - 1e-9);
    EXPECT_LE(aspect, spec.max_aspect + 1e-9);
    EXPECT_TRUE(fp.die.contains(r));
  }
  // Blocks do not overlap.
  std::vector<Rect> rects;
  for (const auto& [name, r] : fp.blocks) rects.push_back(r);
  for (std::size_t i = 0; i < rects.size(); ++i)
    for (std::size_t j = i + 1; j < rects.size(); ++j)
      EXPECT_FALSE(rects[i].overlaps(rects[j]));
  EXPECT_GT(fp.utilization, 0.15);
}

TEST(Floorplanner, FailsWhenBlocksDoNotFit) {
  std::vector<BlockSpec> blocks = {{"huge", 10000, 0.5, 2.0}};
  FloorplanResult fp = floorplan_blocks(blocks, 20, 20);
  EXPECT_FALSE(fp.ok);
  EXPECT_FALSE(fp.error.empty());
}

TEST(Floorplanner, AvoidsKeepouts) {
  std::vector<BlockSpec> blocks = {{"a", 100, 0.5, 2.0}, {"b", 100, 0.5, 2.0}};
  std::vector<Keepout> keepouts = {{Layer::M1, Rect::from_xywh(0, 0, 15, 15)}};
  FloorplanResult fp = floorplan_blocks(blocks, 60, 60, keepouts);
  ASSERT_TRUE(fp.ok) << fp.error;
  for (const auto& [name, r] : fp.blocks)
    EXPECT_FALSE(r.overlaps(keepouts[0].rect)) << name;
}

}  // namespace
}  // namespace interop::pnr
