#include "pnr/backplane.hpp"

#include <gtest/gtest.h>

#include "pnr/generator.hpp"

namespace interop::pnr {
namespace {

class BackplaneFixture : public ::testing::Test {
 protected:
  BackplaneFixture() {
    PnrGenOptions opt;
    opt.seed = 11;
    design = make_pnr_workload(opt);
  }
  PhysDesign design;
  base::DiagnosticEngine diags;
};

TEST_F(BackplaneFixture, SemanticAtomsCounted) {
  int atoms = semantic_atoms(design);
  EXPECT_GT(atoms, 10);  // access specs, conn props, topologies, keepouts
}

TEST_F(BackplaneFixture, DirectExportToAlphaKeepsProperties) {
  ToolInput input = export_direct(design, router_alpha_caps(), diags);
  // Alpha takes access as a property and literal conn props.
  bool saw_access = false, saw_conn = false;
  for (const ToolInput::PinRecord& pin : input.pins) {
    if (pin.access && !(pin.access == AccessDirs::all())) saw_access = true;
    if (pin.conn && pin.conn->must_connect) saw_conn = true;
  }
  EXPECT_TRUE(saw_access);
  EXPECT_TRUE(saw_conn);
  EXPECT_FALSE(input.keepouts.empty());
}

TEST_F(BackplaneFixture, DirectExportToGammaDropsSilently) {
  ToolInput input = export_direct(design, router_gamma_caps(), diags);
  for (const ToolInput::PinRecord& pin : input.pins) {
    EXPECT_FALSE(pin.access.has_value());
    EXPECT_FALSE(pin.conn.has_value());
  }
  for (const ToolInput::NetRecord& net : input.nets) {
    EXPECT_FALSE(net.width.has_value());
    EXPECT_FALSE(net.spacing.has_value());
  }
  EXPECT_TRUE(input.keepouts.empty());
  // Drops are only Notes — the silent-loss failure mode.
  EXPECT_GT(diags.count_code("direct-drop"), 0u);
  EXPECT_EQ(diags.count(base::Severity::Warning), 0u);
}

TEST_F(BackplaneFixture, BackplaneEmulatesAccessForBeta) {
  LossReport loss;
  ToolInput input = export_via_backplane(design, router_beta_caps(), loss,
                                         diags);
  // Beta has no access property, so records stay empty...
  for (const ToolInput::PinRecord& pin : input.pins)
    EXPECT_FALSE(pin.access.has_value());
  // ...but the cells grew synthesized blockage strips that encode access.
  const ToolInput::CellRecord* nd2 = nullptr;
  for (const ToolInput::CellRecord& c : input.cells)
    if (c.name == "nd2") nd2 = &c;
  ASSERT_NE(nd2, nullptr);
  EXPECT_GT(nd2->blockages.size(),
            design.cells.at("nd2").blockages.size());
  EXPECT_GT(diags.count_code("backplane-emulate"), 0u);
  // And connection types went to the side file.
  EXPECT_FALSE(input.conn_file.empty());
}

TEST_F(BackplaneFixture, BackplaneReportsExplicitLossForGamma) {
  LossReport loss;
  export_via_backplane(design, router_gamma_caps(), loss, diags);
  // Gamma cannot express net width/spacing/shield or conn types.
  EXPECT_FALSE(loss.lost.empty());
  bool saw_width = false;
  for (const LossReport::Item& item : loss.lost)
    if (item.feature == "net-width") saw_width = true;
  EXPECT_TRUE(saw_width);
  EXPECT_LT(loss.fidelity(), 1.0);
  EXPECT_GT(loss.fidelity(), 0.0);
  // Losses are Warnings, not buried Notes.
  EXPECT_GT(diags.count_code("backplane-loss"), 0u);
}

TEST_F(BackplaneFixture, BackplaneFidelityBeatsDirectForEveryTool) {
  for (const ToolCaps& caps :
       {router_alpha_caps(), router_beta_caps(), router_gamma_caps()}) {
    base::DiagnosticEngine d1, d2;
    ToolInput direct = export_direct(design, caps, d1);
    LossReport direct_loss = measure_direct_loss(design, direct);
    LossReport bp_loss;
    export_via_backplane(design, caps, bp_loss, d2);
    EXPECT_GE(bp_loss.fidelity(), direct_loss.fidelity()) << caps.name;
  }
  // And strictly better for the blockage-deriving tool.
  base::DiagnosticEngine d1, d2;
  ToolInput direct = export_direct(design, router_beta_caps(), d1);
  LossReport direct_loss = measure_direct_loss(design, direct);
  LossReport bp_loss;
  export_via_backplane(design, router_beta_caps(), bp_loss, d2);
  EXPECT_GT(bp_loss.fidelity(), direct_loss.fidelity());
}

TEST_F(BackplaneFixture, KeepoutsEmulatedAsObstructionCells) {
  LossReport loss;
  ToolInput input = export_via_backplane(design, router_gamma_caps(), loss,
                                         diags);
  EXPECT_TRUE(input.keepouts.empty());  // the tool has no keepout concept
  int obstructions = 0;
  for (const PhysInstance& inst : input.placement)
    if (inst.cell.rfind("__keepout", 0) == 0) ++obstructions;
  EXPECT_EQ(obstructions, int(design.floorplan.keepouts.size()));
}

TEST_F(BackplaneFixture, FullFidelityNeedsAllThreeTools) {
  // No single tool carries everything; the per-tool fidelity is < 1 even
  // via the backplane for gamma, but alpha+beta cover different subsets.
  LossReport alpha, beta, gamma;
  base::DiagnosticEngine d;
  export_via_backplane(design, router_alpha_caps(), alpha, d);
  export_via_backplane(design, router_beta_caps(), beta, d);
  export_via_backplane(design, router_gamma_caps(), gamma, d);
  EXPECT_GT(alpha.fidelity(), gamma.fidelity());
  EXPECT_GT(beta.fidelity(), gamma.fidelity());
}

}  // namespace
}  // namespace interop::pnr
