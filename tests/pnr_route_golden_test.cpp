// Differential golden tests for the array-backed maze router.
//
// The flat (epoch-stamped, grid-indexed) search kernel must route exactly
// like the reference map/set-based router: same wirelength, same failure
// set, same terminal attach sides, cell for cell. The goldens below were
// captured from the reference router (seed commit 9be33dd) on the §4
// workload generator, seeds 1-5, exported through router beta's caps —
// the same path bench_t7/bench_perf_kernels exercise.

#include "pnr/route.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "pnr/backplane.hpp"
#include "pnr/generator.hpp"

namespace interop::pnr {
namespace {

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Order-sensitive digest of the full routed result: per-net cell counts,
/// routed flags, and per-terminal attach side / connectivity / position.
std::uint64_t route_hash(const RouteResult& r) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const RoutedNet& nn : r.nets) {
    h = fnv1a(h, nn.cells.size());
    h = fnv1a(h, nn.width_cells.size());
    h = fnv1a(h, nn.shield_cells.size());
    h = fnv1a(h, nn.routed ? 1 : 0);
    for (const RoutedTerm& t : nn.terms) {
      h = fnv1a(h, std::uint64_t(t.entered_from));
      h = fnv1a(h, t.connected ? 1 : 0);
      h = fnv1a(h, std::uint64_t(t.at.x));
      h = fnv1a(h, std::uint64_t(t.at.y));
    }
  }
  return h;
}

struct Golden {
  std::uint64_t seed;
  std::int64_t wirelength;
  int failed_nets;
  int connected_terms;
  int total_terms;
  std::uint64_t hash;
};

constexpr Golden kGoldens[] = {
    {1ULL, 2007LL, 3, 55, 62, 0x8c9140296953f28eULL},
    {2ULL, 1249LL, 2, 50, 56, 0x92ff5498066748f8ULL},
    {3ULL, 1438LL, 4, 43, 51, 0x28cd8e2724008f07ULL},
    {4ULL, 1766LL, 1, 56, 59, 0xb722773f384dbaceULL},
    {5ULL, 1331LL, 5, 51, 65, 0xfbd60fcaacdd3448ULL},
};

TEST(RouteGolden, WorkloadSeedsMatchReferenceRouter) {
  for (const Golden& g : kGoldens) {
    PnrGenOptions opt;
    opt.seed = g.seed;
    PhysDesign design = make_pnr_workload(opt);
    base::DiagnosticEngine diags;
    ToolInput input = export_direct(design, router_beta_caps(), diags);
    RouteResult r = route(input);

    EXPECT_EQ(r.wirelength, g.wirelength) << "seed " << g.seed;
    EXPECT_EQ(r.failed_nets, g.failed_nets) << "seed " << g.seed;
    int connected = 0, terms = 0;
    for (const RoutedNet& nn : r.nets) {
      for (const RoutedTerm& t : nn.terms) {
        ++terms;
        if (t.connected) ++connected;
      }
    }
    EXPECT_EQ(connected, g.connected_terms) << "seed " << g.seed;
    EXPECT_EQ(terms, g.total_terms) << "seed " << g.seed;
    EXPECT_EQ(route_hash(r), g.hash) << "seed " << g.seed;
  }
}

TEST(RouteGolden, RepeatedRoutingIsDeterministic) {
  // The epoch-stamped scratch must fully isolate nets and calls: routing
  // the same input twice (same RouteResult object lifetimes, fresh call)
  // yields identical results.
  PnrGenOptions opt;
  opt.seed = 2;
  PhysDesign design = make_pnr_workload(opt);
  base::DiagnosticEngine diags;
  ToolInput input = export_direct(design, router_beta_caps(), diags);
  RouteResult a = route(input);
  RouteResult b = route(input);
  EXPECT_EQ(a.wirelength, b.wirelength);
  EXPECT_EQ(a.failed_nets, b.failed_nets);
  EXPECT_EQ(route_hash(a), route_hash(b));
}

/// "lo:hi" from GOLDEN_SEED_RANGE; false (-> GTEST_SKIP) when unset, so
/// the broad sweep only runs when ctest's `sweep`-labeled entries (or a
/// nightly CI job) opt in. See tests/CMakeLists.txt.
bool golden_seed_range(std::uint64_t* lo, std::uint64_t* hi) {
  const char* v = std::getenv("GOLDEN_SEED_RANGE");
  if (!v || !*v) return false;
  std::string s(v);
  std::size_t colon = s.find(':');
  if (colon == std::string::npos) return false;
  try {
    *lo = std::stoull(s.substr(0, colon));
    *hi = std::stoull(s.substr(colon + 1));
  } catch (const std::exception&) {
    return false;
  }
  return *lo <= *hi;
}

TEST(RouteGoldenSweep, DeterminismAndInvariantsOverSeedRange) {
  std::uint64_t lo = 0, hi = 0;
  if (!golden_seed_range(&lo, &hi))
    GTEST_SKIP() << "set GOLDEN_SEED_RANGE=lo:hi to run the broad sweep";
  for (std::uint64_t seed = lo; seed <= hi; ++seed) {
    PnrGenOptions opt;
    opt.seed = seed;
    PhysDesign design = make_pnr_workload(opt);
    base::DiagnosticEngine diags;
    ToolInput input = export_direct(design, router_beta_caps(), diags);

    RouteResult a = route(input);
    RouteResult b = route(input);
    // Flaky-proofing: the epoch-stamped scratch must make repeat calls
    // bit-identical for every seed, not just the goldens' five.
    ASSERT_EQ(route_hash(a), route_hash(b)) << "seed " << seed;
    ASSERT_EQ(a.wirelength, b.wirelength) << "seed " << seed;

    // Structural invariants that hold for any seed: non-negative
    // wirelength, failed-net count consistent with per-net flags, and
    // every connected terminal belonging to a net with route cells.
    EXPECT_GE(a.wirelength, 0) << "seed " << seed;
    int failed = 0;
    for (const RoutedNet& nn : a.nets) {
      if (!nn.routed) ++failed;
      bool any_connected = false;
      for (const RoutedTerm& t : nn.terms) any_connected |= t.connected;
      if (any_connected && nn.terms.size() > 1)
        EXPECT_FALSE(nn.cells.empty() && nn.routed) << "seed " << seed;
    }
    EXPECT_EQ(failed, a.failed_nets) << "seed " << seed;
  }
}

}  // namespace
}  // namespace interop::pnr
