#include "pnr/route.hpp"

#include <gtest/gtest.h>

#include "pnr/backplane.hpp"
#include "pnr/check.hpp"
#include "pnr/generator.hpp"

namespace interop::pnr {
namespace {

// Hand-built two-cell design for precise routing assertions.
class RouteFixture : public ::testing::Test {
 protected:
  RouteFixture() {
    design.floorplan.die = Rect::from_xywh(0, 0, 40, 20);

    CellAbstract cell;
    cell.name = "c";
    cell.boundary = Rect::from_xywh(0, 0, 4, 4);
    AbstractPin east_pin;
    east_pin.name = "Y";
    east_pin.shapes.push_back({Layer::M1, Rect::from_xywh(3, 1, 1, 1)});
    east_pin.props.access = {false, false, true, false};
    cell.pins.push_back(east_pin);
    AbstractPin west_pin;
    west_pin.name = "A";
    west_pin.shapes.push_back({Layer::M1, Rect::from_xywh(0, 1, 1, 1)});
    west_pin.props.access = {false, false, false, true};
    cell.pins.push_back(west_pin);
    design.cells["c"] = cell;

    PhysInstance u0{"u0", "c", {2, 8}, Orient::R0, false};
    PhysInstance u1{"u1", "c", {20, 8}, Orient::R0, false};
    design.instances = {u0, u1};

    PhysNet net;
    net.name = "n0";
    net.terms = {{"u0", "Y"}, {"u1", "A"}};
    design.nets.push_back(net);
  }

  ToolInput route_input_for_gamma() {
    return export_direct(design, router_gamma_caps(), diags);
  }

  PhysDesign design;
  base::DiagnosticEngine diags;
};

TEST_F(RouteFixture, RoutesSimpleNet) {
  ToolInput input = export_direct(design, router_alpha_caps(), diags);
  RouteResult r = route(input);
  ASSERT_EQ(r.nets.size(), 1u);
  EXPECT_TRUE(r.nets[0].routed);
  EXPECT_EQ(r.failed_nets, 0);
  EXPECT_GT(r.wirelength, 0);
  // Entry sides honored: into A from the west, connected.
  for (const RoutedTerm& t : r.nets[0].terms) EXPECT_TRUE(t.connected);
}

TEST_F(RouteFixture, AccessPropertyForcesEntrySide) {
  ToolInput input = export_direct(design, router_alpha_caps(), diags);
  RouteResult r = route(input);
  CheckResult c = check_routes(design, r);
  EXPECT_EQ(c.access_violations, 0);
}

TEST_F(RouteFixture, DroppedAccessCausesViolations) {
  // Gamma derives access from blockages, but the cells carry none: the
  // router is free to enter pins from any side. Stack u0 directly above u1
  // so the natural shortest path drops onto u1.A from the NORTH — which the
  // designer's west-only access forbids.
  design.instances[0].origin = {20, 14};  // u0 above u1
  design.instances[1].origin = {20, 2};   // u1 below
  ToolInput unaware = export_direct(design, router_gamma_caps(), diags);
  RouteResult r = route(unaware);
  ASSERT_TRUE(r.nets[0].routed);
  CheckResult c = check_routes(design, r);
  EXPECT_GT(c.access_violations, 0);

  // The access-aware tool wraps around and enters from the west.
  ToolInput aware = export_direct(design, router_alpha_caps(), diags);
  RouteResult r2 = route(aware);
  ASSERT_TRUE(r2.nets[0].routed);
  EXPECT_EQ(check_routes(design, r2).access_violations, 0);
  // The legal route is longer — the price of honoring the constraint.
  EXPECT_GT(r2.wirelength, r.wirelength);
}

TEST_F(RouteFixture, KeepoutsHonoredWhenConveyed) {
  // A keepout wall between the cells with a gap at the top.
  design.floorplan.keepouts.push_back(
      {Layer::M1, Rect::from_xywh(12, 0, 2, 16)});
  ToolInput with = export_direct(design, router_alpha_caps(), diags);
  RouteResult r1 = route(with);
  ASSERT_TRUE(r1.nets[0].routed);
  EXPECT_EQ(check_routes(design, r1).keepout_violations, 0);

  // Gamma never hears about the keepout and routes straight through it.
  ToolInput without = export_direct(design, router_gamma_caps(), diags);
  RouteResult r2 = route(without);
  ASSERT_TRUE(r2.nets[0].routed);
  EXPECT_GT(check_routes(design, r2).keepout_violations, 0);
  // The unaware route is shorter — it cheated through the wall.
  EXPECT_LT(r2.wirelength, r1.wirelength);
}

TEST_F(RouteFixture, WidthConveyedMeansWiderRoute) {
  design.nets[0].topology.width = 2;
  ToolInput input = export_direct(design, router_alpha_caps(), diags);
  RouteResult r = route(input);
  ASSERT_TRUE(r.nets[0].routed);
  EXPECT_EQ(r.nets[0].width_used, 2);
  EXPECT_FALSE(r.nets[0].width_cells.empty());
  EXPECT_EQ(check_routes(design, r).width_violations, 0);

  // Gamma drops width: the checker flags the too-narrow net.
  ToolInput gamma = route_input_for_gamma();
  RouteResult rg = route(gamma);
  EXPECT_GT(check_routes(design, rg).width_violations, 0);
}

TEST_F(RouteFixture, ShieldOccupiesGuardTracks) {
  design.nets[0].topology.shield = true;
  ToolInput beta = export_direct(design, router_beta_caps(), diags);
  RouteResult r = route(beta);
  ASSERT_TRUE(r.nets[0].routed);
  EXPECT_TRUE(r.nets[0].shielded);
  EXPECT_FALSE(r.nets[0].shield_cells.empty());
  EXPECT_EQ(check_routes(design, r).shield_violations, 0);

  ToolInput alpha = export_direct(design, router_alpha_caps(), diags);
  RouteResult ra = route(alpha);
  EXPECT_GT(check_routes(design, ra).shield_violations, 0);
}

TEST_F(RouteFixture, UnroutableNetReported) {
  // Solid wall, no gap.
  design.floorplan.keepouts.push_back(
      {Layer::M1, Rect::from_xywh(12, 0, 2, 21)});
  ToolInput input = export_direct(design, router_alpha_caps(), diags);
  RouteResult r = route(input);
  EXPECT_EQ(r.failed_nets, 1);
  EXPECT_FALSE(r.nets[0].routed);
}

TEST_F(RouteFixture, UnplacedShieldNetIsRoutabilityNotShieldViolation) {
  // A shield net whose far-end instance does not exist on the die: the
  // router never produces metal for it, so the checker must report a
  // failed net — not a shield (or width) violation. Found by the
  // differential fuzzer (tests/corpus/shield-unplaced-net.repro): on a
  // crowded die the placer drops an instance, the net short-circuits out
  // of the router with zero cells, and the old checker blamed shield
  // conveyance for what is a placement failure.
  design.nets[0].topology.shield = true;
  design.nets[0].topology.width = 3;
  design.nets[0].terms.push_back({"u_missing", "A"});
  design.instances.pop_back();  // u1 gone: only one placeable terminal left

  ToolInput beta = export_direct(design, router_beta_caps(), diags);
  RouteResult r = route(beta);
  ASSERT_EQ(r.nets.size(), 1u);
  EXPECT_FALSE(r.nets[0].routed);
  EXPECT_TRUE(r.nets[0].cells.empty());
  EXPECT_EQ(r.failed_nets, 1);

  CheckResult c = check_routes(design, r);
  EXPECT_EQ(c.failed_nets, 1);
  EXPECT_EQ(c.shield_violations, 0);
  EXPECT_EQ(c.width_violations, 0);
}

// ---- generated workload, end to end ----

class PnrEndToEnd : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PnrEndToEnd, BackplaneNeverWorseThanDirect) {
  PnrGenOptions opt;
  opt.seed = GetParam();
  PhysDesign design = make_pnr_workload(opt);

  for (const ToolCaps& caps :
       {router_alpha_caps(), router_beta_caps(), router_gamma_caps()}) {
    base::DiagnosticEngine d1, d2;
    ToolInput direct = export_direct(design, caps, d1);
    CheckResult direct_check = check_routes(design, route(direct));

    LossReport loss;
    ToolInput via_bp = export_via_backplane(design, caps, loss, d2);
    CheckResult bp_check = check_routes(design, route(via_bp));

    // The backplane path never increases access violations (its main
    // emulation) and overall violations stay <= direct + noise from the
    // extra blockages; assert the headline metrics.
    EXPECT_LE(bp_check.access_violations, direct_check.access_violations)
        << caps.name << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PnrEndToEnd, ::testing::Values(1, 7, 13));

TEST(PnrWorkload, MostNetsRoute) {
  PnrGenOptions opt;
  opt.seed = 2;
  PhysDesign design = make_pnr_workload(opt);
  base::DiagnosticEngine diags;
  ToolInput input = export_direct(design, router_beta_caps(), diags);
  RouteResult r = route(input);
  EXPECT_LT(r.failed_nets, int(r.nets.size()) / 2);
  EXPECT_GT(r.wirelength, 0);
}

}  // namespace
}  // namespace interop::pnr
