// Robustness: malformed inputs must fail with typed errors, never crash or
// hang. Garbage is generated deterministically by mutating valid sources.

#include <gtest/gtest.h>

#include "al/interp.hpp"
#include "al/reader.hpp"
#include "base/rng.hpp"
#include "hdl/elaborate.hpp"
#include "hdl/lexer.hpp"
#include "hdl/parser.hpp"
#include "schematic/generator.hpp"
#include "schematic/textio.hpp"

namespace {

const char* kValidVerilog = R"(
  module top(a, b, y); input a, b; output y; reg y; wire [3:0] v;
    assign v = 4'b1010;
    always @(a or b) begin
      if (a == b) y = v[1]; else y = !b;
    end
  endmodule
)";

std::string mutate(const std::string& src, interop::base::Rng& rng) {
  std::string out = src;
  int edits = 1 + int(rng.index(4));
  for (int e = 0; e < edits; ++e) {
    if (out.empty()) break;
    std::size_t pos = rng.index(out.size());
    switch (rng.index(3)) {
      case 0: out.erase(pos, 1 + rng.index(5)); break;
      case 1: out.insert(pos, std::string(1, char(33 + rng.index(90)))); break;
      default: out[pos] = char(33 + rng.index(90)); break;
    }
  }
  return out;
}

class ParserFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserFuzz, MutatedVerilogNeverCrashes) {
  interop::base::Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    std::string src = mutate(kValidVerilog, rng);
    try {
      interop::hdl::SourceUnit unit = interop::hdl::parse(src);
      // If it happens to still parse, elaboration must also be safe.
      if (!unit.modules.empty()) {
        try {
          interop::hdl::elaborate(unit, unit.modules[0].name);
        } catch (const interop::hdl::ElabError&) {
        }
      }
    } catch (const interop::hdl::ParseError&) {
      // expected for most mutations
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Values(1, 2, 3, 4));

class AlFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AlFuzz, MutatedSexprsNeverCrash) {
  const std::string valid =
      "(define (f x) (if (< x 2) 1 (* x (f (- x 1))))) (f 6)";
  interop::base::Rng rng(GetParam());
  for (int i = 0; i < 300; ++i) {
    std::string src = mutate(valid, rng);
    try {
      interop::al::Interpreter interp;
      interp.set_step_limit(20000);
      interp.eval_source(src);
    } catch (const interop::al::AlError&) {
      // expected
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlFuzz, ::testing::Values(5, 6, 7));

class SchFileFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchFileFuzz, MutatedDesignFilesNeverCrash) {
  using namespace interop::sch;
  // A small but representative design file.
  Design d(viewlogic_dialect().grid);
  add_source_library(d, "top", {{"PA", {0, 2}, PinDir::Input}});
  Schematic sch;
  sch.cell = "top";
  Sheet sheet;
  sheet.number = 1;
  Instance inst;
  inst.name = "U1";
  inst.symbol = {"vl_lib", "vl_inv", "sym"};
  sheet.instances.push_back(inst);
  sheet.wires.push_back({{0, 2}, {8, 2}});
  sheet.labels.push_back({"n", {8, 2}, {}});
  sch.sheets.push_back(sheet);
  d.add_schematic(sch);
  const std::string valid = write_design(d);

  interop::base::Rng rng(GetParam());
  for (int i = 0; i < 150; ++i) {
    std::string src = mutate(valid, rng);
    interop::base::DiagnosticEngine diags;
    try {
      read_design(src, diags);
    } catch (const std::exception&) {
      // reader rejects with typed errors
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchFileFuzz, ::testing::Values(8, 9));

}  // namespace
