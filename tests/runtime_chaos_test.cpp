// Seed-sweep chaos harness for the fault-tolerant flow runtime: the same
// workflow is executed under many fault-injection seeds crossed with
// {serial, 2, 4} worker pools, and every run must converge to the byte-
// identical final data-manager state of a fault-free run, with a journal
// whose per-step attempt records are internally consistent. Also covers
// scheduled (exact-count) faults, hang/timeout cancellation, retry-budget
// exhaustion, and the kill-mid-run + resume_run() crash-recovery path.
//
// CI smoke runs narrow the sweep with INTEROP_CHAOS_SEEDS /
// INTEROP_CHAOS_SEED0 (see .github/workflows/ci.yml).

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/rng.hpp"
#include "obs/trace.hpp"
#include "runtime/executor.hpp"
#include "runtime/fault.hpp"
#include "runtime/hash.hpp"
#include "runtime/retry.hpp"
#include "workflow/engine.hpp"

namespace interop::runtime {
namespace {

// INTEROP_CHAOS_TRACE=<path>: arm a trace session for the entire chaos
// sweep and write the Chrome trace there at teardown. CI uses this to
// validate (trace_check) and upload the trace artifact of the smoke run.
class ChaosTraceEnvironment : public ::testing::Environment {
 public:
  void SetUp() override {
    const char* path = std::getenv("INTEROP_CHAOS_TRACE");
    if (!path || !*path) return;
    path_ = path;
    session_ = std::make_unique<obs::TraceSession>();
    session_->arm();
  }
  void TearDown() override {
    if (!session_) return;
    session_->disarm();
    std::ofstream out(path_);
    session_->write_chrome_json(out);
    std::cerr << "chaos trace written to " << path_ << "\n";
  }

 private:
  std::string path_;
  std::unique_ptr<obs::TraceSession> session_;
};

const ::testing::Environment* const kChaosTraceEnv =
    ::testing::AddGlobalTestEnvironment(new ChaosTraceEnvironment);

using wf::ActionApi;
using wf::ActionLanguage;
using wf::ActionResult;
using wf::Engine;
using wf::FlowTemplate;
using wf::SimpleDataManager;
using wf::StepDef;
using wf::StepState;

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return (v && *v) ? std::atoi(v) : fallback;
}

// Layered random DAG (same shape as runtime_test.cpp): `layers` x `width`
// steps, each deriving its output purely from its inputs, so every
// successful run lands on the same bytes no matter how it got there.
FlowTemplate make_layered(int layers, int width, std::uint64_t seed) {
  interop::base::Rng rng(seed);
  FlowTemplate flow;
  flow.name = "layered";
  for (int l = 0; l < layers; ++l) {
    for (int w = 0; w < width; ++w) {
      std::string name = "s" + std::to_string(l) + "_" + std::to_string(w);
      StepDef step;
      step.name = name;
      step.writes = {name + ".out"};
      if (l > 0) {
        int deps = 1 + int(rng.index(2));
        for (int d = 0; d < deps; ++d) {
          std::string parent = "s" + std::to_string(l - 1) + "_" +
                               std::to_string(rng.index(std::size_t(width)));
          if (std::find(step.start_after.begin(), step.start_after.end(),
                        parent) == step.start_after.end()) {
            step.start_after.push_back(parent);
            step.reads.push_back(parent + ".out");
          }
        }
      } else {
        step.reads = {"inputs.dat"};
      }
      std::string artifact = name + ".out";
      std::vector<std::string> reads = step.reads;
      step.action = {name, ActionLanguage::Native,
                     [artifact, reads](ActionApi& api) {
                       std::string content;
                       for (const std::string& r : reads)
                         content += api.read_data(r).value_or("?");
                       api.write_data(artifact, to_hex(fnv1a(content)) + "+");
                       return ActionResult{0, ""};
                     }};
      flow.steps.push_back(std::move(step));
    }
  }
  return flow;
}

std::map<std::string, std::string> snapshot(wf::DataManager& data) {
  std::map<std::string, std::string> out;
  for (const std::string& path : data.list()) out[path] = *data.read(path);
  return out;
}

std::map<std::string, std::string> fault_free_reference(
    const FlowTemplate& flow) {
  Engine serial(flow, {}, std::make_unique<SimpleDataManager>());
  serial.data().write("inputs.dat", "v1");
  EXPECT_EQ(serial.instantiate({}), "");
  serial.run_all();
  EXPECT_TRUE(serial.complete());
  return snapshot(serial.data());
}

/// Per-step journal consistency: attempts numbered 1..n with only the last
/// one ok, fault-stamped records never ok, and every step completed.
void check_journal_consistency(const RunJournal& journal,
                               const std::set<std::string>& steps) {
  for (const std::string& step : steps) {
    std::vector<JournalEntry> recs = journal.attempts_for(step);
    ASSERT_FALSE(recs.empty()) << step << " never journaled";
    for (std::size_t i = 0; i < recs.size(); ++i) {
      EXPECT_EQ(recs[i].attempt, int(i) + 1)
          << step << ": attempts must be journaled 1..n in order";
      if (!recs[i].fault.empty())
        EXPECT_FALSE(recs[i].ok)
            << step << ": a fault-stamped attempt can never be ok";
      if (i + 1 < recs.size())
        EXPECT_FALSE(recs[i].ok)
            << step << ": only the final attempt may succeed";
    }
    EXPECT_TRUE(recs.back().ok) << step << " must converge";
  }
  std::vector<std::string> complete = journal.completed_steps();
  EXPECT_EQ(std::set<std::string>(complete.begin(), complete.end()), steps);
}

TEST(RuntimeChaos, SweepConvergesToFaultFreeStateAcrossSeedsAndWorkers) {
  const int seeds = env_int("INTEROP_CHAOS_SEEDS", 20);
  const int seed0 = env_int("INTEROP_CHAOS_SEED0", 1);
  const FlowTemplate flow = make_layered(4, 4, /*seed=*/7);
  const auto reference = fault_free_reference(flow);
  std::set<std::string> step_names;
  for (const StepDef& s : flow.steps) step_names.insert(s.name);

  for (int s = 0; s < seeds; ++s) {
    std::uint64_t chaos_seed = std::uint64_t(seed0 + s);
    // Fault decisions are a pure function of (seed, step, attempt), so for
    // one seed every worker count must retry the same steps the same
    // number of times — recorded here and compared across pool sizes.
    std::map<std::string, int> attempts_by_step;

    for (int workers : {1, 2, 4}) {
      FaultPlan plan;
      plan.probability = 0.25;
      plan.kinds = {FaultKind::Fail, FaultKind::Hang, FaultKind::TornWrite};
      plan.max_faults_per_step = 2;

      ExecutorOptions options;
      options.workers = workers;
      options.retry.max_attempts = 4;  // > max_faults_per_step: converges
      options.retry.backoff_base_us = 1000;
      options.step_timeout_us = 50'000;

      ParallelExecutor par(flow, {}, std::make_unique<SimpleDataManager>(),
                           options);
      par.set_clock(std::make_shared<SimClock>());
      par.set_fault_injector(
          std::make_shared<FaultInjector>(chaos_seed, plan));
      par.engine().data().write("inputs.dat", "v1");
      ASSERT_EQ(par.instantiate({}), "");

      RunStats stats = par.run();
      ASSERT_TRUE(par.complete())
          << "seed " << chaos_seed << " workers " << workers << ": "
          << stats.error;
      EXPECT_EQ(snapshot(par.engine().data()), reference)
          << "seed " << chaos_seed << " workers " << workers
          << ": final state must be byte-identical to the fault-free run";
      EXPECT_EQ(stats.failures, 0);
      EXPECT_EQ(stats.executed, int(flow.steps.size()));
      EXPECT_EQ(stats.attempts, stats.executed + stats.retries);
      // Every injected fault fails exactly one attempt, and the budget
      // (max_attempts > max_faults_per_step) retries every one of them.
      EXPECT_EQ(stats.retries, stats.faults_injected);
      check_journal_consistency(par.journal(), step_names);

      for (const std::string& step : step_names) {
        int n = int(par.journal().attempts_for(step).size());
        auto [it, inserted] = attempts_by_step.emplace(step, n);
        if (!inserted)
          EXPECT_EQ(it->second, n)
              << "seed " << chaos_seed << " workers " << workers << " step "
              << step << ": attempt counts must not depend on pool size";
      }
    }
  }
}

TEST(RuntimeChaos, ScheduledFaultsYieldExactRetryCounts) {
  const FlowTemplate flow = make_layered(2, 2, /*seed=*/3);
  const auto reference = fault_free_reference(flow);

  FaultPlan plan;  // schedule only, no probabilistic faults
  plan.schedule[{"s0_0", 1}] = FaultKind::Fail;
  plan.schedule[{"s1_0", 1}] = FaultKind::TornWrite;
  plan.schedule[{"s1_0", 2}] = FaultKind::Fail;

  ExecutorOptions options;
  options.workers = 2;
  options.retry.max_attempts = 4;
  ParallelExecutor par(flow, {}, std::make_unique<SimpleDataManager>(),
                       options);
  par.set_clock(std::make_shared<SimClock>());
  auto injector = std::make_shared<FaultInjector>(1, plan);
  par.set_fault_injector(injector);
  par.engine().data().write("inputs.dat", "v1");
  ASSERT_EQ(par.instantiate({}), "");

  RunStats stats = par.run();
  ASSERT_TRUE(par.complete()) << stats.error;
  EXPECT_EQ(snapshot(par.engine().data()), reference);
  EXPECT_EQ(stats.retries, 3);
  EXPECT_EQ(stats.faults_injected, 3);
  EXPECT_EQ(stats.attempts, int(flow.steps.size()) + 3);
  EXPECT_EQ(injector->counts().fails, 2);
  EXPECT_EQ(injector->counts().torn_writes, 1);

  auto s00 = par.journal().attempts_for("s0_0");
  ASSERT_EQ(s00.size(), 2u);
  EXPECT_EQ(s00[0].fault, "fail");
  EXPECT_FALSE(s00[0].ok);
  EXPECT_TRUE(s00[1].ok);

  auto s10 = par.journal().attempts_for("s1_0");
  ASSERT_EQ(s10.size(), 3u);
  EXPECT_EQ(s10[0].fault, "torn_write");
  EXPECT_EQ(s10[1].fault, "fail");
  EXPECT_TRUE(s10[2].ok);

  // The engine saw the retried-in-place attempts without a Failed state.
  EXPECT_EQ(par.engine().metrics().failed_attempts, 3);
  EXPECT_EQ(par.engine().instance().find("s1_0")->failed_attempts, 2);
  EXPECT_EQ(par.engine().instance().find("s1_0")->failures, 0);
}

TEST(RuntimeChaos, HangIsCancelledAtStepTimeoutAndRetried) {
  const FlowTemplate flow = make_layered(2, 2, /*seed=*/3);
  const auto reference = fault_free_reference(flow);

  FaultPlan plan;
  plan.schedule[{"s0_1", 1}] = FaultKind::Hang;

  ExecutorOptions options;
  options.workers = 2;
  options.retry.max_attempts = 3;
  options.step_timeout_us = 20'000;
  ParallelExecutor par(flow, {}, std::make_unique<SimpleDataManager>(),
                       options);
  auto clock = std::make_shared<SimClock>();
  par.set_clock(clock);
  par.set_fault_injector(std::make_shared<FaultInjector>(1, plan));
  par.engine().data().write("inputs.dat", "v1");
  ASSERT_EQ(par.instantiate({}), "");

  RunStats stats = par.run();
  ASSERT_TRUE(par.complete()) << stats.error;
  EXPECT_EQ(snapshot(par.engine().data()), reference);
  EXPECT_EQ(stats.timeouts, 1);
  EXPECT_EQ(stats.retries, 1);

  auto recs = par.journal().attempts_for("s0_1");
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].fault, "hang");
  EXPECT_TRUE(recs[0].timed_out);
  EXPECT_FALSE(recs[0].ok);
  EXPECT_TRUE(recs[1].ok);
  // The hang burned at least the step timeout on the simulated clock.
  EXPECT_GE(recs[0].end_us - recs[0].start_us, 20'000u);
}

TEST(RuntimeChaos, RetryBudgetExhaustionFailsTheStep) {
  const FlowTemplate flow = make_layered(2, 2, /*seed=*/3);

  FaultPlan plan;
  plan.schedule[{"s0_0", 1}] = FaultKind::Fail;
  plan.schedule[{"s0_0", 2}] = FaultKind::Fail;

  ExecutorOptions options;
  options.workers = 2;
  options.retry.max_attempts = 2;  // < faults scheduled: must fail
  ParallelExecutor par(flow, {}, std::make_unique<SimpleDataManager>(),
                       options);
  par.set_clock(std::make_shared<SimClock>());
  par.set_fault_injector(std::make_shared<FaultInjector>(1, plan));
  par.engine().data().write("inputs.dat", "v1");
  ASSERT_EQ(par.instantiate({}), "");

  RunStats stats = par.run();
  EXPECT_FALSE(par.complete());
  EXPECT_EQ(stats.failures, 1);
  EXPECT_EQ(stats.retries, 1);
  EXPECT_EQ(par.engine().status_report().at("s0_0"), StepState::Failed);
  auto recs = par.journal().attempts_for("s0_0");
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_FALSE(recs.back().ok);
}

TEST(RuntimeChaos, DisabledRetryClassesAreHonored) {
  const FlowTemplate flow = make_layered(2, 2, /*seed=*/3);

  FaultPlan plan;
  plan.schedule[{"s0_0", 1}] = FaultKind::Fail;

  ExecutorOptions options;
  options.workers = 1;
  options.retry.max_attempts = 4;
  options.retry.retry_failures = false;  // classification gate
  ParallelExecutor par(flow, {}, std::make_unique<SimpleDataManager>(),
                       options);
  par.set_clock(std::make_shared<SimClock>());
  par.set_fault_injector(std::make_shared<FaultInjector>(1, plan));
  par.engine().data().write("inputs.dat", "v1");
  ASSERT_EQ(par.instantiate({}), "");

  RunStats stats = par.run();
  EXPECT_FALSE(par.complete());
  EXPECT_EQ(stats.retries, 0);
  EXPECT_EQ(stats.failures, 1);
  ASSERT_EQ(par.journal().attempts_for("s0_0").size(), 1u);
}

TEST(RuntimeChaos, KillMidRunThenResumeExecutesOnlyLostWork) {
  const FlowTemplate base = make_layered(4, 4, /*seed=*/7);
  const auto reference = fault_free_reference(base);
  const std::size_t total = base.steps.size();

  // Wrap one mid-flow step so its action "pulls the plug" (request_stop)
  // right after finishing — the cooperative analogue of kill -9 between
  // two journal records.
  ParallelExecutor* live = nullptr;
  FlowTemplate flow = base;
  for (StepDef& step : flow.steps) {
    if (step.name != "s2_0") continue;
    wf::Action inner = step.action;
    step.action = {inner.name, inner.language,
                   [inner, &live](ActionApi& api) {
                     ActionResult r = inner.fn(api);
                     live->request_stop();
                     return r;
                   }};
  }

  auto cache = std::make_shared<ResultCache>();
  ExecutorOptions options;
  options.workers = 2;
  ParallelExecutor killed(flow, {}, std::make_unique<SimpleDataManager>(),
                          options, cache);
  live = &killed;
  killed.set_clock(std::make_shared<SimClock>());
  killed.engine().data().write("inputs.dat", "v1");
  ASSERT_EQ(killed.instantiate({}), "");

  RunStats first = killed.run();
  EXPECT_TRUE(first.stopped);
  ASSERT_FALSE(killed.complete()) << "stop must interrupt the run";
  std::vector<std::string> done = killed.journal().completed_steps();
  ASSERT_FALSE(done.empty());
  ASSERT_LT(done.size(), total);

  // Persist the journal across the "crash" and reload it, as a restarted
  // process would.
  std::stringstream disk;
  killed.journal().save(disk);
  RunJournal recovered;
  ASSERT_TRUE(recovered.load(disk));
  ASSERT_EQ(recovered.completed_steps(), done);
  ASSERT_EQ(recovered.entries().size(), killed.journal().entries().size());

  // A fresh executor (fresh instance, fresh data store) sharing the result
  // cache resumes: journaled-complete steps replay, lost work re-executes.
  ParallelExecutor resumed(base, {}, std::make_unique<SimpleDataManager>(),
                           options, cache);
  resumed.set_clock(std::make_shared<SimClock>());
  resumed.engine().data().write("inputs.dat", "v1");
  ASSERT_EQ(resumed.instantiate({}), "");

  RunStats second = resumed.resume_run(recovered);
  ASSERT_TRUE(resumed.complete()) << second.error;
  EXPECT_EQ(snapshot(resumed.engine().data()), reference);
  EXPECT_EQ(second.resumed, int(done.size()))
      << "every journaled-complete step must replay, not re-execute";
  EXPECT_EQ(second.executed, int(total - done.size()))
      << "only lost work may re-execute";
  EXPECT_EQ(second.cache_hits + second.executed, int(total));

  // The resumed run's journal marks exactly the recovered steps.
  std::set<std::string> prior(done.begin(), done.end());
  for (const JournalEntry& e : resumed.journal().entries()) {
    EXPECT_EQ(e.resumed, prior.count(e.step) > 0) << e.step;
    if (prior.count(e.step)) EXPECT_TRUE(e.cache_hit) << e.step;
  }
}

TEST(RuntimeChaos, JournalSaveLoadRoundTripsAwkwardNames) {
  RunJournal journal;
  journal.set_clock(std::make_shared<SimClock>());
  journal.begin_run(3);
  JournalEntry e;
  e.step = "weird\tname\nwith\\escapes\"";
  e.worker = 2;
  e.attempt = 4;
  e.start_us = 10;
  e.end_us = 90;
  e.cache_hit = false;
  e.ok = false;
  e.rerun = true;
  e.timed_out = true;
  e.resumed = true;
  e.fault = "torn_write";
  e.has_key = true;
  e.key = 0xdeadbeefcafe1234ull;
  journal.record(e);
  journal.end_run();

  std::stringstream disk;
  journal.save(disk);
  RunJournal loaded;
  ASSERT_TRUE(loaded.load(disk));
  std::vector<JournalEntry> entries = loaded.entries();
  ASSERT_EQ(entries.size(), 1u);
  const JournalEntry& r = entries[0];
  EXPECT_EQ(r.step, e.step);
  EXPECT_EQ(r.worker, e.worker);
  EXPECT_EQ(r.attempt, e.attempt);
  EXPECT_EQ(r.start_us, e.start_us);
  EXPECT_EQ(r.end_us, e.end_us);
  EXPECT_EQ(r.ok, e.ok);
  EXPECT_EQ(r.rerun, e.rerun);
  EXPECT_EQ(r.timed_out, e.timed_out);
  EXPECT_EQ(r.resumed, e.resumed);
  EXPECT_EQ(r.fault, e.fault);
  EXPECT_EQ(r.has_key, e.has_key);
  EXPECT_EQ(r.key, e.key);
  EXPECT_EQ(loaded.workers(), 3);

  std::stringstream garbage("not-a-journal\tv9\n");
  RunJournal bad;
  EXPECT_FALSE(bad.load(garbage));
}

// ------------------------- journal load hardening (fail-soft semantics)

namespace {

/// A valid 3-entry journal for one step, attempts 1..3, as saved text.
std::string well_formed_journal() {
  RunJournal journal;
  journal.set_clock(std::make_shared<SimClock>());
  journal.begin_run(2);
  for (int a = 1; a <= 3; ++a) {
    JournalEntry e;
    e.step = "step";
    e.worker = 0;
    e.attempt = a;
    e.start_us = std::uint64_t(a) * 10;
    e.end_us = std::uint64_t(a) * 10 + 5;
    e.ok = a == 3;
    journal.record(e);
  }
  journal.end_run();
  std::stringstream disk;
  journal.save(disk);
  return disk.str();
}

}  // namespace

TEST(RuntimeChaos, JournalLoadKeepsValidPrefixWhenFinalLineIsTorn) {
  std::string text = well_formed_journal();
  // Tear the last line mid-write, as a kill -9 during save would.
  std::size_t cut = text.rfind('\t');
  std::stringstream torn(text.substr(0, cut));
  RunJournal loaded;
  ASSERT_TRUE(loaded.load(torn)) << "a torn tail must not void the journal";
  EXPECT_EQ(loaded.entries().size(), 2u) << "the valid prefix survives";
  EXPECT_EQ(loaded.load_dropped_lines(), 1u);
  EXPECT_EQ(loaded.entries().back().attempt, 2);
  EXPECT_TRUE(loaded.completed_steps().empty())
      << "the torn success marker must not count as completed";
}

TEST(RuntimeChaos, JournalLoadStopsAtGarbageLineAndDropsTheSuffix) {
  std::string text = well_formed_journal();
  // Splice a garbage line between entry 1 and entry 2: everything from
  // the corruption on is untrusted, even though later lines parse.
  std::size_t first_nl = text.find('\n');
  std::size_t second_nl = text.find('\n', first_nl + 1);
  std::string spliced = text.substr(0, second_nl + 1) +
                        "n\xc3\xb8t\ta\tjournal\tline\n" +
                        text.substr(second_nl + 1);
  std::stringstream disk(spliced);
  RunJournal loaded;
  ASSERT_TRUE(loaded.load(disk));
  EXPECT_EQ(loaded.entries().size(), 1u);
  EXPECT_EQ(loaded.load_dropped_lines(), 3u)
      << "the garbage line and both orphaned entries drop";
}

TEST(RuntimeChaos, JournalLoadSkipsDoubledLinesAndKeepsTheRest) {
  std::string text = well_formed_journal();
  // Double the middle entry line (a flaky-filesystem double write).
  std::size_t first_nl = text.find('\n');
  std::size_t second_nl = text.find('\n', first_nl + 1);
  std::size_t third_nl = text.find('\n', second_nl + 1);
  std::string line2 =
      text.substr(second_nl + 1, third_nl - second_nl);
  std::string doubled = text.substr(0, third_nl + 1) + line2 +
                        text.substr(third_nl + 1);
  std::stringstream disk(doubled);
  RunJournal loaded;
  ASSERT_TRUE(loaded.load(disk));
  EXPECT_EQ(loaded.entries().size(), 3u)
      << "a byte-identical doubled line is noise, not corruption";
  EXPECT_EQ(loaded.load_dropped_lines(), 1u);
  EXPECT_EQ(loaded.entries()[2].attempt, 3);
  EXPECT_EQ(loaded.completed_steps(), std::vector<std::string>{"step"});
}

TEST(RuntimeChaos, JournalLoadRejectsSplicedAttemptNumbers) {
  std::string text = well_formed_journal();
  // Duplicate the attempt-2 line AFTER attempt 3 (a non-adjacent splice):
  // attempt 2 after attempt 3 is neither a fresh claim nor a successor.
  std::size_t first_nl = text.find('\n');
  std::size_t second_nl = text.find('\n', first_nl + 1);
  std::size_t third_nl = text.find('\n', second_nl + 1);
  std::string line2 =
      text.substr(second_nl + 1, third_nl - second_nl);
  std::stringstream disk(text + line2);
  RunJournal loaded;
  ASSERT_TRUE(loaded.load(disk));
  EXPECT_EQ(loaded.entries().size(), 3u);
  EXPECT_EQ(loaded.load_dropped_lines(), 1u)
      << "the spliced duplicate-step line must drop";
  // The intact prefix still resolves completion correctly.
  EXPECT_EQ(loaded.completed_steps(), std::vector<std::string>{"step"});
}

TEST(RuntimeChaos, JournalLoadFailsCleanlyOnBadHeader) {
  for (const char* header :
       {"", "interop-journal\tv2\t2\t0\n", "interop-journal\tv1\tx\ty\n",
        "interop-journal\tv1\t2\n"}) {
    std::stringstream disk(header);
    RunJournal loaded;
    EXPECT_FALSE(loaded.load(disk)) << "header: " << header;
    EXPECT_TRUE(loaded.entries().empty());
  }
}

TEST(RuntimeChaos, InjectorDecisionsArePureInSeedStepAttempt) {
  FaultPlan plan;
  plan.probability = 0.5;
  plan.kinds = {FaultKind::Fail, FaultKind::Hang, FaultKind::TornWrite};
  plan.max_faults_per_step = 3;

  FaultInjector a(42, plan);
  FaultInjector b(42, plan);
  FaultInjector c(43, plan);
  bool any_differs = false;
  for (int step = 0; step < 32; ++step) {
    std::string name = "step" + std::to_string(step);
    for (int attempt = 1; attempt <= 4; ++attempt) {
      FaultKind lhs = a.decide(name, attempt, /*hangs_ok=*/true);
      // Same seed: identical decisions regardless of query order or count.
      EXPECT_EQ(lhs, b.decide(name, attempt, true)) << name << attempt;
      if (lhs != c.decide(name, attempt, true)) any_differs = true;
      // hangs_ok=false may only downgrade Hang to Fail.
      FaultKind no_hang = FaultInjector(42, plan).decide(name, attempt, false);
      if (lhs == FaultKind::Hang)
        EXPECT_EQ(no_hang, FaultKind::Fail);
      else
        EXPECT_EQ(no_hang, lhs);
    }
  }
  EXPECT_TRUE(any_differs) << "different seeds must differ somewhere";
  EXPECT_GT(a.counts().total(), 0);

  // Attempts past max_faults_per_step are always clean: the convergence
  // guarantee behind retry.max_attempts > max_faults_per_step.
  for (int step = 0; step < 32; ++step)
    EXPECT_EQ(a.decide("step" + std::to_string(step), 4, true),
              FaultKind::None);
}

}  // namespace
}  // namespace interop::runtime
