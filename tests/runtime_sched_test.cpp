// Scheduler-specific tests for the batched/work-stealing parallel runtime:
//
//  - Differential goldens: a batched run (max_batch = 16, the default) must
//    land on the byte-identical final data-manager state, identical
//    ResultCache contents, and identical per-step journal attempt records
//    as the legacy per-step scheduler (max_batch = 1), across chaos seeds
//    crossed with {1, 2, 4} worker pools.
//  - Work stealing: skewed step costs on a wide frontier with 8 workers
//    must record steals and still converge to the serial reference.
//  - Serial fast path: a scheduling-bound chain of cheap steps must take
//    the whole-frontier fast path once the online cost model warms up.
//  - Watchdog: the event-driven watchdog must not poll (wakeup count stays
//    tiny across a long armed run) yet must still cancel a wedged action at
//    the real-clock deadline.
//
// Suites are named Sched* so the TSan CI job's -R regex picks them up.

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "base/rng.hpp"
#include "runtime/executor.hpp"
#include "runtime/fault.hpp"
#include "runtime/hash.hpp"
#include "workflow/engine.hpp"

namespace interop::runtime {
namespace {

using wf::ActionApi;
using wf::ActionLanguage;
using wf::ActionResult;
using wf::Engine;
using wf::FlowTemplate;
using wf::SimpleDataManager;
using wf::StepDef;

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return (v && *v) ? std::atoi(v) : fallback;
}

/// Layered random DAG (same shape as the chaos sweep): every step derives
/// its output purely from its inputs, so every correct schedule lands on
/// the same bytes.
FlowTemplate make_layered(int layers, int width, std::uint64_t seed) {
  interop::base::Rng rng(seed);
  FlowTemplate flow;
  flow.name = "layered";
  for (int l = 0; l < layers; ++l) {
    for (int w = 0; w < width; ++w) {
      std::string name = "s" + std::to_string(l) + "_" + std::to_string(w);
      StepDef step;
      step.name = name;
      step.writes = {name + ".out"};
      if (l > 0) {
        int deps = 1 + int(rng.index(2));
        for (int d = 0; d < deps; ++d) {
          std::string parent = "s" + std::to_string(l - 1) + "_" +
                               std::to_string(rng.index(std::size_t(width)));
          if (std::find(step.start_after.begin(), step.start_after.end(),
                        parent) == step.start_after.end()) {
            step.start_after.push_back(parent);
            step.reads.push_back(parent + ".out");
          }
        }
      } else {
        step.reads = {"inputs.dat"};
      }
      std::string artifact = name + ".out";
      std::vector<std::string> reads = step.reads;
      step.action = {name, ActionLanguage::Native,
                     [artifact, reads](ActionApi& api) {
                       std::string content;
                       for (const std::string& r : reads)
                         content += api.read_data(r).value_or("?");
                       api.write_data(artifact, to_hex(fnv1a(content)) + "+");
                       return ActionResult{0, ""};
                     }};
      flow.steps.push_back(std::move(step));
    }
  }
  return flow;
}

std::map<std::string, std::string> snapshot(wf::DataManager& data) {
  std::map<std::string, std::string> out;
  for (const std::string& path : data.list()) out[path] = *data.read(path);
  return out;
}

/// The journal facts that must not depend on how steps were batched:
/// per-step attempt sequence (ordinal, outcome, fault, rerun, content key)
/// — everything except worker ids, batch ids, and timing. The timed_out
/// flag is timing too: an injected Hang elsewhere advances the shared
/// SimClock past every armed deadline at once, so whether an instant
/// failing attempt is *also* stamped timed-out depends on when the
/// watchdog sweeps, not on the scheduler (both retry classes are enabled,
/// so the classification cannot diverge either way).
struct AttemptFact {
  int attempt;
  bool ok;
  bool rerun;
  bool cache_hit;
  std::string fault;
  std::uint64_t key;
  bool operator==(const AttemptFact& o) const {
    return attempt == o.attempt && ok == o.ok && rerun == o.rerun &&
           cache_hit == o.cache_hit && fault == o.fault && key == o.key;
  }
};

struct RunOutcome {
  RunStats stats;
  std::map<std::string, std::string> data;
  std::map<std::uint64_t, CacheEntry> cache;
  std::map<std::string, std::vector<AttemptFact>> attempts;
};

RunOutcome run_config(const FlowTemplate& flow, int workers, int max_batch,
                      std::uint64_t fault_seed) {
  ExecutorOptions options;
  options.workers = workers;
  options.max_batch = max_batch;
  if (fault_seed != 0) {
    options.retry.max_attempts = 4;
    options.retry.backoff_base_us = 1000;
    options.step_timeout_us = 50'000;
  }
  ParallelExecutor par(flow, {}, std::make_unique<SimpleDataManager>(),
                       options);
  par.set_clock(std::make_shared<SimClock>());
  if (fault_seed != 0) {
    FaultPlan plan;
    plan.probability = 0.25;
    plan.kinds = {FaultKind::Fail, FaultKind::Hang, FaultKind::TornWrite};
    plan.max_faults_per_step = 2;
    par.set_fault_injector(std::make_shared<FaultInjector>(fault_seed, plan));
  }
  par.engine().data().write("inputs.dat", "v1");
  EXPECT_EQ(par.instantiate({}), "");

  RunOutcome out;
  out.stats = par.run();
  EXPECT_TRUE(par.complete()) << "workers " << workers << " max_batch "
                              << max_batch << " seed " << fault_seed << ": "
                              << out.stats.error;
  out.data = snapshot(par.engine().data());
  for (const auto& [key, entry] : par.cache()->snapshot())
    out.cache.emplace(key, *entry);
  for (const StepDef& step : flow.steps) {
    std::vector<AttemptFact>& facts = out.attempts[step.name];
    for (const JournalEntry& e : par.journal().attempts_for(step.name))
      facts.push_back({e.attempt, e.ok, e.rerun, e.cache_hit, e.fault,
                       e.has_key ? e.key : 0});
  }
  return out;
}

void expect_equivalent(const RunOutcome& batched, const RunOutcome& legacy,
                       const std::string& label) {
  EXPECT_EQ(batched.data, legacy.data)
      << label << ": final data-manager state must be byte-identical";
  ASSERT_EQ(batched.cache.size(), legacy.cache.size()) << label;
  for (const auto& [key, entry] : batched.cache) {
    auto it = legacy.cache.find(key);
    ASSERT_NE(it, legacy.cache.end())
        << label << ": cache key " << to_hex(key) << " only in batched run";
    EXPECT_EQ(entry.outputs, it->second.outputs) << label << " " << to_hex(key);
    EXPECT_EQ(entry.variables, it->second.variables)
        << label << " " << to_hex(key);
    EXPECT_EQ(entry.log, it->second.log) << label << " " << to_hex(key);
  }
  ASSERT_EQ(batched.attempts.size(), legacy.attempts.size()) << label;
  for (const auto& [step, facts] : batched.attempts) {
    auto it = legacy.attempts.find(step);
    ASSERT_NE(it, legacy.attempts.end()) << label << " " << step;
    EXPECT_EQ(facts, it->second)
        << label << " " << step
        << ": journal attempt records must not depend on batching";
  }
  EXPECT_EQ(batched.stats.executed, legacy.stats.executed) << label;
  EXPECT_EQ(batched.stats.retries, legacy.stats.retries) << label;
  EXPECT_EQ(batched.stats.failures, legacy.stats.failures) << label;
}

TEST(SchedDifferential, BatchedMatchesUnbatchedAcrossSeedsAndWorkers) {
  const int seeds = env_int("INTEROP_SCHED_SEEDS", 6);
  const FlowTemplate flow = make_layered(4, 4, /*seed=*/7);

  // fault_seed 0 = fault-free; the rest drive the chaos injector.
  std::vector<std::uint64_t> fault_seeds{0};
  for (int s = 1; s < seeds; ++s) fault_seeds.push_back(std::uint64_t(s));

  for (std::uint64_t fault_seed : fault_seeds) {
    for (int workers : {1, 2, 4}) {
      RunOutcome batched = run_config(flow, workers, /*max_batch=*/16,
                                      fault_seed);
      RunOutcome legacy = run_config(flow, workers, /*max_batch=*/1,
                                     fault_seed);
      std::string label = "seed " + std::to_string(fault_seed) + " workers " +
                          std::to_string(workers);
      expect_equivalent(batched, legacy, label);
      // max_batch = 1 promises strictly per-step claims: no coalescing, no
      // whole-frontier fast path.
      EXPECT_EQ(legacy.stats.fastpath, 0) << label;
      EXPECT_EQ(legacy.stats.batches,
                legacy.stats.executed + legacy.stats.cache_hits)
          << label << ": every legacy batch must hold exactly one step";
      EXPECT_LE(batched.stats.batches, legacy.stats.batches) << label;
    }
  }
}

TEST(SchedStealing, SkewedCostsRecordStealsAndMatchSerial) {
  // One source, then a wide frontier of very skewed tool latencies: the
  // claiming worker ends up with a deque full of batches while 7 peers sit
  // idle — they must steal, and the result must match the serial engine.
  const int kWidth = 24;
  FlowTemplate flow;
  flow.name = "skewed";
  StepDef src;
  src.name = "src";
  src.writes = {"src.out"};
  src.action = {"src", ActionLanguage::Native, [](ActionApi& api) {
                  api.write_data("src.out", "seed");
                  return ActionResult{0, ""};
                }};
  flow.steps.push_back(src);
  for (int i = 0; i < kWidth; ++i) {
    std::string name = "w" + std::to_string(i);
    StepDef step;
    step.name = name;
    step.start_after = {"src"};
    step.reads = {"src.out"};
    step.writes = {name + ".out"};
    int latency_us = (i % 4 == 0) ? 3000 : 200;  // skew: 15x spread
    step.action = {name, ActionLanguage::Native,
                   [name, latency_us](ActionApi& api) {
                     std::string in = api.read_data("src.out").value_or("?");
                     std::this_thread::sleep_for(
                         std::chrono::microseconds(latency_us));
                     api.write_data(name + ".out",
                                    to_hex(fnv1a(in + name)) + "+");
                     return ActionResult{0, ""};
                   }};
    flow.steps.push_back(std::move(step));
  }

  Engine serial(flow, {}, std::make_unique<SimpleDataManager>());
  ASSERT_EQ(serial.instantiate({}), "");
  serial.run_all();
  ASSERT_TRUE(serial.complete());
  const auto reference = snapshot(serial.data());

  ExecutorOptions options;
  options.workers = 8;
  ParallelExecutor par(flow, {}, std::make_unique<SimpleDataManager>(),
                       options);
  ASSERT_EQ(par.instantiate({}), "");
  RunStats stats = par.run();
  ASSERT_TRUE(par.complete()) << stats.error;
  EXPECT_EQ(snapshot(par.engine().data()), reference);
  EXPECT_GT(stats.steals, 0)
      << "8 workers against a 24-wide frontier formed on one deque must "
         "steal";
  EXPECT_EQ(stats.executed, kWidth + 1);
}

TEST(SchedFastpath, CheapChainTakesWholeFrontierFastPath) {
  // A pure bookkeeping chain: after the first step seeds the cost model,
  // every subsequent single-step frontier is sub-threshold with nothing in
  // flight, so the scheduler should stay on the serial fast path instead of
  // bouncing each step through the pool.
  const int kChain = 60;
  FlowTemplate flow;
  flow.name = "chain";
  for (int i = 0; i < kChain; ++i) {
    std::string name = "c" + std::to_string(i);
    StepDef step;
    step.name = name;
    step.writes = {name + ".out"};
    std::string read = i > 0 ? "c" + std::to_string(i - 1) + ".out"
                             : std::string();
    if (i > 0) {
      step.start_after = {"c" + std::to_string(i - 1)};
      step.reads = {read};
    }
    step.action = {name, ActionLanguage::Native,
                   [name, read](ActionApi& api) {
                     std::string in =
                         read.empty() ? "seed" : api.read_data(read).value_or("?");
                     api.write_data(name + ".out", to_hex(fnv1a(in)) + "+");
                     return ActionResult{0, ""};
                   }};
    flow.steps.push_back(std::move(step));
  }

  ExecutorOptions options;
  options.workers = 4;
  // Pin the batchable-cost bound: under sanitizers or heavy CI load a
  // "free" step can exceed the 32 µs auto-cap, which would make this test
  // hostage to machine speed. The fast path itself is what's under test.
  options.batch_threshold_us = 20'000;
  ParallelExecutor par(flow, {}, std::make_unique<SimpleDataManager>(),
                       options);
  ASSERT_EQ(par.instantiate({}), "");
  RunStats stats = par.run();
  ASSERT_TRUE(par.complete()) << stats.error;
  EXPECT_GT(stats.fastpath, 0)
      << "a warm cheap chain must use the serial fast path";
  EXPECT_EQ(stats.executed, kChain);
}

TEST(SchedWatchdog, ArmedIdleWatchdogDoesNotPoll) {
  // Three 30 ms tool steps with a 10 s timeout: the watchdog is armed the
  // whole ~90 ms run but has nothing to do. The old implementation polled
  // every 1 ms (~90 wakeups here, ~1000/s in general); the event-driven
  // one wakes only on arm notifications plus the final stop.
  FlowTemplate flow;
  flow.name = "slow_chain";
  for (int i = 0; i < 3; ++i) {
    std::string name = "t" + std::to_string(i);
    StepDef step;
    step.name = name;
    if (i > 0) step.start_after = {"t" + std::to_string(i - 1)};
    step.writes = {name + ".out"};
    step.action = {name, ActionLanguage::Native, [name](ActionApi& api) {
                     std::this_thread::sleep_for(
                         std::chrono::milliseconds(30));
                     api.write_data(name + ".out", "done");
                     return ActionResult{0, ""};
                   }};
    flow.steps.push_back(std::move(step));
  }

  ExecutorOptions options;
  options.workers = 2;
  options.step_timeout_us = 10'000'000;
  ParallelExecutor par(flow, {}, std::make_unique<SimpleDataManager>(),
                       options);
  ASSERT_EQ(par.instantiate({}), "");
  RunStats stats = par.run();
  ASSERT_TRUE(par.complete()) << stats.error;
  EXPECT_EQ(stats.timeouts, 0);
  EXPECT_GT(par.watchdog_wakeups(), 0u) << "the watchdog ran and was armed";
  EXPECT_LE(par.watchdog_wakeups(), 20u)
      << "an idle armed watchdog must sleep on the earliest deadline, not "
         "poll";
}

TEST(SchedWatchdog, DisabledTimeoutSpawnsNoWatchdog) {
  FlowTemplate flow;
  StepDef step;
  step.name = "one";
  step.writes = {"one.out"};
  step.action = {"one", ActionLanguage::Native, [](ActionApi& api) {
                   api.write_data("one.out", "x");
                   return ActionResult{0, ""};
                 }};
  flow.name = "tiny";
  flow.steps.push_back(std::move(step));
  ParallelExecutor par(flow, {}, std::make_unique<SimpleDataManager>());
  ASSERT_EQ(par.instantiate({}), "");
  par.run();
  EXPECT_EQ(par.watchdog_wakeups(), 0u);
}

TEST(SchedWatchdog, RealClockDeadlineCancelsPollingAction) {
  // A wedged-but-cooperative action: it polls cancel_requested() for up to
  // 2 s. The event-driven watchdog must fire at the 30 ms real-clock
  // deadline and cancel it — proving deadline sleeps actually expire and
  // are not lost by the disarm-without-notify optimization.
  std::atomic<bool> saw_cancel{false};
  FlowTemplate flow;
  flow.name = "wedged";
  StepDef step;
  step.name = "wedge";
  step.writes = {"wedge.out"};
  step.action = {"wedge", ActionLanguage::Native,
                 [&saw_cancel](ActionApi& api) {
                   for (int i = 0; i < 2000; ++i) {
                     if (api.cancel_requested()) {
                       saw_cancel.store(true);
                       return ActionResult{124, "cancelled"};
                     }
                     std::this_thread::sleep_for(
                         std::chrono::milliseconds(1));
                   }
                   return ActionResult{0, "never cancelled"};
                 }};
  flow.steps.push_back(std::move(step));

  ExecutorOptions options;
  options.workers = 2;
  options.step_timeout_us = 30'000;
  ParallelExecutor par(flow, {}, std::make_unique<SimpleDataManager>(),
                       options);
  ASSERT_EQ(par.instantiate({}), "");

  auto t0 = std::chrono::steady_clock::now();
  RunStats stats = par.run();
  auto elapsed = std::chrono::steady_clock::now() - t0;

  EXPECT_TRUE(saw_cancel.load());
  EXPECT_FALSE(par.complete());
  EXPECT_EQ(stats.timeouts, 1);
  EXPECT_EQ(stats.failures, 1);
  auto recs = par.journal().attempts_for("wedge");
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_TRUE(recs[0].timed_out);
  EXPECT_FALSE(recs[0].ok);
  EXPECT_LT(elapsed, std::chrono::seconds(1))
      << "the watchdog must cancel at ~30 ms, far before the 2 s wedge";
}

}  // namespace
}  // namespace interop::runtime
