// The parallel flow runtime: determinism vs the serial engine, content-
// addressed memoization, the run journal, livelock detection, and a
// ThreadSanitizer-friendly many-worker stress test (see the "tsan" preset
// in CMakePresets.json, which runs exactly the Runtime* tests).

#include <atomic>
#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "base/rng.hpp"
#include "runtime/cache.hpp"
#include "runtime/executor.hpp"
#include "runtime/hash.hpp"
#include "workflow/engine.hpp"

namespace interop::runtime {
namespace {

using wf::ActionApi;
using wf::ActionLanguage;
using wf::ActionResult;
using wf::Engine;
using wf::FlowTemplate;
using wf::SimpleDataManager;
using wf::StepDef;
using wf::StepState;

// Diamond: seed -> (left, right) -> join. Every action derives its output
// from its inputs, so serial and parallel runs must agree byte-for-byte.
FlowTemplate make_diamond(std::atomic<int>* executions = nullptr) {
  auto act = [executions](std::string out, std::vector<std::string> reads) {
    return wf::Action{
        out, ActionLanguage::Native,
        [executions, out, reads](ActionApi& api) {
          if (executions) executions->fetch_add(1);
          std::string content = out + ":";
          for (const std::string& r : reads)
            content += api.read_data(r).value_or("?") + "|";
          api.write_data(out, content);
          return ActionResult{0, "wrote " + out};
        }};
  };
  FlowTemplate flow;
  flow.name = "diamond";
  flow.steps = {
      {"seed", act("seed.dat", {}), {}, {}, {}, {"seed.dat"}, "", "", ""},
      {"left", act("left.dat", {"seed.dat"}), {"seed"}, {}, {"seed.dat"},
       {"left.dat"}, "", "", ""},
      {"right", act("right.dat", {"seed.dat"}), {"seed"}, {}, {"seed.dat"},
       {"right.dat"}, "", "", ""},
      {"join", act("join.dat", {"left.dat", "right.dat"}), {"left", "right"},
       {}, {"left.dat", "right.dat"}, {"join.dat"}, "", "", ""}};
  return flow;
}

// Layered random DAG in the shape of the T8 workload: `layers` x `width`
// steps, each reading 1-2 producers from the previous layer.
FlowTemplate make_layered(int layers, int width, std::uint64_t seed,
                          int spin_us = 0) {
  interop::base::Rng rng(seed);
  FlowTemplate flow;
  flow.name = "layered";
  for (int l = 0; l < layers; ++l) {
    for (int w = 0; w < width; ++w) {
      std::string name = "s" + std::to_string(l) + "_" + std::to_string(w);
      std::string artifact = name + ".out";
      StepDef step;
      step.name = name;
      step.writes = {artifact};
      if (l > 0) {
        int deps = 1 + int(rng.index(2));
        for (int d = 0; d < deps; ++d) {
          std::string parent = "s" + std::to_string(l - 1) + "_" +
                               std::to_string(rng.index(std::size_t(width)));
          if (std::find(step.start_after.begin(), step.start_after.end(),
                        parent) == step.start_after.end()) {
            step.start_after.push_back(parent);
            step.reads.push_back(parent + ".out");
          }
        }
      } else {
        step.reads = {"inputs.dat"};
      }
      std::vector<std::string> reads = step.reads;
      step.action = {name, ActionLanguage::Native,
                     [artifact, reads, spin_us](ActionApi& api) {
                       std::string content;
                       for (const std::string& r : reads)
                         content += api.read_data(r).value_or("?");
                       if (spin_us > 0)
                         std::this_thread::sleep_for(
                             std::chrono::microseconds(spin_us));
                       api.write_data(artifact,
                                      to_hex(fnv1a(content)) + "+");
                       return ActionResult{0, ""};
                     }};
      flow.steps.push_back(std::move(step));
    }
  }
  return flow;
}

std::map<std::string, std::string> snapshot(wf::DataManager& data) {
  std::map<std::string, std::string> out;
  for (const std::string& path : data.list()) out[path] = *data.read(path);
  return out;
}

TEST(RuntimeExecutor, ParallelMatchesSerialOnDiamond) {
  Engine serial(make_diamond(), {}, std::make_unique<SimpleDataManager>());
  ASSERT_EQ(serial.instantiate({}), "");
  EXPECT_EQ(serial.run_all(), 4);
  ASSERT_TRUE(serial.complete());

  ParallelExecutor par(make_diamond(), {},
                       std::make_unique<SimpleDataManager>(), {.workers = 4});
  ASSERT_EQ(par.instantiate({}), "");
  RunStats stats = par.run();
  EXPECT_TRUE(par.complete()) << stats.error;
  EXPECT_EQ(stats.executed, 4);
  EXPECT_EQ(stats.failures, 0);
  EXPECT_EQ(snapshot(par.engine().data()), snapshot(serial.data()));
}

TEST(RuntimeExecutor, WarmCacheExecutesZeroActions) {
  std::atomic<int> executions{0};
  auto cache = std::make_shared<ResultCache>();

  ParallelExecutor cold(make_diamond(&executions), {},
                        std::make_unique<SimpleDataManager>(), {.workers = 4},
                        cache);
  ASSERT_EQ(cold.instantiate({}), "");
  RunStats first = cold.run();
  EXPECT_EQ(first.executed, 4);
  EXPECT_EQ(first.cache_hits, 0);
  EXPECT_EQ(executions.load(), 4);
  ASSERT_TRUE(cold.complete());

  // A fresh instance over a fresh store, same cache: everything replays.
  ParallelExecutor warm(make_diamond(&executions), {},
                        std::make_unique<SimpleDataManager>(), {.workers = 4},
                        cache);
  ASSERT_EQ(warm.instantiate({}), "");
  RunStats second = warm.run();
  EXPECT_EQ(second.executed, 0);
  EXPECT_EQ(second.cache_hits, 4);
  EXPECT_EQ(executions.load(), 4) << "warm run must execute zero actions";
  EXPECT_TRUE(warm.complete());
  EXPECT_EQ(snapshot(warm.engine().data()), snapshot(cold.engine().data()));
}

TEST(RuntimeExecutor, CacheInvalidatedByChangedInput) {
  auto cache = std::make_shared<ResultCache>();
  FlowTemplate flow = make_diamond();

  ParallelExecutor first(flow, {}, std::make_unique<SimpleDataManager>(),
                         {.workers = 2}, cache);
  ASSERT_EQ(first.instantiate({}), "");
  first.run();

  // Re-run over the same live store after an upstream edit: the triggers
  // mark the readers NeedsRerun, and their changed inputs miss the cache.
  first.engine().data().write("seed.dat", "edited");
  RunStats rerun = first.run();
  EXPECT_TRUE(first.complete());
  EXPECT_GE(rerun.executed, 2);  // left and right recompute
  EXPECT_NE(*first.engine().data().read("left.dat"),
            std::string("left.dat:seed.dat:|"));
}

TEST(RuntimeExecutor, FailurePropagatesLikeSerial) {
  FlowTemplate flow;
  flow.name = "f";
  flow.steps = {
      {"boom",
       {"boom", ActionLanguage::Native,
        [](ActionApi&) { return ActionResult{2, "exploded"}; }},
       {}, {}, {}, {}, "", "", ""},
      {"after",
       {"after", ActionLanguage::Native,
        [](ActionApi&) { return ActionResult{0, ""}; }},
       {"boom"}, {}, {}, {}, "", "", ""}};
  ParallelExecutor par(flow, {}, std::make_unique<SimpleDataManager>(),
                       {.workers = 4});
  ASSERT_EQ(par.instantiate({}), "");
  RunStats stats = par.run();
  EXPECT_EQ(stats.failures, 1);
  EXPECT_FALSE(par.complete());
  EXPECT_EQ(par.engine().status_report().at("boom"), StepState::Failed);
  EXPECT_EQ(par.engine().status_report().at("after"), StepState::Waiting);
}

TEST(RuntimeExecutor, StressManyWorkersDeterministic) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    FlowTemplate flow = make_layered(6, 8, seed, /*spin_us=*/50);

    Engine serial(flow, {}, std::make_unique<SimpleDataManager>());
    serial.data().write("inputs.dat", "v1");
    ASSERT_EQ(serial.instantiate({}), "");
    serial.run_all();
    ASSERT_TRUE(serial.complete());

    ParallelExecutor par(flow, {}, std::make_unique<SimpleDataManager>(),
                         {.workers = 8});
    par.engine().data().write("inputs.dat", "v1");
    ASSERT_EQ(par.instantiate({}), "");
    RunStats stats = par.run();
    ASSERT_TRUE(par.complete()) << stats.error;
    EXPECT_EQ(stats.executed, 48);
    EXPECT_EQ(snapshot(par.engine().data()), snapshot(serial.data()));

    // Mid-life upstream change: triggers + parallel rework, then nothing
    // may be stale (the T8 invariant).
    par.engine().data().write("inputs.dat", "v2");
    par.run();
    ASSERT_TRUE(par.complete());
    for (const auto& [name, status] : par.engine().instance().steps)
      for (const std::string& path : status.def.reads) {
        auto t = par.engine().data().timestamp(path);
        if (t) {
          EXPECT_LE(*t, status.last_finished) << name;
        }
      }
  }
}

TEST(RuntimeExecutor, LivelockDetectedInParallelRun) {
  // ping writes a.dat and reads b.dat; pong reads a.dat and writes b.dat:
  // each success marks the other NeedsRerun, forever.
  FlowTemplate flow;
  flow.name = "osc";
  flow.steps = {
      {"ping",
       {"ping", ActionLanguage::Native,
        [](ActionApi& api) {
          api.write_data("a.dat", api.read_data("b.dat").value_or("") + "p");
          return ActionResult{0, ""};
        }},
       {}, {}, {"b.dat"}, {"a.dat"}, "", "", ""},
      {"pong",
       {"pong", ActionLanguage::Native,
        [](ActionApi& api) {
          api.write_data("b.dat", api.read_data("a.dat").value_or("") + "q");
          return ActionResult{0, ""};
        }},
       {}, {}, {"a.dat"}, {"b.dat"}, "", "", ""}};
  ParallelExecutor par(flow, {}, std::make_unique<SimpleDataManager>(),
                       {.workers = 2, .livelock_limit = 6},
                       /*cache=*/nullptr);
  ASSERT_EQ(par.instantiate({}), "");
  RunStats stats = par.run();
  EXPECT_TRUE(stats.livelock);
  EXPECT_NE(stats.error.find("livelock"), std::string::npos);
}

TEST(RuntimeCache, KeyTracksInputContentAndIdentity) {
  SimpleDataManager data;
  data.write("in.dat", "v1");
  StepDef step;
  step.name = "synth";
  step.action = {"synth", ActionLanguage::Native, {}};
  step.reads = {"in.dat"};
  step.writes = {"out.dat"};

  std::uint64_t k1 = step_content_key(step, data);
  EXPECT_EQ(step_content_key(step, data), k1) << "key must be stable";

  data.write("in.dat", "v2");
  std::uint64_t k2 = step_content_key(step, data);
  EXPECT_NE(k1, k2) << "changed input must change the key";

  data.write("in.dat", "v1");
  EXPECT_EQ(step_content_key(step, data), k1)
      << "key is content-addressed, not timestamp-addressed";

  StepDef tagged = step;
  tagged.content_tag = "synth@OtherTool";
  EXPECT_NE(step_content_key(tagged, data), k1)
      << "action identity is part of the key";
}

TEST(RuntimeCache, FifoEviction) {
  ResultCache cache(2);
  cache.store(1, {});
  cache.store(2, {});
  cache.store(3, {});
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.find(1), nullptr);
  EXPECT_NE(cache.find(3), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(RuntimeCache, OverwriteReplacesEntryCompletely) {
  // Regression: store() used to move `entry` into map::emplace (which may
  // consume its argument even when insertion fails) and then move it again
  // on the overwrite path, caching a moved-from, empty effect list.
  ResultCache cache;
  CacheEntry first;
  first.outputs = {{"a.dat", "v1"}};
  first.log = "first";
  cache.store(7, std::move(first));

  CacheEntry second;
  second.outputs = {{"a.dat", "v2"}, {"b.dat", "x"}};
  second.variables = {{"flag", "1"}};
  second.log = "second";
  cache.store(7, std::move(second));

  std::shared_ptr<const CacheEntry> entry = cache.find(7);
  ASSERT_NE(entry, nullptr);
  ASSERT_EQ(entry->outputs.size(), 2u)
      << "overwrite must replay the new effect list, not a moved-from one";
  EXPECT_EQ(entry->outputs[0].second, "v2");
  ASSERT_EQ(entry->variables.size(), 1u);
  EXPECT_EQ(entry->log, "second");
  EXPECT_EQ(cache.size(), 1u);
}

TEST(RuntimeCache, ClearResetsStats) {
  ResultCache cache;
  cache.store(1, {});
  cache.find(1);
  cache.find(2);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);

  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  ResultCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.stores, 0u);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(RuntimeJournal, RecordsAndCriticalPath) {
  ParallelExecutor par(make_diamond(), {},
                       std::make_unique<SimpleDataManager>(), {.workers = 2});
  ASSERT_EQ(par.instantiate({}), "");
  par.run();

  auto entries = par.journal().entries();
  ASSERT_EQ(entries.size(), 4u);
  for (const JournalEntry& e : entries) {
    EXPECT_TRUE(e.ok);
    EXPECT_GE(e.worker, 0);
    EXPECT_LE(e.start_us, e.end_us);
  }

  RunJournal::Summary s = par.journal().summary(par.engine().instance());
  EXPECT_EQ(s.executed, 4);
  // The diamond's longest chain is seed -> (left|right) -> join.
  ASSERT_EQ(s.critical_path.size(), 3u);
  EXPECT_EQ(s.critical_path.front(), "seed");
  EXPECT_EQ(s.critical_path.back(), "join");

  std::string json = par.journal().to_json(par.engine().instance());
  EXPECT_NE(json.find("\"workers\":2"), std::string::npos);
  EXPECT_NE(json.find("\"critical_path\""), std::string::npos);
  EXPECT_NE(json.find("\"step\":\"seed\""), std::string::npos);
}

TEST(RuntimeData, SynchronizedDataManagerForwardsAndNotifies) {
  wf::SynchronizedDataManager data(std::make_unique<SimpleDataManager>());
  int notified = 0;
  data.add_listener([&notified](const std::string&, wf::LogicalTime) {
    ++notified;
  });
  data.write("a", "1");
  data.write("b", "2");
  EXPECT_EQ(notified, 2);
  EXPECT_EQ(*data.read("a"), "1");
  EXPECT_EQ(data.list().size(), 2u);
  EXPECT_EQ(data.now(), *data.timestamp("b"));
}

TEST(RuntimeData, SynchronizedDataManagerConcurrentWriters) {
  wf::SynchronizedDataManager data(std::make_unique<SimpleDataManager>());
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&data, t] {
      for (int i = 0; i < 50; ++i)
        data.write("p" + std::to_string(t) + "_" + std::to_string(i), "x");
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(data.list().size(), 200u);
  EXPECT_EQ(data.now(), wf::LogicalTime(200));
}

TEST(RuntimeExecutor, WorksThroughSynchronizedDataManager) {
  ParallelExecutor par(
      make_diamond(), {},
      std::make_unique<wf::SynchronizedDataManager>(
          std::make_unique<SimpleDataManager>()),
      {.workers = 4});
  ASSERT_EQ(par.instantiate({}), "");
  RunStats stats = par.run();
  EXPECT_TRUE(par.complete()) << stats.error;
  EXPECT_EQ(stats.executed, 4);
}

}  // namespace
}  // namespace interop::runtime
