#include "schematic/busref.hpp"

#include <gtest/gtest.h>

namespace interop::sch {
namespace {

const Dialect kVl = viewlogic_dialect();
const Dialect kCd = composer_dialect();

TEST(BusRef, ParsesExplicitRange) {
  NetRef r = parse_net_ref("A<0:15>", kVl);
  EXPECT_EQ(r.base, "A");
  ASSERT_TRUE(r.range.has_value());
  EXPECT_EQ(r.range->first, 0);
  EXPECT_EQ(r.range->second, 15);
  EXPECT_EQ(r.width(), 16);
  EXPECT_EQ(r.bits().front(), 0);
  EXPECT_EQ(r.bits().back(), 15);
}

TEST(BusRef, ParsesDescendingRange) {
  NetRef r = parse_net_ref("D<7:4>", kCd);
  EXPECT_EQ(r.width(), 4);
  EXPECT_EQ(r.bits(), (std::vector<int>{7, 6, 5, 4}));
}

TEST(BusRef, ParsesSingleBit) {
  NetRef r = parse_net_ref("A<3>", kCd);
  EXPECT_EQ(r.base, "A");
  ASSERT_TRUE(r.bit.has_value());
  EXPECT_EQ(*r.bit, 3);
  EXPECT_FALSE(r.condensed);
}

// The paper's example: in Viewlogic "A0" is bit 0 of bus A<0:15>.
TEST(BusRef, CondensedNeedsKnownBus) {
  NetRef with = parse_net_ref("A0", kVl, {"A"});
  EXPECT_EQ(with.base, "A");
  EXPECT_EQ(with.bit, 0);
  EXPECT_TRUE(with.condensed);

  // Without a known bus A, "A0" is a scalar net named A0.
  NetRef without = parse_net_ref("A0", kVl);
  EXPECT_EQ(without.base, "A0");
  EXPECT_TRUE(without.is_scalar());
}

// In Composer, A0 is never equivalent to A<0>.
TEST(BusRef, CondensedDisabledInComposer) {
  NetRef r = parse_net_ref("A0", kCd, {"A"});
  EXPECT_EQ(r.base, "A0");
  EXPECT_TRUE(r.is_scalar());
}

TEST(BusRef, MultiDigitCondensed) {
  NetRef r = parse_net_ref("data12", kVl, {"data"});
  EXPECT_EQ(r.bit, 12);
}

// The paper's example: "myBus<0:15>-" carries a postfix indicator.
TEST(BusRef, PostfixIndicator) {
  NetRef r = parse_net_ref("myBus<0:15>-", kVl);
  EXPECT_EQ(r.base, "myBus");
  EXPECT_EQ(r.postfix, "-");
  ASSERT_TRUE(r.range.has_value());

  // Composer does not understand postfix syntax; it parses as part of the
  // name, which fails the <...> suffix check, so the whole text is a scalar.
  NetRef cd = parse_net_ref("myBus<0:15>-", kCd);
  EXPECT_TRUE(cd.is_scalar());
  EXPECT_EQ(cd.base, "myBus<0:15>-");
}

TEST(BusRef, FormatRoundTrip) {
  for (const char* text : {"clk", "A<3>", "D<0:7>", "ack-"}) {
    NetRef r = parse_net_ref(text, kVl);
    EXPECT_EQ(format_net_ref(r, kVl), text);
  }
}

TEST(BusRef, TranslateExpandsCondensed) {
  base::DiagnosticEngine diags;
  NetRef r = parse_net_ref("A0", kVl, {"A"});
  NetRef t = translate_net_ref(r, kVl, kCd, diags);
  EXPECT_EQ(format_net_ref(t, kCd), "A<0>");
  EXPECT_EQ(diags.count_code("bus-condensed-expanded"), 1u);
}

TEST(BusRef, TranslateFoldsPostfix) {
  base::DiagnosticEngine diags;
  NetRef r = parse_net_ref("myBus<0:15>-", kVl);
  NetRef t = translate_net_ref(r, kVl, kCd, diags);
  // Folded into the base name to keep it unique, per the paper.
  EXPECT_EQ(format_net_ref(t, kCd), "myBus_n<0:15>");
  EXPECT_EQ(diags.count_code("bus-postfix-folded"), 1u);

  // And the folded name cannot collide with the plain bus.
  NetRef plain = translate_net_ref(parse_net_ref("myBus<0:15>", kVl), kVl,
                                   kCd, diags);
  EXPECT_NE(format_net_ref(t, kCd), format_net_ref(plain, kCd));
}

TEST(BusRef, TranslateReplacesIllegalChars) {
  base::DiagnosticEngine diags;
  NetRef r = parse_net_ref("a.b", kVl);
  NetRef t = translate_net_ref(r, kVl, kCd, diags);
  EXPECT_EQ(t.base, "a_b");
  EXPECT_EQ(diags.count_code("name-char-replaced"), 1u);
}

TEST(BusRef, TranslateIsNoOpForCleanNames) {
  base::DiagnosticEngine diags;
  NetRef r = parse_net_ref("clk", kVl);
  NetRef t = translate_net_ref(r, kVl, kCd, diags);
  EXPECT_EQ(format_net_ref(t, kCd), "clk");
  EXPECT_TRUE(diags.all().empty());
}

TEST(BusRef, CanonicalBits) {
  EXPECT_EQ(canonical_bits(parse_net_ref("clk", kVl)),
            (std::vector<std::string>{"clk"}));
  EXPECT_EQ(canonical_bits(parse_net_ref("A<1:3>", kVl)),
            (std::vector<std::string>{"A[1]", "A[2]", "A[3]"}));
  // Postfix folds the same way translation does, so golden and migrated
  // netlists agree on canonical names.
  EXPECT_EQ(canonical_bits(parse_net_ref("ack-", kVl)),
            (std::vector<std::string>{"ack_n"}));
  // Condensed refs canonicalize to the same bit as explicit refs.
  EXPECT_EQ(canonical_bits(parse_net_ref("A0", kVl, {"A"})),
            canonical_bits(parse_net_ref("A<0>", kCd)));
}

class BusWidthSweep : public ::testing::TestWithParam<int> {};

TEST_P(BusWidthSweep, RangeWidthAndBitsAgree) {
  int w = GetParam();
  std::string text = "B<0:" + std::to_string(w - 1) + ">";
  NetRef r = parse_net_ref(text, kCd);
  EXPECT_EQ(r.width(), w);
  EXPECT_EQ(static_cast<int>(r.bits().size()), w);
  EXPECT_EQ(static_cast<int>(canonical_bits(r).size()), w);
}

INSTANTIATE_TEST_SUITE_P(Widths, BusWidthSweep,
                         ::testing::Values(1, 2, 8, 16, 64));

}  // namespace
}  // namespace interop::sch
