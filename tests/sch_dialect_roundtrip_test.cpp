// Property-based round-trip tests for the bus-reference algebra: random
// net references generated from base::Rng seeds must survive
// format -> parse within a dialect, and ViewlogicLike -> explicit-dialect
// translation must preserve per-bit connectivity (canonical_bits) while
// producing names the target dialect re-parses to the same reference.
// Includes the paper's condensed-bus edge case directly: "A0" and "A<0>"
// name the same bit of bus A.

#include <cctype>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/diagnostics.hpp"
#include "base/rng.hpp"
#include "schematic/busref.hpp"
#include "schematic/dialect.hpp"

namespace interop::sch {
namespace {

using base::DiagnosticEngine;
using base::Rng;

// Bus base names never end in a digit: a condensed reference "<base><bit>"
// is only reversible when the digits unambiguously belong to the bit. (A
// sheet that names a bus "ab3" makes "ab32" genuinely ambiguous — the
// exact trap §2 of the paper warns about, and one a generator must not
// step into.)
std::string bus_base(Rng& rng) {
  std::string name = "b_" + rng.identifier(2 + rng.index(4));
  if (std::isdigit(static_cast<unsigned char>(name.back()))) name += 'q';
  return name;
}

// Scalar nets live in a disjoint namespace ("n_..." vs "b_...") so that a
// scalar whose name happens to end in digits ("n_x3") can never collide
// with <known-bus><digits> and flip into a condensed bus bit.
std::string scalar_base(Rng& rng) {
  return "n_" + rng.identifier(2 + rng.index(4));
}

std::string random_postfix(Rng& rng) {
  std::string out;
  std::size_t n = rng.index(3);  // 0..2 indicator characters
  for (std::size_t i = 0; i < n; ++i) out += rng.chance(0.5) ? '-' : '+';
  return out;
}

/// A random reference legal in the Viewlogic-like dialect. Roughly a third
/// each: scalar, single-bit (condensed or explicit), range.
NetRef random_vl_ref(Rng& rng, const std::vector<std::string>& buses) {
  NetRef ref;
  switch (rng.index(3)) {
    case 0:
      ref.base = scalar_base(rng);
      break;
    case 1:
      ref.base = rng.pick(buses);
      ref.bit = int(rng.index(64));
      ref.condensed = rng.chance(0.5);
      break;
    default:
      ref.base = rng.pick(buses);
      ref.range = {int(rng.index(64)), int(rng.index(64))};
      break;
  }
  ref.postfix = random_postfix(rng);
  return ref;
}

TEST(SchDialectRoundTrip, ViewlogicFormatParseIsIdentity) {
  const Dialect vl = viewlogic_dialect();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    std::vector<std::string> buses;
    for (int i = 0; i < 8; ++i) buses.push_back(bus_base(rng));

    for (int i = 0; i < 200; ++i) {
      NetRef ref = random_vl_ref(rng, buses);
      std::string text = format_net_ref(ref, vl);
      NetRef back = parse_net_ref(text, vl, buses);
      EXPECT_EQ(back, ref) << "seed " << seed << " text '" << text << "'";
    }
  }
}

TEST(SchDialectRoundTrip, ComposerFormatParseIsIdentity) {
  const Dialect comp = composer_dialect();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    std::vector<std::string> buses;
    for (int i = 0; i < 8; ++i) buses.push_back(bus_base(rng));

    for (int i = 0; i < 200; ++i) {
      NetRef ref = random_vl_ref(rng, buses);
      ref.postfix.clear();     // not legal in Composer
      ref.condensed = false;   // must be explicit
      std::string text = format_net_ref(ref, comp);
      NetRef back = parse_net_ref(text, comp, buses);
      EXPECT_EQ(back, ref) << "seed " << seed << " text '" << text << "'";
    }
  }
}

TEST(SchDialectRoundTrip, TranslationPreservesConnectivity) {
  const Dialect vl = viewlogic_dialect();
  const Dialect comp = composer_dialect();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    std::vector<std::string> buses;
    for (int i = 0; i < 8; ++i) buses.push_back(bus_base(rng));

    for (int i = 0; i < 200; ++i) {
      NetRef ref = random_vl_ref(rng, buses);
      DiagnosticEngine diags;
      NetRef out = translate_net_ref(ref, vl, comp, diags);

      // The translated reference is legal in the target dialect...
      EXPECT_TRUE(out.postfix.empty());
      EXPECT_FALSE(out.condensed);
      // ...and names exactly the same bits (postfix folds to _n/_p, which
      // canonical_bits applies identically on the source side).
      EXPECT_EQ(canonical_bits(out), canonical_bits(ref))
          << "seed " << seed << ": translation changed connectivity of '"
          << format_net_ref(ref, vl) << "'";

      // Rendering it for Composer and re-parsing loses nothing.
      std::string text = format_net_ref(out, comp);
      EXPECT_EQ(parse_net_ref(text, comp, buses), out) << text;

      // Translating onward to Viewlogic is the identity: everything
      // Composer can say, Viewlogic can too.
      DiagnosticEngine back_diags;
      NetRef back = translate_net_ref(out, comp, vl, back_diags);
      EXPECT_EQ(back, out);
      EXPECT_EQ(back_diags.all().size(), 0u);
    }
  }
}

// The dialect pairs the original suite never exercised: self-translation
// within each dialect, and the full there-and-back-again composition.

TEST(SchDialectRoundTrip, ViewlogicSelfTranslationIsIdentity) {
  const Dialect vl = viewlogic_dialect();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    std::vector<std::string> buses;
    for (int i = 0; i < 8; ++i) buses.push_back(bus_base(rng));
    for (int i = 0; i < 200; ++i) {
      NetRef ref = random_vl_ref(rng, buses);
      DiagnosticEngine diags;
      // Same dialect on both sides: every feature of the reference is
      // legal in the target, so nothing may be adjusted or reported.
      EXPECT_EQ(translate_net_ref(ref, vl, vl, diags), ref)
          << format_net_ref(ref, vl);
      EXPECT_EQ(diags.all().size(), 0u);
    }
  }
}

TEST(SchDialectRoundTrip, ComposerSelfTranslationIsIdentity) {
  const Dialect comp = composer_dialect();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    std::vector<std::string> buses;
    for (int i = 0; i < 8; ++i) buses.push_back(bus_base(rng));
    for (int i = 0; i < 200; ++i) {
      NetRef ref = random_vl_ref(rng, buses);
      ref.postfix.clear();
      ref.condensed = false;
      DiagnosticEngine diags;
      EXPECT_EQ(translate_net_ref(ref, comp, comp, diags), ref)
          << format_net_ref(ref, comp);
      EXPECT_EQ(diags.all().size(), 0u);
    }
  }
}

TEST(SchDialectRoundTrip, TranslationIsIdempotent) {
  // Viewlogic -> Composer -> Viewlogic -> Composer: the second pass through
  // the lossy direction must be a no-op — postfix folding happens once.
  const Dialect vl = viewlogic_dialect();
  const Dialect comp = composer_dialect();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    std::vector<std::string> buses;
    for (int i = 0; i < 8; ++i) buses.push_back(bus_base(rng));
    for (int i = 0; i < 200; ++i) {
      NetRef ref = random_vl_ref(rng, buses);
      DiagnosticEngine d1, d2, d3;
      NetRef once = translate_net_ref(ref, vl, comp, d1);
      NetRef home = translate_net_ref(once, comp, vl, d2);
      NetRef twice = translate_net_ref(home, vl, comp, d3);
      EXPECT_EQ(twice, once) << format_net_ref(ref, vl);
      EXPECT_EQ(d3.all().size(), 0u)
          << "second translation reported an adjustment";
    }
  }
}

TEST(SchDialectRoundTrip, PostfixFoldingKeepsNamesDistinct) {
  // "ack", "ack-" and "ack+" are three different nets in Viewlogic; the
  // fold into the explicit dialect must keep all three distinct or the
  // migration silently merges nets (the §2 failure mode).
  const Dialect vl = viewlogic_dialect();
  const Dialect comp = composer_dialect();
  NetRef plain = parse_net_ref("ack", vl);
  NetRef minus = parse_net_ref("ack-", vl);
  NetRef plus = parse_net_ref("ack+", vl);
  ASSERT_EQ(minus.postfix, "-");
  ASSERT_EQ(plus.postfix, "+");

  DiagnosticEngine d1, d2, d3;
  std::string t_plain = format_net_ref(translate_net_ref(plain, vl, comp, d1), comp);
  std::string t_minus = format_net_ref(translate_net_ref(minus, vl, comp, d2), comp);
  std::string t_plus = format_net_ref(translate_net_ref(plus, vl, comp, d3), comp);
  EXPECT_NE(t_plain, t_minus);
  EXPECT_NE(t_plain, t_plus);
  EXPECT_NE(t_minus, t_plus);
}

TEST(SchDialectRoundTrip, TranslationPreservesRangeOrderAndWidth) {
  // Descending and ascending ranges denote different bit ORDERS; a
  // translator that normalizes direction would scramble bus taps.
  const Dialect vl = viewlogic_dialect();
  const Dialect comp = composer_dialect();
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    Rng rng(seed);
    for (int i = 0; i < 100; ++i) {
      NetRef ref;
      ref.base = bus_base(rng);
      ref.range = {int(rng.index(64)), int(rng.index(64))};
      DiagnosticEngine diags;
      NetRef out = translate_net_ref(ref, vl, comp, diags);
      EXPECT_EQ(out.width(), ref.width());
      EXPECT_EQ(out.bits(), ref.bits()) << format_net_ref(ref, vl);
    }
  }
}

TEST(SchDialectRoundTrip, CondensedA0EqualsExplicitA0) {
  const Dialect vl = viewlogic_dialect();
  const Dialect comp = composer_dialect();
  const std::vector<std::string> buses = {"A"};

  NetRef condensed = parse_net_ref("A0", vl, buses);
  NetRef explicit_ref = parse_net_ref("A<0>", vl, buses);
  ASSERT_TRUE(condensed.condensed);
  ASSERT_FALSE(explicit_ref.condensed);
  EXPECT_EQ(condensed.base, "A");
  EXPECT_EQ(condensed.bit, explicit_ref.bit);
  EXPECT_EQ(canonical_bits(condensed), canonical_bits(explicit_ref));

  // Both spell "A<0>" after translation to the explicit-only dialect, and
  // only the condensed one needed an adjustment note.
  DiagnosticEngine d1, d2;
  EXPECT_EQ(format_net_ref(translate_net_ref(condensed, vl, comp, d1), comp),
            "A<0>");
  EXPECT_EQ(format_net_ref(translate_net_ref(explicit_ref, vl, comp, d2), comp),
            "A<0>");
  EXPECT_EQ(d1.count_code("bus-condensed-expanded"), 1u);
  EXPECT_EQ(d2.count_code("bus-condensed-expanded"), 0u);

  // Without the bus on the sheet's known-bus list, "A0" is a scalar net
  // named "A0" — the ambiguity the paper warns about.
  NetRef scalar = parse_net_ref("A0", vl, {});
  EXPECT_TRUE(scalar.is_scalar());
  EXPECT_EQ(scalar.base, "A0");
}

}  // namespace
}  // namespace interop::sch
