// Edge cases and failure injection for the schematic migration pipeline:
// empty designs, unmapped symbols, missing targets, rotated placements,
// anonymous nets.

#include <gtest/gtest.h>

#include "schematic/generator.hpp"
#include "schematic/migrate.hpp"

namespace interop::sch {
namespace {

MigrationConfig standard_config() {
  MigrationConfig config;
  config.source = viewlogic_dialect();
  config.target = composer_dialect();
  config.symbol_map = make_standard_symbol_map();
  config.global_map = make_standard_global_map();
  config.property_rules = make_standard_property_rules();
  config.target_symbols = make_target_library();
  return config;
}

TEST(SchEdge, EmptyDesignMigratesCleanly) {
  Design empty(viewlogic_dialect().grid);
  interop::base::DiagnosticEngine diags;
  MigrationResult result = migrate_design(empty, standard_config(), diags);
  EXPECT_FALSE(diags.has_errors());
  EXPECT_EQ(result.report.sheets, 0u);
  EXPECT_TRUE(verify_migration(empty, result.design, standard_config(),
                               diags)
                  .empty());
}

TEST(SchEdge, DesignWithEmptySheetsMigrates) {
  Design design(viewlogic_dialect().grid);
  add_source_library(design, "top", {});
  Schematic sch;
  sch.cell = "top";
  sch.sheets.resize(3);
  for (int i = 0; i < 3; ++i) sch.sheets[std::size_t(i)].number = i + 1;
  design.add_schematic(sch);
  interop::base::DiagnosticEngine diags;
  MigrationResult result = migrate_design(design, standard_config(), diags);
  EXPECT_EQ(result.report.sheets, 3u);
  EXPECT_FALSE(diags.has_errors());
}

TEST(SchEdge, UnmappedSymbolPassesThroughAndVerifies) {
  Design design(viewlogic_dialect().grid);
  add_source_library(design, "top", {});
  // A custom symbol outside the replacement map.
  SymbolDef odd;
  odd.key = {"custom", "special", "sym"};
  odd.role = SymbolRole::Component;
  odd.body = Rect::from_xywh(0, 0, 4, 4);
  odd.pins = {{"P1", {0, 2}, PinDir::Inout}, {"P2", {4, 2}, PinDir::Inout}};
  odd.grid = viewlogic_dialect().grid;
  design.add_symbol(odd);

  Schematic sch;
  sch.cell = "top";
  Sheet sheet;
  sheet.number = 1;
  Instance inst;
  inst.name = "X1";
  inst.symbol = odd.key;
  inst.placement = Transform(base::Orient::R0, {10, 10});
  sheet.instances.push_back(inst);
  sheet.wires.push_back({{10, 12}, {4, 12}});
  sheet.labels.push_back({"n1", {4, 12}, {}});
  sch.sheets.push_back(sheet);
  design.add_schematic(sch);

  interop::base::DiagnosticEngine diags;
  MigrationResult result = migrate_design(design, standard_config(), diags);
  EXPECT_FALSE(diags.has_errors());
  // The symbol came along into the migrated library.
  EXPECT_NE(result.design.find_symbol(odd.key), nullptr);
  EXPECT_TRUE(verify_migration(design, result.design, standard_config(),
                               diags)
                  .empty());
}

TEST(SchEdge, MissingReplacementTargetReportsError) {
  GeneratorOptions opt;
  opt.seed = 3;
  Scenario sc = make_exar_scenario(opt);
  MigrationConfig broken = sc.config;
  broken.target_symbols.clear();  // library not installed
  interop::base::DiagnosticEngine diags;
  migrate_design(sc.source, broken, diags);
  EXPECT_GT(diags.count_code("replacement-symbol-missing"), 0u);
}

class RotatedPlacement : public ::testing::TestWithParam<base::Orient> {};

// Component replacement under every placement orientation: pins move with
// the rotation code; connectivity must survive.
TEST_P(RotatedPlacement, ReplacementPreservesConnectivity) {
  Design design(viewlogic_dialect().grid);
  add_source_library(design, "top", {});

  Schematic sch;
  sch.cell = "top";
  Sheet sheet;
  sheet.number = 1;
  Instance u1;
  u1.name = "U1";
  u1.symbol = {"vl_lib", "vl_inv", "sym"};
  u1.placement = Transform(GetParam(), {40, 40});
  sheet.instances.push_back(u1);

  const SymbolDef* def = design.find_symbol(u1.symbol);
  Point a = u1.placement.apply(def->find_pin("A")->pos);
  Point y = u1.placement.apply(def->find_pin("Y")->pos);
  // Stub wires straight off each pin (direction away from the other pin).
  Point a_far{a.x + (a.x <= y.x ? -6 : 6), a.y};
  Point y_far{y.x + (y.x <= a.x ? -6 : 6), y.y};
  if (a.x == y.x) {  // vertical orientation: stub vertically instead
    a_far = {a.x, a.y + (a.y <= y.y ? -6 : 6)};
    y_far = {y.x, y.y + (y.y <= a.y ? -6 : 6)};
  }
  sheet.wires.push_back({a, a_far});
  sheet.wires.push_back({y, y_far});
  sheet.labels.push_back({"in", a_far, {}});
  sheet.labels.push_back({"out", y_far, {}});
  sch.sheets.push_back(sheet);
  design.add_schematic(sch);

  interop::base::DiagnosticEngine diags;
  MigrationResult result = migrate_design(design, standard_config(), diags);
  EXPECT_FALSE(diags.has_errors()) << base::to_string(GetParam());
  auto diffs =
      verify_migration(design, result.design, standard_config(), diags);
  std::string detail;
  for (const auto& d : diffs) detail += d.net + " ";
  EXPECT_TRUE(diffs.empty()) << base::to_string(GetParam()) << ": " << detail;
}

INSTANTIATE_TEST_SUITE_P(AllOrients, RotatedPlacement,
                         ::testing::ValuesIn(base::kAllOrients));

TEST(SchEdge, AnonymousNetsSurviveMigration) {
  // Two components joined by an unlabeled wire: the net has no name on
  // either side, and the comparator matches it by connection signature.
  Design design(viewlogic_dialect().grid);
  add_source_library(design, "top", {});
  Schematic sch;
  sch.cell = "top";
  Sheet sheet;
  sheet.number = 1;
  Instance u1, u2;
  u1.name = "U1";
  u1.symbol = {"vl_lib", "vl_inv", "sym"};
  u1.placement = Transform(base::Orient::R0, {0, 0});
  u2.name = "U2";
  u2.symbol = {"vl_lib", "vl_inv", "sym"};
  u2.placement = Transform(base::Orient::R0, {20, 0});
  sheet.instances.push_back(u1);
  sheet.instances.push_back(u2);
  sheet.wires.push_back({{4, 2}, {20, 2}});  // U1.Y -> U2.A, no label
  sch.sheets.push_back(sheet);
  design.add_schematic(sch);

  interop::base::DiagnosticEngine diags;
  MigrationResult result = migrate_design(design, standard_config(), diags);
  auto diffs =
      verify_migration(design, result.design, standard_config(), diags);
  EXPECT_TRUE(diffs.empty());
}

TEST(SchEdge, RotationCodeInSymbolMapApplies) {
  // A replacement entry that rotates the new symbol by R180 relative to
  // the old placement, with an origin offset that keeps pins reachable.
  GeneratorOptions opt;
  opt.seed = 8;
  opt.sheets = 1;
  Scenario sc = make_exar_scenario(opt);
  MigrationConfig config = sc.config;
  // Rewrite the inverter entry with a rotation code.
  const SymbolMapEntry* base_entry =
      sc.config.symbol_map.find({"vl_lib", "vl_inv", "sym"});
  SymbolMapEntry rotated = *base_entry;
  rotated.rotation = base::Orient::R180;
  SymbolMap map = sc.config.symbol_map;
  map.add(rotated);
  config.symbol_map = map;

  interop::base::DiagnosticEngine diags;
  MigrationResult result = migrate_design(sc.source, config, diags);
  // Instances carry the composed orientation.
  bool saw_rotated = false;
  for (const auto& [cell, sch] : result.design.schematics())
    for (const Sheet& sheet : sch.sheets)
      for (const Instance& inst : sheet.instances)
        if (inst.symbol.cell == "cd_inv" &&
            inst.placement.orient() == base::Orient::R180)
          saw_rotated = true;
  EXPECT_TRUE(saw_rotated);
  // And connectivity still verifies: rip-up rerouted to the rotated pins.
  auto diffs = verify_migration(sc.source, result.design, config, diags);
  EXPECT_TRUE(diffs.empty());
}

}  // namespace
}  // namespace interop::sch
