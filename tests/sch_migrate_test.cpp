#include "schematic/migrate.hpp"

#include <gtest/gtest.h>

#include "schematic/generator.hpp"

namespace interop::sch {
namespace {

class MigrateScenario : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  GeneratorOptions options() {
    GeneratorOptions opt;
    opt.seed = GetParam();
    return opt;
  }
};

// The headline property: a full migration run verifies clean — the
// independent netlist comparison finds zero differences.
TEST_P(MigrateScenario, FullPipelineVerifiesClean) {
  Scenario sc = make_exar_scenario(options());
  base::DiagnosticEngine diags;
  MigrationResult result = migrate_design(sc.source, sc.config, diags);

  EXPECT_FALSE(diags.has_errors()) << [&] {
    std::ostringstream os;
    diags.print(os);
    return os.str();
  }();

  base::DiagnosticEngine vdiags;
  auto diffs = verify_migration(sc.source, result.design, sc.config, vdiags);
  std::string detail;
  for (const auto& d : diffs)
    detail += to_string(d.kind) + " " + d.net + ": " + d.detail + "\n";
  EXPECT_TRUE(diffs.empty()) << detail;

  // The report reflects real work.
  EXPECT_GT(result.report.ripup.instances_replaced, 0u);
  EXPECT_GT(result.report.hier_connectors_added, 0u);
  EXPECT_GT(result.report.offpage_connectors_added, 0u);
  EXPECT_GT(result.report.globals_replaced, 0u);
  EXPECT_GT(result.report.labels_translated, 0u);
  EXPECT_GT(result.report.texts_adjusted, 0u);
  EXPECT_GT(result.report.props.renamed, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MigrateScenario,
                         ::testing::Values(1, 2, 3, 17, 99));

// Each ablation drops one migration step; verification must then FAIL with
// the specific diff kind that step exists to prevent. This is the paper's
// point: every one of these conventions silently breaks connectivity.
TEST(MigrateAblation, WithoutOffPageConnectorsCrossPageNetsSplit) {
  GeneratorOptions opt;
  opt.seed = 11;
  Scenario sc = make_exar_scenario(opt);
  // Sabotage: pretend the target joins by name (so no connectors added)
  // but verify against the real Composer rules.
  MigrationConfig broken = sc.config;
  broken.target.requires_offpage_connectors = false;
  base::DiagnosticEngine diags;
  MigrationResult result = migrate_design(sc.source, broken, diags);
  auto diffs = verify_migration(sc.source, result.design, sc.config, diags);
  bool saw_missing = false;
  for (const auto& d : diffs)
    if (d.kind == NetlistDiff::Kind::MissingNet) saw_missing = true;
  EXPECT_TRUE(saw_missing);
}

TEST(MigrateAblation, WithoutHierConnectorsPortsVanish) {
  GeneratorOptions opt;
  opt.seed = 12;
  Scenario sc = make_exar_scenario(opt);
  MigrationConfig broken = sc.config;
  broken.target.requires_hier_connectors = false;
  base::DiagnosticEngine diags;
  MigrationResult result = migrate_design(sc.source, broken, diags);
  auto diffs = verify_migration(sc.source, result.design, sc.config, diags);
  bool saw_port = false;
  for (const auto& d : diffs)
    if (d.kind == NetlistDiff::Kind::PortChange) saw_port = true;
  EXPECT_TRUE(saw_port);
}

TEST(MigrateAblation, WithoutGlobalMapGlobalsAreLost) {
  GeneratorOptions opt;
  opt.seed = 13;
  Scenario sc = make_exar_scenario(opt);
  MigrationConfig broken = sc.config;
  broken.global_map = GlobalMap{};  // nothing mapped
  base::DiagnosticEngine diags;
  MigrationResult result = migrate_design(sc.source, broken, diags);
  EXPECT_GT(diags.count_code("global-unmapped"), 0u);
}

TEST(MigrateAblation, WithoutPinMapsConnectionsBreak) {
  GeneratorOptions opt;
  opt.seed = 14;
  Scenario sc = make_exar_scenario(opt);
  // Strip the pin maps: replacement keeps source pin names, which do not
  // exist on the target symbols.
  SymbolMap stripped;
  stripped.add({{"vl_lib", "vl_nand2", "sym"},
                {"cd_lib", "cd_nand2", "symbol"},
                {0, 0},
                base::Orient::R0,
                {}});
  stripped.add({{"vl_lib", "vl_inv", "sym"},
                {"cd_lib", "cd_inv", "symbol"},
                {0, 0},
                base::Orient::R0,
                {}});
  MigrationConfig broken = sc.config;
  broken.symbol_map = stripped;
  base::DiagnosticEngine diags;
  migrate_design(sc.source, broken, diags);
  EXPECT_GT(diags.count_code("pin-map-missing"), 0u);
}

TEST(MigrateScale, PhysicalRescaleSnapsOffGridPoints) {
  GeneratorOptions opt;
  opt.seed = 15;
  Scenario sc = make_exar_scenario(opt);
  MigrationConfig cfg = sc.config;
  cfg.scale_policy = ScalePolicy::PreservePhysicalSize;
  base::DiagnosticEngine diags;
  MigrationResult result = migrate_design(sc.source, cfg, diags);
  // 1/10" -> 1/16" is a factor 8/5: most odd coordinates land off-grid.
  EXPECT_GT(result.report.points_rescaled, 0u);
  EXPECT_GT(result.report.points_snapped, 0u);

  // Grid-unit preservation (Exar's choice) never snaps.
  MigrationResult clean = migrate_design(sc.source, sc.config, diags);
  EXPECT_EQ(clean.report.points_snapped, 0u);
}

TEST(MigrateProps, CallbackSplitsAnalogModel) {
  GeneratorOptions opt;
  opt.seed = 16;
  opt.analog_fraction = 1.0;  // every res/cap gets a model property
  Scenario sc = make_exar_scenario(opt);
  base::DiagnosticEngine diags;
  MigrationResult result = migrate_design(sc.source, sc.config, diags);
  EXPECT_GT(result.report.props.callbacks_run, 0u);

  // Find a migrated res/cap and check the model got split.
  bool checked = false;
  for (const auto& [cell, sch] : result.design.schematics()) {
    for (const Sheet& sheet : sch.sheets) {
      for (const Instance& inst : sheet.instances) {
        if (!inst.props.has("res") && !inst.props.has("cap")) continue;
        EXPECT_TRUE(inst.props.has("model"));
        std::string model = inst.props.get_text("model");
        EXPECT_TRUE(model == "rmod" || model == "cmod") << model;
        checked = true;
      }
    }
  }
  EXPECT_TRUE(checked);
}

TEST(MigrateProps, StandardRulesApply) {
  GeneratorOptions opt;
  opt.seed = 17;
  Scenario sc = make_exar_scenario(opt);
  base::DiagnosticEngine diags;
  MigrationResult result = migrate_design(sc.source, sc.config, diags);
  for (const auto& [cell, sch] : result.design.schematics()) {
    for (const Sheet& sheet : sch.sheets) {
      for (const Instance& inst : sheet.instances) {
        EXPECT_FALSE(inst.props.has("REFDES"));
        EXPECT_FALSE(inst.props.has("VL_INTERNAL"));
        if (inst.props.has("instName")) {
          EXPECT_TRUE(inst.props.has("lvsIgnore"));
        }
        if (inst.props.has("SPEED")) {
          EXPECT_EQ(inst.props.get_text("SPEED"), "FAST");
        }
      }
    }
  }
}

TEST(MigrateCosmetics, BaselineOffsetsCorrected) {
  GeneratorOptions opt;
  opt.seed = 18;
  Scenario sc = make_exar_scenario(opt);
  base::DiagnosticEngine diags;
  MigrationResult result = migrate_design(sc.source, sc.config, diags);
  // Target dialect has zero baseline offset; all migrated text must too,
  // with origins shifted to keep the visual baseline.
  for (const auto& [cell, sch] : result.design.schematics()) {
    for (const Sheet& sheet : sch.sheets) {
      for (const NetLabel& label : sheet.labels)
        EXPECT_EQ(label.visual.baseline_offset, 0);
      for (const Instance& inst : sheet.instances)
        for (const TextLabel& t : inst.attached_text)
          EXPECT_EQ(t.baseline_offset, 0);
    }
  }
}

TEST(MigrateBus, LabelsUseTargetSyntax) {
  GeneratorOptions opt;
  opt.seed = 19;
  Scenario sc = make_exar_scenario(opt);
  base::DiagnosticEngine diags;
  MigrationResult result = migrate_design(sc.source, sc.config, diags);
  for (const auto& [cell, sch] : result.design.schematics()) {
    for (const Sheet& sheet : sch.sheets) {
      for (const NetLabel& label : sheet.labels) {
        // No postfix indicators survive.
        EXPECT_EQ(label.text.find_last_of("-+"), std::string::npos)
            << label.text;
      }
    }
  }
  EXPECT_GT(diags.count_code("bus-postfix-folded"), 0u);
  EXPECT_GT(diags.count_code("bus-condensed-expanded"), 0u);
}

}  // namespace
}  // namespace interop::sch
