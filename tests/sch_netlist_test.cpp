#include "schematic/netlist.hpp"

#include <gtest/gtest.h>

#include "schematic/generator.hpp"

namespace interop::sch {
namespace {

// A tiny fixture: one inverter driving another through a labeled wire.
class NetlistFixture : public ::testing::Test {
 protected:
  NetlistFixture() : design(viewlogic_dialect().grid) {
    add_source_library(design, "top", {{"PA", {0, 2}, PinDir::Input}});
  }

  Instance make_inv(const std::string& name, Point at) {
    Instance inst;
    inst.name = name;
    inst.symbol = {"vl_lib", "vl_inv", "sym"};
    inst.placement = Transform(base::Orient::R0, at);
    return inst;
  }

  Design design;
  base::DiagnosticEngine diags;
};

TEST_F(NetlistFixture, WireConnectsTwoPins) {
  Schematic sch;
  sch.cell = "top";
  Sheet sheet;
  sheet.number = 1;
  // U1 at (0,0): pins A(0,2), Y(4,2).  U2 at (10,0): pins A(10,2), Y(14,2).
  sheet.instances.push_back(make_inv("U1", {0, 0}));
  sheet.instances.push_back(make_inv("U2", {10, 0}));
  sheet.wires.push_back({{4, 2}, {10, 2}});
  NetLabel l;
  l.text = "mid";
  l.at = {7, 2};
  sheet.labels.push_back(l);
  sch.sheets.push_back(sheet);

  Netlist nl = extract_netlist(design, sch, viewlogic_dialect(), diags);
  ASSERT_TRUE(nl.nets.count("mid"));
  const ExtractedNet& net = nl.nets.at("mid");
  EXPECT_EQ(net.connections.size(), 2u);
  EXPECT_TRUE(net.connections.count({"U1", "Y"}));
  EXPECT_TRUE(net.connections.count({"U2", "A"}));
  // Unwired pins become dangling notes.
  EXPECT_EQ(diags.count_code("dangling-pin"), 2u);
}

TEST_F(NetlistFixture, CrossingWithoutJunctionDoesNotConnect) {
  Schematic sch;
  sch.cell = "top";
  Sheet sheet;
  sheet.number = 1;
  sheet.wires.push_back({{0, 5}, {10, 5}});
  sheet.wires.push_back({{5, 0}, {5, 10}});
  NetLabel a{"h", {0, 5}, {}};
  NetLabel b{"v", {5, 0}, {}};
  sheet.labels.push_back(a);
  sheet.labels.push_back(b);
  sch.sheets.push_back(sheet);

  Netlist nl = extract_netlist(design, sch, viewlogic_dialect(), diags);
  EXPECT_TRUE(nl.nets.count("h"));
  EXPECT_TRUE(nl.nets.count("v"));  // two distinct nets
}

TEST_F(NetlistFixture, JunctionConnectsCrossing) {
  Schematic sch;
  sch.cell = "top";
  Sheet sheet;
  sheet.number = 1;
  sheet.wires.push_back({{0, 5}, {10, 5}});
  sheet.wires.push_back({{5, 0}, {5, 10}});
  sheet.junctions.push_back({5, 5});
  NetLabel a{"h", {0, 5}, {}};
  NetLabel b{"v", {5, 0}, {}};
  sheet.labels.push_back(a);
  sheet.labels.push_back(b);
  sch.sheets.push_back(sheet);

  Netlist nl = extract_netlist(design, sch, viewlogic_dialect(), diags);
  // One electrical net under two names: both names map to the same pin set,
  // and extraction merges the group under each label.
  ASSERT_TRUE(nl.nets.count("h"));
  ASSERT_TRUE(nl.nets.count("v"));
  EXPECT_EQ(Netlist::signature(nl.nets.at("h")),
            Netlist::signature(nl.nets.at("v")));
}

TEST_F(NetlistFixture, ImplicitOffPageJoinsInViewlogic) {
  Schematic sch;
  sch.cell = "top";
  for (int page = 1; page <= 2; ++page) {
    Sheet sheet;
    sheet.number = page;
    Instance inst = make_inv("U" + std::to_string(page), {0, 0});
    sheet.instances.push_back(inst);
    sheet.wires.push_back({{4, 2}, {8, 2}});
    NetLabel l{"shared", {8, 2}, {}};
    sheet.labels.push_back(l);
    sch.sheets.push_back(sheet);
  }

  Netlist vl = extract_netlist(design, sch, viewlogic_dialect(), diags);
  ASSERT_TRUE(vl.nets.count("shared"));
  EXPECT_EQ(vl.nets.at("shared").connections.size(), 2u);

  // Composer semantics: without off-page connectors the two pages hold two
  // DIFFERENT nets, page-scoped.
  Netlist cd = extract_netlist(design, sch, composer_dialect(), diags);
  EXPECT_FALSE(cd.nets.count("shared"));
  ASSERT_TRUE(cd.nets.count("shared@p1"));
  ASSERT_TRUE(cd.nets.count("shared@p2"));
  EXPECT_EQ(cd.nets.at("shared@p1").connections.size(), 1u);
}

TEST_F(NetlistFixture, OffPageConnectorJoinsInComposer) {
  Schematic sch;
  sch.cell = "top";
  for (int page = 1; page <= 2; ++page) {
    Sheet sheet;
    sheet.number = page;
    Instance inst = make_inv("U" + std::to_string(page), {0, 0});
    sheet.instances.push_back(inst);
    sheet.wires.push_back({{4, 2}, {8, 2}});
    NetLabel l{"shared", {8, 2}, {}};
    sheet.labels.push_back(l);
    // Explicit off-page connector at the wire end.
    Instance conn;
    conn.name = "OP" + std::to_string(page);
    conn.symbol = {"connectors", "offpage", "symbol"};
    conn.placement = Transform(base::Orient::R0, Point{8, 2} - Point{1, 0});
    conn.props.set("net", "shared");
    sheet.instances.push_back(conn);
    sch.sheets.push_back(sheet);
  }
  for (const SymbolDef& def : make_target_library()) design.add_symbol(def);

  Netlist cd = extract_netlist(design, sch, composer_dialect(), diags);
  ASSERT_TRUE(cd.nets.count("shared"));
  EXPECT_EQ(cd.nets.at("shared").connections.size(), 2u);
}

TEST_F(NetlistFixture, GlobalSymbolsJoinAcrossPages) {
  Schematic sch;
  sch.cell = "top";
  for (int page = 1; page <= 2; ++page) {
    Sheet sheet;
    sheet.number = page;
    Instance inst = make_inv("U" + std::to_string(page), {0, 0});
    sheet.instances.push_back(inst);
    // Tap VDD onto pin A at (0,2): global pin lands at (0,0).
    Instance tap;
    tap.name = "V" + std::to_string(page);
    tap.symbol = {"vl_lib", "vl_vdd", "sym"};
    tap.placement = Transform(base::Orient::R0, {-1, 0});
    sheet.wires.push_back({{0, 2}, {0, 0}});
    sheet.instances.push_back(tap);
    sch.sheets.push_back(sheet);
  }
  Netlist nl = extract_netlist(design, sch, composer_dialect(), diags);
  ASSERT_TRUE(nl.nets.count("VDD"));
  EXPECT_TRUE(nl.nets.at("VDD").global);
  EXPECT_EQ(nl.nets.at("VDD").connections.size(), 2u);
}

TEST_F(NetlistFixture, CondensedLabelMergesWithBusBit) {
  Schematic sch;
  sch.cell = "top";
  Sheet sheet;
  sheet.number = 1;
  sheet.instances.push_back(make_inv("U1", {0, 0}));
  sheet.instances.push_back(make_inv("U2", {0, 10}));
  // Bus wire labeled A<0:3> on U1.Y.
  sheet.wires.push_back({{4, 2}, {8, 2}});
  NetLabel bus{"A<0:3>", {8, 2}, {}};
  sheet.labels.push_back(bus);
  // Separate wire labeled condensed "A2" on U2.Y.
  sheet.wires.push_back({{4, 12}, {8, 12}});
  NetLabel bit{"A2", {8, 12}, {}};
  sheet.labels.push_back(bit);
  sch.sheets.push_back(sheet);

  Netlist vl = extract_netlist(design, sch, viewlogic_dialect(), diags);
  // In Viewlogic, A2 is bit 2 of the bus: U1.Y and U2.Y share A[2].
  ASSERT_TRUE(vl.nets.count("A[2]"));
  EXPECT_EQ(vl.nets.at("A[2]").connections.size(), 2u);
  // Other bits carry only the bus-attached pin.
  ASSERT_TRUE(vl.nets.count("A[1]"));
  EXPECT_EQ(vl.nets.at("A[1]").connections.size(), 1u);

  // In Composer, "A2" is an unrelated scalar net.
  Netlist cd = extract_netlist(design, sch, composer_dialect(), diags);
  ASSERT_TRUE(cd.nets.count("A2"));
  ASSERT_TRUE(cd.nets.count("A[2]"));
  EXPECT_EQ(cd.nets.at("A[2]").connections.size(), 1u);
}

TEST_F(NetlistFixture, ImplicitPortFromCellSymbolPin) {
  Schematic sch;
  sch.cell = "top";
  Sheet sheet;
  sheet.number = 1;
  sheet.instances.push_back(make_inv("U1", {0, 0}));
  sheet.wires.push_back({{0, 2}, {-4, 2}});
  NetLabel l{"PA", {-4, 2}, {}};
  sheet.labels.push_back(l);
  sch.sheets.push_back(sheet);

  Netlist vl = extract_netlist(design, sch, viewlogic_dialect(), diags);
  ASSERT_TRUE(vl.nets.count("PA"));
  EXPECT_TRUE(vl.nets.at("PA").is_port);
  EXPECT_EQ(vl.nets.at("PA").port_dir, PinDir::Input);

  // Composer requires an explicit hierarchy connector: without one the net
  // is not a port.
  Netlist cd = extract_netlist(design, sch, composer_dialect(), diags);
  ASSERT_TRUE(cd.nets.count("PA"));
  EXPECT_FALSE(cd.nets.at("PA").is_port);
}

TEST_F(NetlistFixture, ExplicitHierConnectorMakesPort) {
  for (const SymbolDef& def : make_target_library()) design.add_symbol(def);
  Schematic sch;
  sch.cell = "top";
  Sheet sheet;
  sheet.number = 1;
  sheet.instances.push_back(make_inv("U1", {0, 0}));
  sheet.wires.push_back({{0, 2}, {-4, 2}});
  NetLabel l{"PA", {-4, 2}, {}};
  sheet.labels.push_back(l);
  Instance conn;
  conn.name = "PORT_PA";
  conn.symbol = {"connectors", "ipin", "symbol"};
  conn.placement = Transform(base::Orient::R0, Point{-4, 2} - Point{1, 0});
  conn.props.set("port", "PA");
  conn.props.set("dir", "input");
  sheet.instances.push_back(conn);
  sch.sheets.push_back(sheet);

  Netlist cd = extract_netlist(design, sch, composer_dialect(), diags);
  ASSERT_TRUE(cd.nets.count("PA"));
  EXPECT_TRUE(cd.nets.at("PA").is_port);
  EXPECT_EQ(cd.nets.at("PA").port_dir, PinDir::Input);
}

TEST_F(NetlistFixture, FloatingLabelAndUnknownSymbolDiagnostics) {
  Schematic sch;
  sch.cell = "top";
  Sheet sheet;
  sheet.number = 1;
  NetLabel l{"ghost", {50, 50}, {}};
  sheet.labels.push_back(l);
  Instance bad;
  bad.name = "X1";
  bad.symbol = {"nolib", "nocell", "nov"};
  sheet.instances.push_back(bad);
  sch.sheets.push_back(sheet);

  extract_netlist(design, sch, viewlogic_dialect(), diags);
  EXPECT_EQ(diags.count_code("floating-label"), 1u);
  EXPECT_EQ(diags.count_code("unknown-symbol"), 1u);
}

// ------------------------------------------------------------- comparator

TEST(NetlistCompare, DetectsEachDiffKind) {
  Netlist golden, subject;
  golden.cell = subject.cell = "top";

  ExtractedNet a;
  a.canonical = "a";
  a.named = true;
  a.connections = {{"U1", "Y"}, {"U2", "A"}};
  golden.nets["a"] = a;

  // subject: missing "a", has "b" extra, and "c" differs in connections.
  ExtractedNet b = a;
  b.canonical = "b";
  subject.nets["b"] = b;

  ExtractedNet c1 = a, c2 = a;
  c1.canonical = c2.canonical = "c";
  c2.connections = {{"U1", "Y"}};
  golden.nets["c"] = c1;
  subject.nets["c"] = c2;

  auto diffs = compare_netlists(golden, subject);
  ASSERT_EQ(diffs.size(), 3u);
  std::multiset<NetlistDiff::Kind> kinds;
  for (const auto& d : diffs) kinds.insert(d.kind);
  EXPECT_TRUE(kinds.count(NetlistDiff::Kind::MissingNet));
  EXPECT_TRUE(kinds.count(NetlistDiff::Kind::ExtraNet));
  EXPECT_TRUE(kinds.count(NetlistDiff::Kind::ConnectionChange));
}

TEST(NetlistCompare, AnonymousNetsMatchBySignature) {
  Netlist golden, subject;
  ExtractedNet g;
  g.canonical = "$anon0";
  g.named = false;
  g.connections = {{"U1", "Y"}, {"U2", "A"}};
  golden.nets["$anon0"] = g;
  ExtractedNet s = g;
  s.canonical = "$anon99";  // different auto-name, same connections
  subject.nets["$anon99"] = s;
  EXPECT_TRUE(compare_netlists(golden, subject).empty());
}

TEST(NetlistCompare, PortAndGlobalChanges) {
  Netlist golden, subject;
  ExtractedNet g;
  g.canonical = "p";
  g.named = true;
  g.is_port = true;
  g.port_dir = PinDir::Input;
  g.global = false;
  g.connections = {{"U1", "A"}};
  golden.nets["p"] = g;
  ExtractedNet s = g;
  s.is_port = false;
  s.global = true;
  subject.nets["p"] = s;
  auto diffs = compare_netlists(golden, subject);
  ASSERT_EQ(diffs.size(), 2u);
}

TEST(NetlistCompare, IgnoresDanglingSingletons) {
  Netlist golden, subject;
  ExtractedNet g;
  g.canonical = "$anon0";
  g.named = false;
  g.connections = {{"U1", "A"}};  // single dangling pin
  golden.nets["$anon0"] = g;
  EXPECT_TRUE(compare_netlists(golden, subject).empty());
}

}  // namespace
}  // namespace interop::sch
