#include "schematic/ripup.hpp"

#include <gtest/gtest.h>

#include "schematic/generator.hpp"
#include "schematic/netlist.hpp"

namespace interop::sch {
namespace {

// Figure 1 fixture: a nand2 with wires on all three pins, replaced by a
// target nand2 with different pin positions and names.
class RipupFixture : public ::testing::Test {
 protected:
  RipupFixture() : design(viewlogic_dialect().grid) {
    add_source_library(design, "top", {});
    for (const SymbolDef& def : make_target_library()) design.add_symbol(def);
    map = make_standard_symbol_map();

    sheet.number = 1;
    Instance u1;
    u1.name = "U1";
    u1.symbol = {"vl_lib", "vl_nand2", "sym"};
    u1.placement = Transform(base::Orient::R0, {20, 20});
    sheet.instances.push_back(u1);
    // vl_nand2 pins: A(20,23) B(20,21) Y(26,22).
    sheet.wires.push_back({{10, 23}, {20, 23}});  // into A
    sheet.wires.push_back({{10, 21}, {20, 21}});  // into B
    sheet.wires.push_back({{26, 22}, {36, 22}});  // out of Y
    sheet.wires.push_back({{36, 22}, {36, 30}});  // Y net continues
    NetLabel l{"out", {36, 30}, {}};
    sheet.labels.push_back(l);
  }

  const SymbolMapEntry& entry() {
    return *map.find({"vl_lib", "vl_nand2", "sym"});
  }
  const SymbolDef& source() {
    return *design.find_symbol({"vl_lib", "vl_nand2", "sym"});
  }
  const SymbolDef& target() {
    return *design.find_symbol({"cd_lib", "cd_nand2", "symbol"});
  }

  Design design;
  SymbolMap map;
  Sheet sheet;
  RipupStats stats;
  base::DiagnosticEngine diags;
};

TEST_F(RipupFixture, MinimalRipsOnlyPinSegments) {
  Sheet before = sheet;
  ASSERT_TRUE(replace_component(sheet, "U1", entry(), source(), target(),
                                RipupPolicy::Minimal, stats, diags));
  EXPECT_EQ(stats.instances_replaced, 1u);
  // Three segments touch pins; the Y-net extension (36,22)-(36,30) survives.
  EXPECT_EQ(stats.segments_ripped, 3u);
  EXPECT_EQ(stats.fullnet_would_rip, 4u);
  EXPECT_GT(stats.segments_rerouted, 0u);
  // Graphical similarity: only wires near the replaced part changed.
  EXPECT_GT(graphical_similarity(before, sheet), 0.2);
  EXPECT_FALSE(diags.has_errors());
}

TEST_F(RipupFixture, FullNetRipsWholeNets) {
  ASSERT_TRUE(replace_component(sheet, "U1", entry(), source(), target(),
                                RipupPolicy::FullNet, stats, diags));
  EXPECT_EQ(stats.segments_ripped, 4u);  // includes the Y-net extension
}

TEST_F(RipupFixture, ConnectivityPreservedAfterReplacement) {
  // Attach a second instance so the Y net has two pins.
  Instance u2;
  u2.name = "U2";
  u2.symbol = {"vl_lib", "vl_inv", "sym"};
  u2.placement = Transform(base::Orient::R0, {36, 28});
  // vl_inv pin A at local (0,2) -> (36,30): on the Y-net end.
  sheet.instances.push_back(u2);

  Schematic sch;
  sch.cell = "top";
  sch.sheets.push_back(sheet);
  Netlist before =
      extract_netlist(design, sch, viewlogic_dialect(), diags);
  ASSERT_TRUE(before.nets.count("out"));
  ASSERT_EQ(before.nets.at("out").connections.size(), 2u);

  ASSERT_TRUE(replace_component(sch.sheets[0], "U1", entry(), source(),
                                target(), RipupPolicy::Minimal, stats,
                                diags));
  Netlist after = extract_netlist(design, sch, viewlogic_dialect(), diags);
  ASSERT_TRUE(after.nets.count("out"));
  // Same net, with the replaced instance's pin renamed by the pin map.
  std::set<NetConnection> want{{"U1", "OUT"}, {"U2", "A"}};
  EXPECT_EQ(after.nets.at("out").connections, want);
}

TEST_F(RipupFixture, ReplacementWithRotationAndOffset) {
  SymbolMapEntry e = entry();
  e.origin_offset = {2, 1};
  e.rotation = base::Orient::R90;
  ASSERT_TRUE(replace_component(sheet, "U1", e, source(), target(),
                                RipupPolicy::Minimal, stats, diags));
  auto idx = sheet.find_instance("U1");
  ASSERT_TRUE(idx.has_value());
  const Instance& inst = sheet.instances[*idx];
  EXPECT_EQ(inst.symbol, (SymbolKey{"cd_lib", "cd_nand2", "symbol"}));
  EXPECT_EQ(inst.placement.orient(), base::Orient::R90);
  // Wires were rerouted to the rotated pin positions.
  const SymbolPin* out_pin = target().find_pin("OUT");
  Point new_out = inst.placement.apply(out_pin->pos);
  bool touches = false;
  for (const Segment& w : sheet.wires)
    if (w.a == new_out || w.b == new_out) touches = true;
  EXPECT_TRUE(touches);
}

TEST_F(RipupFixture, MissingTargetPinReportsError) {
  SymbolMapEntry e = entry();
  e.pin_map["A"] = "NO_SUCH_PIN";
  replace_component(sheet, "U1", e, source(), target(), RipupPolicy::Minimal,
                    stats, diags);
  EXPECT_EQ(diags.count_code("pin-map-missing"), 1u);
}

TEST_F(RipupFixture, UnknownInstanceReturnsFalse) {
  EXPECT_FALSE(replace_component(sheet, "NOPE", entry(), source(), target(),
                                 RipupPolicy::Minimal, stats, diags));
}

TEST(GraphicalSimilarity, IdenticalSheetsScoreOne) {
  Sheet s;
  s.wires.push_back({{0, 0}, {5, 0}});
  Instance i;
  i.name = "U1";
  s.instances.push_back(i);
  EXPECT_DOUBLE_EQ(graphical_similarity(s, s), 1.0);
}

TEST(GraphicalSimilarity, EmptySheetScoresOne) {
  Sheet a, b;
  EXPECT_DOUBLE_EQ(graphical_similarity(a, b), 1.0);
}

}  // namespace
}  // namespace interop::sch
