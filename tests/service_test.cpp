// Tests for the interop service: the standalone wire codec (including
// the robustness contract — truncated frames, oversized length prefixes,
// garbage bytes, and arbitrary partial reads must produce clean
// per-session errors, never crashes or desynced parses), the InteropService
// request pipeline driven through the in-process LoopbackClient (resident
// tool models, shared-cache flow runs, admission control, per-tenant
// fairness, watchdog cancellation, graceful drain), and the sharded
// ResultCache hammered from 8 threads (run under TSan in CI: the service
// shares one cache across concurrent requests, so it must hold without
// the executor's single guard).

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "base/diagnostics.hpp"
#include "base/rng.hpp"
#include "runtime/cache.hpp"
#include "schematic/generator.hpp"
#include "schematic/netlist.hpp"
#include "schematic/textio.hpp"
#include "service/service.hpp"
#include "service/wire.hpp"

using namespace interop;
using service::FrameReader;
using service::InteropService;
using service::LoopbackClient;
using service::MsgType;
using service::Request;
using service::Response;
using service::ServiceOptions;
using service::Status;

namespace {

Request sample_request() {
  Request req;
  req.id = 42;
  req.type = MsgType::Netlist;
  req.tenant = "acme";
  req.design = "(design)";
  req.cell = "top";
  req.dialect = "composer";
  req.flow = "";
  req.width = 3;
  req.latency_us = 17;
  req.seed = 0xdeadbeefcafe;
  return req;
}

Response sample_response() {
  Response resp;
  resp.id = 42;
  resp.status = Status::Rejected;
  resp.retry_after_us = 1500;
  resp.error = "queue full";
  resp.body = "hello\nworld";
  resp.counters = {{"nets", 12}, {"connections", 30}};
  return resp;
}

/// Feed `bytes` to a FrameReader in chunks of `chunk` and collect every
/// complete payload.
std::vector<std::string> scan(const std::string& bytes, std::size_t chunk,
                              FrameReader::Result* final_result,
                              std::string* final_error) {
  FrameReader reader;
  std::vector<std::string> payloads;
  std::size_t pos = 0;
  *final_result = FrameReader::Result::NeedMore;
  while (true) {
    std::string payload, error;
    FrameReader::Result r = reader.next(&payload, &error);
    if (r == FrameReader::Result::Frame) {
      payloads.push_back(payload);
      continue;
    }
    *final_result = r;
    if (r == FrameReader::Result::Bad) {
      *final_error = error;
      break;
    }
    if (pos >= bytes.size()) break;
    std::size_t n = std::min(chunk, bytes.size() - pos);
    reader.feed(std::string_view(bytes).substr(pos, n));
    pos += n;
  }
  return payloads;
}

}  // namespace

// ------------------------------------------------------------ wire codec

TEST(ServiceWire, RequestRoundTrip) {
  Request req = sample_request();
  std::string frame = service::encode_request(req);

  FrameReader reader;
  reader.feed(frame);
  std::string payload, error;
  ASSERT_EQ(reader.next(&payload, &error), FrameReader::Result::Frame);
  Request out;
  ASSERT_TRUE(service::decode_request(payload, &out, &error)) << error;
  EXPECT_EQ(out, req);
  EXPECT_EQ(reader.next(&payload, &error), FrameReader::Result::NeedMore);
}

TEST(ServiceWire, ResponseRoundTrip) {
  Response resp = sample_response();
  std::string frame = service::encode_response(resp);
  FrameReader reader;
  reader.feed(frame);
  std::string payload, error;
  ASSERT_EQ(reader.next(&payload, &error), FrameReader::Result::Frame);
  Response out;
  ASSERT_TRUE(service::decode_response(payload, &out, &error)) << error;
  EXPECT_EQ(out, resp);
  EXPECT_EQ(out.counter("nets"), 12u);
  EXPECT_EQ(out.counter("absent", 7), 7u);
}

TEST(ServiceWire, PartialReadsAnyFragmentation) {
  std::string bytes = service::encode_request(sample_request()) +
                      service::encode_response(sample_response()) +
                      service::encode_request(Request{});
  for (std::size_t chunk : {1u, 2u, 3u, 5u, 7u, 11u, 64u, 4096u}) {
    FrameReader::Result result;
    std::string error;
    std::vector<std::string> payloads = scan(bytes, chunk, &result, &error);
    ASSERT_EQ(payloads.size(), 3u) << "chunk=" << chunk;
    EXPECT_EQ(result, FrameReader::Result::NeedMore);
    Request first, third;
    Response second;
    EXPECT_TRUE(service::decode_request(payloads[0], &first, &error));
    EXPECT_TRUE(service::decode_response(payloads[1], &second, &error));
    EXPECT_TRUE(service::decode_request(payloads[2], &third, &error));
    EXPECT_EQ(first, sample_request());
    EXPECT_EQ(second, sample_response());
    EXPECT_EQ(third, Request{});
  }
}

TEST(ServiceWire, TruncatedFrameNeverCompletes) {
  std::string frame = service::encode_request(sample_request());
  for (std::size_t keep = 0; keep < frame.size(); keep += 9) {
    FrameReader reader;
    reader.feed(std::string_view(frame).substr(0, keep));
    std::string payload, error;
    EXPECT_EQ(reader.next(&payload, &error), FrameReader::Result::NeedMore)
        << "keep=" << keep;
  }
}

TEST(ServiceWire, GarbageMagicFailsFast) {
  FrameReader reader;
  reader.feed("XXXXGARBAGEGARBAGE");
  std::string payload, error;
  EXPECT_EQ(reader.next(&payload, &error), FrameReader::Result::Bad);
  EXPECT_NE(error.find("magic"), std::string::npos);
  // Sticky: the session stays dead even if valid bytes arrive later.
  reader.feed(service::encode_request(sample_request()));
  EXPECT_EQ(reader.next(&payload, &error), FrameReader::Result::Bad);
}

TEST(ServiceWire, OversizedLengthPrefixRejected) {
  // Hand-build a header claiming a payload far beyond kMaxFrameBytes.
  std::string frame(service::kWireMagic, 4);
  auto put_u32 = [&frame](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) frame.push_back(char((v >> (8 * i)) & 0xff));
  };
  put_u32(service::kWireVersion);
  put_u32(0xffffffffu);
  FrameReader reader;
  reader.feed(frame);
  std::string payload, error;
  EXPECT_EQ(reader.next(&payload, &error), FrameReader::Result::Bad);
  EXPECT_NE(error.find("oversized"), std::string::npos);
}

TEST(ServiceWire, WrongVersionRejected) {
  std::string frame(service::kWireMagic, 4);
  auto put_u32 = [&frame](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) frame.push_back(char((v >> (8 * i)) & 0xff));
  };
  put_u32(service::kWireVersion + 1);
  put_u32(0);
  FrameReader reader;
  reader.feed(frame);
  std::string payload, error;
  EXPECT_EQ(reader.next(&payload, &error), FrameReader::Result::Bad);
  EXPECT_NE(error.find("version"), std::string::npos);
}

TEST(ServiceWire, GarbageAfterValidFrameKillsSessionNotFrame) {
  std::string bytes = service::encode_request(sample_request()) + "JUNKJUNK";
  FrameReader reader;
  reader.feed(bytes);
  std::string payload, error;
  ASSERT_EQ(reader.next(&payload, &error), FrameReader::Result::Frame);
  Request out;
  EXPECT_TRUE(service::decode_request(payload, &out, &error));
  EXPECT_EQ(out, sample_request());
  EXPECT_EQ(reader.next(&payload, &error), FrameReader::Result::Bad);
}

TEST(ServiceWire, TruncatedPayloadsDecodeCleanly) {
  // Every prefix of a valid payload must fail decode with an error, not
  // crash or read out of bounds.
  std::string frame = service::encode_request(sample_request());
  std::string payload = frame.substr(12);
  for (std::size_t keep = 0; keep < payload.size(); ++keep) {
    Request out;
    std::string error;
    EXPECT_FALSE(service::decode_request(
        std::string_view(payload).substr(0, keep), &out, &error));
    EXPECT_FALSE(error.empty());
  }
}

TEST(ServiceWire, FuzzedPayloadsNeverCrash) {
  // Seeded garbage payloads: decode must return false or a valid struct,
  // never crash. Embedded length prefixes are attacker-controlled, so
  // this exercises the bounds checks hard.
  base::Rng rng(20260808);
  int decoded_ok = 0;
  for (int i = 0; i < 2000; ++i) {
    std::size_t len = std::size_t(rng.next() % 96);
    std::string payload(len, '\0');
    for (char& c : payload) c = char(rng.next() & 0xff);
    Request req;
    Response resp;
    std::string error;
    if (service::decode_request(payload, &req, &error)) ++decoded_ok;
    service::decode_response(payload, &resp, &error);
  }
  // Nearly all garbage must be rejected (type/status range checks).
  EXPECT_LT(decoded_ok, 20);
}

TEST(ServiceWire, FuzzedStreamsNeverDesyncTheReader) {
  // Random byte streams with valid frames spliced in: the reader either
  // yields exactly the spliced frames (when garbage lands after them) or
  // goes Bad — it must never yield a corrupted frame.
  base::Rng rng(7);
  for (int round = 0; round < 200; ++round) {
    std::string good = service::encode_request(sample_request());
    std::string stream;
    int expected_before_garbage = 0;
    bool garbage_seen = false;
    for (int part = 0; part < 4; ++part) {
      if (rng.next() % 2 == 0) {
        if (!garbage_seen) ++expected_before_garbage;
        stream += good;
      } else {
        garbage_seen = true;
        std::size_t len = 1 + std::size_t(rng.next() % 24);
        for (std::size_t i = 0; i < len; ++i)
          stream.push_back(char(rng.next() & 0xff));
      }
    }
    FrameReader::Result result;
    std::string error;
    std::size_t chunk = 1 + std::size_t(rng.next() % 32);
    std::vector<std::string> payloads =
        scan(stream, chunk, &result, &error);
    // Frames before the first garbage byte must all decode exactly.
    ASSERT_GE(int(payloads.size()), expected_before_garbage);
    for (int i = 0; i < expected_before_garbage; ++i) {
      Request out;
      ASSERT_TRUE(service::decode_request(payloads[std::size_t(i)], &out,
                                          &error));
      EXPECT_EQ(out, sample_request());
    }
  }
}

// ------------------------------------------------------------ service core

namespace {

ServiceOptions quiet_options() {
  ServiceOptions opt;
  opt.workers = 2;
  opt.flow_workers = 2;
  opt.queue_limit = 64;
  return opt;
}

std::string scenario_design(std::uint64_t seed) {
  sch::GeneratorOptions gopt;
  gopt.seed = seed;
  return sch::write_design(sch::make_exar_scenario(gopt).source);
}

}  // namespace

TEST(ServiceCore, PingRoundTripThroughLoopback) {
  InteropService svc(quiet_options());
  LoopbackClient client(svc);
  Request req;
  req.id = 9;
  req.type = MsgType::Ping;
  req.tenant = "t0";
  Response resp = client.call(req);
  EXPECT_EQ(resp.status, Status::Ok);
  EXPECT_EQ(resp.id, 9u);
  EXPECT_EQ(resp.body, "pong");
}

TEST(ServiceCore, MigrateEndpointVerifiesClean) {
  InteropService svc(quiet_options());
  LoopbackClient client(svc);
  Request req;
  req.id = 1;
  req.type = MsgType::Migrate;
  req.tenant = "exar";
  req.design = scenario_design(3);
  Response resp = client.call(req);
  ASSERT_EQ(resp.status, Status::Ok) << resp.error;
  // The resident tool models must migrate the standard scenario with zero
  // verification diffs, and the migrated design must parse.
  EXPECT_EQ(resp.counter("diffs", 999), 0u);
  EXPECT_GT(resp.counter("sheets"), 0u);
  EXPECT_GT(resp.counter("props_applied"), 0u);
  base::DiagnosticEngine diags;
  sch::Design migrated = sch::read_design(resp.body, diags);
  EXPECT_NE(migrated.find_schematic("top"), nullptr);
}

TEST(ServiceCore, NetlistEndpointMatchesDirectExtraction) {
  InteropService svc(quiet_options());
  LoopbackClient client(svc);
  sch::GeneratorOptions gopt;
  gopt.seed = 5;
  sch::Scenario scenario = sch::make_exar_scenario(gopt);

  Request req;
  req.id = 2;
  req.type = MsgType::Netlist;
  req.tenant = "exar";
  req.design = sch::write_design(scenario.source);
  req.cell = "top";
  req.dialect = "viewlogic";
  Response resp = client.call(req);
  ASSERT_EQ(resp.status, Status::Ok) << resp.error;

  base::DiagnosticEngine diags;
  sch::Netlist direct = sch::extract_netlist(
      scenario.source, *scenario.source.find_schematic("top"),
      sch::viewlogic_dialect(), diags);
  EXPECT_EQ(resp.counter("nets", 0), direct.nets.size());
  EXPECT_GT(resp.counter("connections"), 0u);
}

TEST(ServiceCore, ErrorsAreCleanPerRequest) {
  InteropService svc(quiet_options());
  LoopbackClient client(svc);

  Request bad_design;
  bad_design.id = 3;
  bad_design.type = MsgType::Migrate;
  bad_design.design = "(this is not ( a design";
  Response resp = client.call(bad_design);
  EXPECT_EQ(resp.status, Status::Error);
  EXPECT_NE(resp.error.find("bad design"), std::string::npos);

  Request bad_cell;
  bad_cell.id = 4;
  bad_cell.type = MsgType::Netlist;
  bad_cell.design = scenario_design(1);
  bad_cell.cell = "nonexistent";
  resp = client.call(bad_cell);
  EXPECT_EQ(resp.status, Status::Error);
  EXPECT_NE(resp.error.find("unknown cell"), std::string::npos);

  Request bad_dialect = bad_cell;
  bad_dialect.id = 5;
  bad_dialect.cell = "top";
  bad_dialect.dialect = "martian";
  resp = client.call(bad_dialect);
  EXPECT_EQ(resp.status, Status::Error);
  EXPECT_NE(resp.error.find("unknown dialect"), std::string::npos);

  Request bad_flow;
  bad_flow.id = 6;
  bad_flow.type = MsgType::FlowRun;
  bad_flow.flow = "not_a_spec";
  resp = client.call(bad_flow);
  EXPECT_EQ(resp.status, Status::Error);

  // The service survives all of it.
  Request ping;
  ping.id = 7;
  ping.type = MsgType::Ping;
  EXPECT_EQ(client.call(ping).status, Status::Ok);
}

TEST(ServiceCore, FlowRunsShareTheResidentCacheAcrossTenants) {
  InteropService svc(quiet_options());
  LoopbackClient client(svc);

  Request req;
  req.id = 1;
  req.type = MsgType::FlowRun;
  req.tenant = "tenant-a";
  req.flow = "fanout";
  req.width = 6;
  req.latency_us = 0;
  req.seed = 77;
  Response cold = client.call(req);
  ASSERT_EQ(cold.status, Status::Ok) << cold.error;
  EXPECT_EQ(cold.counter("executed"), 8u);  // src + 6 + sink
  EXPECT_EQ(cold.counter("cache_hits"), 0u);

  // A DIFFERENT tenant submits the identical flow: every step must replay
  // from the shared cache, zero actions executed.
  req.id = 2;
  req.tenant = "tenant-b";
  Response warm = client.call(req);
  ASSERT_EQ(warm.status, Status::Ok) << warm.error;
  EXPECT_EQ(warm.counter("executed", 999), 0u);
  EXPECT_EQ(warm.counter("cache_hits"), 8u);

  // A different seed is a different lineage: cold again.
  req.id = 3;
  req.seed = 78;
  Response other = client.call(req);
  ASSERT_EQ(other.status, Status::Ok) << other.error;
  EXPECT_EQ(other.counter("executed"), 8u);
}

TEST(ServiceCore, AdmissionControlRejectsWithRetryAfter) {
  ServiceOptions opt;
  opt.workers = 1;
  opt.flow_workers = 1;
  opt.queue_limit = 2;
  opt.retry_after_us = 12345;
  InteropService svc(opt);

  // Occupy the worker and fill the queue with slow flow runs.
  std::atomic<int> done_count{0};
  Request slow;
  slow.type = MsgType::FlowRun;
  slow.flow = "fanout";
  slow.width = 2;
  slow.latency_us = 30000;
  slow.tenant = "flooder";
  for (int i = 0; i < 3; ++i) {
    slow.id = std::uint64_t(i + 1);
    slow.seed = std::uint64_t(1000 + i);  // distinct: no cache shortcuts
    svc.submit(slow, [&done_count](Response) { ++done_count; });
  }
  // Worker has one, queue holds two: the next submit must be shed.
  Request extra = slow;
  extra.id = 99;
  extra.seed = 2000;
  Response rejected;
  bool admitted = svc.submit(
      extra, [&rejected](Response resp) { rejected = std::move(resp); });
  EXPECT_FALSE(admitted);
  EXPECT_EQ(rejected.status, Status::Rejected);
  EXPECT_EQ(rejected.retry_after_us, 12345u);
  EXPECT_EQ(rejected.id, 99u);

  svc.drain();
  EXPECT_EQ(done_count.load(), 3);
  EXPECT_GE(svc.metrics().counter("service.rejected").value(), 1);
}

TEST(ServiceCore, FairSchedulingDoesNotStarveQuietTenants) {
  ServiceOptions opt;
  opt.workers = 1;
  opt.flow_workers = 1;
  opt.queue_limit = 64;
  InteropService svc(opt);

  // A slow request occupies the single worker while we enqueue: 4 from a
  // flooding tenant, then 1 from a quiet tenant.
  std::mutex order_mu;
  std::vector<std::string> completion_order;
  auto record = [&](std::string tag) {
    return [&order_mu, &completion_order, tag](Response) {
      std::lock_guard<std::mutex> lock(order_mu);
      completion_order.push_back(tag);
    };
  };

  Request gate;
  gate.type = MsgType::FlowRun;
  gate.flow = "fanout";
  gate.width = 1;
  gate.latency_us = 50000;
  gate.tenant = "gate";
  gate.seed = 1;
  svc.submit(gate, record("gate"));

  Request flood;
  flood.type = MsgType::Ping;
  flood.tenant = "flooder";
  for (int i = 0; i < 4; ++i) {
    flood.id = std::uint64_t(i);
    svc.submit(flood, record("flood" + std::to_string(i)));
  }
  Request quiet;
  quiet.type = MsgType::Ping;
  quiet.tenant = "quiet";
  svc.submit(quiet, record("quiet"));

  svc.drain();
  ASSERT_EQ(completion_order.size(), 6u);
  // Round-robin: the quiet tenant's single request must complete within
  // two claims of the gate finishing, never behind the whole flood.
  std::size_t quiet_pos = 0, last_flood_pos = 0;
  for (std::size_t i = 0; i < completion_order.size(); ++i) {
    if (completion_order[i] == "quiet") quiet_pos = i;
    if (completion_order[i].rfind("flood", 0) == 0) last_flood_pos = i;
  }
  EXPECT_LT(quiet_pos, last_flood_pos);
  EXPECT_LE(quiet_pos, 3u);
}

TEST(ServiceCore, WatchdogCancelsOverdueFlowRuns) {
  ServiceOptions opt;
  opt.workers = 1;
  opt.flow_workers = 1;
  opt.queue_limit = 8;
  opt.request_timeout_us = 20000;  // 20ms budget...
  InteropService svc(opt);
  LoopbackClient client(svc);

  Request req;
  req.id = 1;
  req.type = MsgType::FlowRun;
  req.flow = "fanout";
  req.width = 16;           // ...against ~16 sequential 20ms steps
  req.latency_us = 20000;
  req.seed = 31337;
  Response resp = client.call(req);
  EXPECT_EQ(resp.status, Status::Error);
  EXPECT_NE(resp.error.find("cancel"), std::string::npos);
  EXPECT_GE(svc.metrics().counter("service.timeouts").value(), 1);

  // The daemon is healthy afterwards.
  Request ping;
  ping.id = 2;
  ping.type = MsgType::Ping;
  EXPECT_EQ(client.call(ping).status, Status::Ok);
}

TEST(ServiceCore, DrainCompletesEverythingAdmitted) {
  ServiceOptions opt;
  opt.workers = 2;
  opt.flow_workers = 1;
  opt.queue_limit = 32;
  InteropService svc(opt);

  std::atomic<int> completed{0}, rejected{0};
  Request req;
  req.type = MsgType::FlowRun;
  req.flow = "fanout";
  req.width = 2;
  req.latency_us = 2000;
  constexpr int kSubmitted = 12;
  for (int i = 0; i < kSubmitted; ++i) {
    req.id = std::uint64_t(i);
    req.tenant = "t" + std::to_string(i % 3);
    req.seed = std::uint64_t(i);
    svc.submit(req, [&](Response resp) {
      (resp.status == Status::Ok ? completed : rejected)++;
    });
  }
  svc.drain();
  EXPECT_EQ(completed.load() + rejected.load(), kSubmitted);
  EXPECT_EQ(rejected.load(), 0);  // queue_limit was never exceeded
  EXPECT_EQ(svc.queued(), 0u);
  EXPECT_EQ(svc.in_flight(), 0);

  // Post-drain submissions are refused as "draining", not queued forever.
  Response late;
  req.id = 999;
  bool admitted = svc.submit(req, [&late](Response resp) {
    late = std::move(resp);
  });
  EXPECT_FALSE(admitted);
  EXPECT_EQ(late.status, Status::Error);
  EXPECT_NE(late.error.find("draining"), std::string::npos);
}

TEST(ServiceCore, MetricsEndpointExposesThePipeline) {
  InteropService svc(quiet_options());
  LoopbackClient client(svc);
  Request ping;
  ping.id = 1;
  ping.type = MsgType::Ping;
  ping.tenant = "m";
  client.call(ping);

  Request metrics;
  metrics.id = 2;
  metrics.type = MsgType::Metrics;
  Response resp = client.call(metrics);
  ASSERT_EQ(resp.status, Status::Ok);
  EXPECT_NE(resp.body.find("counter service.admitted"), std::string::npos);
  EXPECT_NE(resp.body.find("gauge service.queue.depth"), std::string::npos);
  EXPECT_NE(resp.body.find("histogram service.latency_us.ping"),
            std::string::npos);
}

// ------------------------------------------------------- sharded cache

TEST(ServiceCacheConcurrency, EightThreadHammer) {
  // The service shares one ResultCache across every in-flight request,
  // outside the executor's single guard — so the cache must survive raw
  // concurrent find/store/stats/size/clear. Run under TSan in CI.
  runtime::ResultCache cache(256, 16);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &go, t] {
      while (!go.load()) std::this_thread::yield();
      base::Rng rng(std::uint64_t(1000 + t));
      for (int i = 0; i < kOpsPerThread; ++i) {
        std::uint64_t key = rng.next() % 512;
        switch (rng.next() % 8) {
          case 0: {
            runtime::CacheEntry entry;
            entry.outputs.emplace_back("out" + std::to_string(key),
                                       std::to_string(t));
            entry.log = "thread" + std::to_string(t);
            cache.store(key, std::move(entry));
            break;
          }
          case 1:
            (void)cache.stats();
            break;
          case 2:
            (void)cache.size();
            break;
          case 3:
            if (i % 1024 == 0) cache.clear();
            break;
          default: {
            auto entry = cache.find(key);
            // Entries must stay valid after eviction/clear races.
            if (entry) EXPECT_FALSE(entry->log.empty());
            break;
          }
        }
      }
    });
  }
  go.store(true);
  for (std::thread& t : threads) t.join();

  runtime::ResultCache::Stats stats = cache.stats();
  EXPECT_GT(stats.hits + stats.misses, 0u);
  EXPECT_LE(cache.size(), 256u + 16u);  // per-shard rounding slack
}

TEST(ServiceCacheConcurrency, ShardedSemanticsMatchSingleShard) {
  // Same operation sequence, 1 shard vs 16: identical lookup results and
  // aggregate hit/miss accounting when capacity is never exceeded.
  runtime::ResultCache one(0, 1), many(0, 16);
  base::Rng rng(99);
  for (int i = 0; i < 2000; ++i) {
    std::uint64_t key = rng.next() % 128;
    if (rng.next() % 2 == 0) {
      runtime::CacheEntry entry;
      entry.log = std::to_string(key);
      one.store(key, entry);
      many.store(key, std::move(entry));
    } else {
      auto a = one.find(key);
      auto b = many.find(key);
      ASSERT_EQ(a == nullptr, b == nullptr);
      if (a) EXPECT_EQ(a->log, b->log);
    }
  }
  EXPECT_EQ(one.size(), many.size());
  runtime::ResultCache::Stats sa = one.stats(), sb = many.stats();
  EXPECT_EQ(sa.hits, sb.hits);
  EXPECT_EQ(sa.misses, sb.misses);
  EXPECT_EQ(sa.stores, sb.stores);
}

TEST(ServiceCacheConcurrency, PerShardFifoEvictionIsBounded) {
  runtime::ResultCache cache(64, 8);
  for (std::uint64_t key = 0; key < 1000; ++key) {
    runtime::CacheEntry entry;
    entry.log = std::to_string(key);
    cache.store(key, std::move(entry));
  }
  // ceil(64/8) = 8 per shard, 8 shards: total stays at the budget.
  EXPECT_LE(cache.size(), 64u);
  EXPECT_GT(cache.stats().evictions, 0u);
}

// --------------------------------------- persistent store warm restart

namespace {

/// mkdtemp-backed scratch directory, removed on scope exit.
struct TempDir {
  explicit TempDir(const std::string& tag) {
    std::string tmpl =
        (std::filesystem::temp_directory_path() / (tag + ".XXXXXX")).string();
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    char* p = ::mkdtemp(buf.data());
    EXPECT_NE(p, nullptr);
    if (p) path = p;
  }
  ~TempDir() {
    std::error_code ec;
    if (!path.empty()) std::filesystem::remove_all(path, ec);
  }
  std::string path;
};

}  // namespace

TEST(ServiceStore, WarmRestartServesSameFlowWithZeroExecutions) {
  TempDir dir("service_store");
  ServiceOptions opt = quiet_options();
  opt.store_dir = dir.path;

  Request req;
  req.id = 1;
  req.type = MsgType::FlowRun;
  req.tenant = "acme";
  req.flow = "fanout";
  req.width = 6;
  req.latency_us = 0;
  req.seed = 1234;

  // Incarnation 1: cold run executes everything; every cached effect is
  // WAL-durable before the response (fsync-per-append), so even a kill -9
  // right after the response loses nothing.
  {
    InteropService svc(opt);
    ASSERT_NE(svc.persistent_cache(), nullptr) << svc.store_error();
    EXPECT_EQ(svc.persistent_cache()->recovered(), 0u);
    LoopbackClient client(svc);
    Response cold = client.call(req);
    ASSERT_EQ(cold.status, Status::Ok) << cold.error;
    EXPECT_EQ(cold.counter("executed"), 8u);  // src + 6 + sink
  }

  // Incarnation 2: a fresh service on the same directory — the restarted
  // daemon after the old one died. The identical request replays from the
  // rebuilt cache with zero actions executed.
  {
    InteropService svc(opt);
    ASSERT_NE(svc.persistent_cache(), nullptr) << svc.store_error();
    EXPECT_EQ(svc.persistent_cache()->recovered(), 8u);
    LoopbackClient client(svc);
    req.id = 2;
    Response warm = client.call(req);
    ASSERT_EQ(warm.status, Status::Ok) << warm.error;
    EXPECT_EQ(warm.counter("executed", 999), 0u)
        << "a warm restart re-executes nothing";
    EXPECT_EQ(warm.counter("cache_hits"), 8u);
  }
}

TEST(ServiceStore, UnusableStoreDirDegradesToMemoryOnly) {
  TempDir dir("service_store_bad");
  // Point store_dir at a plain file: open must fail, the service must
  // still serve (memory-only), and the failure must be observable.
  std::string file = dir.path + "/occupied";
  { std::ofstream(file) << "not a directory"; }
  ServiceOptions opt = quiet_options();
  opt.store_dir = file;
  InteropService svc(opt);
  EXPECT_EQ(svc.persistent_cache(), nullptr);
  EXPECT_FALSE(svc.store_error().empty());
  LoopbackClient client(svc);
  Request req;
  req.id = 1;
  req.type = MsgType::FlowRun;
  req.tenant = "acme";
  req.flow = "fanout";
  req.width = 4;
  req.latency_us = 0;
  req.seed = 9;
  Response resp = client.call(req);
  ASSERT_EQ(resp.status, Status::Ok) << resp.error;
  EXPECT_EQ(resp.counter("executed"), 6u);
  EXPECT_EQ(svc.metrics().expose().find("service.store.recovered"),
            std::string::npos);
}

TEST(ServiceStore, DrainFlushesTheStore) {
  TempDir dir("service_store_drain");
  ServiceOptions opt = quiet_options();
  opt.store_dir = dir.path;
  InteropService svc(opt);
  ASSERT_NE(svc.persistent_cache(), nullptr) << svc.store_error();
  LoopbackClient client(svc);
  Request req;
  req.id = 1;
  req.type = MsgType::FlowRun;
  req.tenant = "acme";
  req.flow = "fanout";
  req.width = 4;
  req.latency_us = 0;
  req.seed = 5;
  ASSERT_EQ(client.call(req).status, Status::Ok);
  svc.drain();
  // Post-drain the store is quiesced and fully flushed; the segment on
  // disk holds every entry (6 = src + 4 + sink).
  auto& store = svc.persistent_cache()->object_store();
  EXPECT_EQ(store.size(), 6u);
  EXPECT_EQ(store.stats().appends, 6u);
}
