// Kill-injection sweep for the persistent object store — the headline
// crash-consistency guarantee: for ≥20 seeded mid-write fault points
// (torn append / short fsync / crash-before-index, the three ways a
// kill -9 can land relative to the WAL commit point), the recovered
// store retains every acknowledged entry byte-identically, resurrects
// nothing that was never acknowledged (modulo the one benign
// durable-but-unacked record), and — after the interrupted work is
// retried — converges to contents byte-identical to a run that never
// crashed. A second sweep drives the whole stack (ParallelExecutor +
// PersistentResultCache) across {1,2,4} workers and asserts the
// restarted run converges to the fault-free reference with a warm cache.
//
// CI smoke narrows the sweep with INTEROP_CHAOS_SEEDS /
// INTEROP_CHAOS_SEED0 (same knobs as runtime_chaos_test).

#include <array>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/rng.hpp"
#include "runtime/executor.hpp"
#include "runtime/hash.hpp"
#include "store/persistent_cache.hpp"
#include "store/store.hpp"
#include "workflow/engine.hpp"

namespace interop::store {
namespace {

using runtime::FaultInjector;
using runtime::FaultPlan;
using runtime::StoreFaultKind;

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return (v && *v) ? std::atoi(v) : fallback;
}

struct TempDir {
  explicit TempDir(const std::string& tag) {
    std::string tmpl =
        (std::filesystem::temp_directory_path() / (tag + ".XXXXXX")).string();
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    char* p = ::mkdtemp(buf.data());
    EXPECT_NE(p, nullptr);
    if (p) path = p;
  }
  ~TempDir() {
    std::error_code ec;
    if (!path.empty()) std::filesystem::remove_all(path, ec);
  }
  std::string path;
};

/// One deterministic mutation in the scripted workload.
struct Op {
  enum Kind { Put, Remove, SetRef } kind = Put;
  std::uint64_t key = 0;
  std::string value;  // Put payload or ref name
};

/// Deterministic mixed workload (puts, occasional tombstones and refs)
/// derived purely from `seed`, so the fault-free reference and every
/// kill/retry run replay identical operation streams.
std::vector<Op> make_workload(std::uint64_t seed, int n) {
  base::Rng rng(seed * 1000003 + 17);
  std::vector<Op> ops;
  std::vector<std::uint64_t> live;
  for (int i = 0; i < n; ++i) {
    std::size_t roll = rng.index(10);
    Op op;
    if (roll < 7 || live.empty()) {
      op.kind = Op::Put;
      op.key = 1 + rng.index(1u << 20);
      op.value = "v" + std::to_string(op.key) + ":" +
                 std::string(1 + rng.index(64), char('a' + rng.index(26)));
      live.push_back(op.key);
    } else if (roll < 9) {
      op.kind = Op::Remove;
      op.key = live[rng.index(live.size())];
    } else {
      op.kind = Op::SetRef;
      op.key = live[rng.index(live.size())];
      op.value = "ref" + std::to_string(rng.index(4));
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

/// Apply one op; returns the store's ack.
bool apply(ObjectStore& store, const Op& op) {
  switch (op.kind) {
    case Op::Put: return store.put(op.key, op.value);
    case Op::Remove: return store.remove(op.key);
    case Op::SetRef: return store.set_ref(op.value, op.key);
  }
  return false;
}

TEST(StoreChaos, KillSweepLosesNoAckedEntryAndResurrectsNothing) {
  const int seeds = env_int("INTEROP_CHAOS_SEEDS", 20);
  const int seed0 = env_int("INTEROP_CHAOS_SEED0", 1);
  const int ops_n = 48;

  for (int s = 0; s < seeds; ++s) {
    const std::uint64_t seed = std::uint64_t(seed0 + s);
    const std::vector<Op> ops = make_workload(seed, ops_n);
    // The kill lands mid-workload at a seed-derived append; kinds cycle
    // so every recovery path gets swept. Note kill_at counts *appends*
    // (dedup puts don't append), so the dying op index varies by seed.
    const int kill_at = 2 + int(seed % 20);
    const StoreFaultKind kind =
        std::array<StoreFaultKind, 3>{
            StoreFaultKind::TornAppend, StoreFaultKind::ShortFsync,
            StoreFaultKind::CrashBeforeIndex}[seed % 3];
    SCOPED_TRACE("seed " + std::to_string(seed) + " kill_at " +
                 std::to_string(kill_at) + " kind " + to_string(kind));

    // Fault-free reference run of the full workload.
    TempDir ref_dir("chaos_ref");
    std::map<std::uint64_t, std::string> ref_contents;
    std::map<std::string, std::uint64_t> ref_refs;
    {
      ObjectStore ref;
      ASSERT_TRUE(ref.open(ref_dir.path)) << ref.error();
      for (const Op& op : ops) ASSERT_TRUE(apply(ref, op));
      ref_contents = ref.contents();
      ref_refs = ref.refs();
    }

    // Crashing run: acks recorded up to the injected death.
    TempDir dir("chaos_kill");
    std::map<std::uint64_t, std::string> acked;     // puts acked (live view)
    std::map<std::string, std::uint64_t> acked_refs;
    std::size_t resume_from = ops.size();
    Op dying;  // the op whose append drew the fault
    {
      ObjectStore store;
      ASSERT_TRUE(store.open(dir.path)) << store.error();
      FaultPlan plan;
      plan.store_schedule[kill_at] = kind;
      store.set_fault_injector(std::make_shared<FaultInjector>(seed, plan));
      for (std::size_t i = 0; i < ops.size(); ++i) {
        if (!apply(store, ops[i])) {
          ASSERT_TRUE(store.died()) << "only injected death may fail here";
          resume_from = i;
          dying = ops[i];
          break;
        }
        switch (ops[i].kind) {
          case Op::Put: acked[ops[i].key] = ops[i].value; break;
          case Op::Remove: acked.erase(ops[i].key); break;
          case Op::SetRef: acked_refs[ops[i].value] = ops[i].key; break;
        }
      }
      ASSERT_LT(resume_from, ops.size())
          << "the kill point must land inside the workload";
    }

    // Recovery: zero acked entries lost, zero unacked resurrected. The
    // sole carve-out is crash-before-index, where the dying op's record
    // IS durable despite the missing ack — a put resurfaces, a remove
    // lands its tombstone, a set_ref re-binds its name. All benign:
    // retrying the op converges (asserted below).
    const bool dying_durable = kind == StoreFaultKind::CrashBeforeIndex;
    ObjectStore recovered;
    ASSERT_TRUE(recovered.open(dir.path)) << recovered.error();
    auto contents = recovered.contents();
    for (const auto& [key, value] : acked) {
      if (dying_durable && dying.kind == Op::Remove && key == dying.key)
        continue;  // the unacked tombstone legitimately deleted it
      auto it = contents.find(key);
      ASSERT_TRUE(it != contents.end()) << "acked key " << key << " lost";
      EXPECT_EQ(it->second, value) << "acked key " << key << " corrupted";
    }
    for (const auto& [key, value] : contents) {
      if (acked.count(key)) continue;
      EXPECT_TRUE(dying_durable && dying.kind == Op::Put && key == dying.key)
          << "unacked key " << key << " resurrected";
    }
    for (const auto& [name, key] : acked_refs) {
      auto got = recovered.ref(name);
      ASSERT_TRUE(got.has_value()) << "acked ref " << name << " lost";
      if (dying_durable && dying.kind == Op::SetRef && name == dying.value)
        continue;  // the unacked re-bind legitimately took effect
      EXPECT_EQ(*got, key) << "ref " << name;
    }

    // Retry the interrupted op and the rest of the workload on the
    // recovered store: it must converge to the fault-free reference.
    for (std::size_t i = resume_from; i < ops.size(); ++i)
      ASSERT_TRUE(apply(recovered, ops[i])) << "retry op " << i;
    EXPECT_EQ(recovered.contents(), ref_contents)
        << "recovered+retried store must be byte-identical to a fresh run";
    EXPECT_EQ(recovered.refs(), ref_refs);

    // And recovery is a fixed point: a second open changes nothing.
    recovered.close();
    ASSERT_TRUE(recovered.open(dir.path)) << recovered.error();
    EXPECT_EQ(recovered.contents(), ref_contents);
    EXPECT_EQ(recovered.stats().truncated_segments, 0u);
  }
}

// ---------------------------------------------------- full-stack sweep

using wf::ActionApi;
using wf::ActionLanguage;
using wf::ActionResult;
using wf::FlowTemplate;
using wf::SimpleDataManager;
using wf::StepDef;

/// Layered DAG whose outputs derive purely from inputs (same construction
/// as runtime_chaos_test), so every run lands on identical bytes.
FlowTemplate make_layered(int layers, int width, std::uint64_t seed) {
  base::Rng rng(seed);
  FlowTemplate flow;
  flow.name = "layered";
  for (int l = 0; l < layers; ++l) {
    for (int w = 0; w < width; ++w) {
      std::string name = "s" + std::to_string(l) + "_" + std::to_string(w);
      StepDef step;
      step.name = name;
      step.writes = {name + ".out"};
      if (l > 0) {
        int deps = 1 + int(rng.index(2));
        for (int d = 0; d < deps; ++d) {
          std::string parent = "s" + std::to_string(l - 1) + "_" +
                               std::to_string(rng.index(std::size_t(width)));
          if (std::find(step.start_after.begin(), step.start_after.end(),
                        parent) == step.start_after.end()) {
            step.start_after.push_back(parent);
            step.reads.push_back(parent + ".out");
          }
        }
      } else {
        step.reads = {"inputs.dat"};
      }
      std::string artifact = name + ".out";
      std::vector<std::string> reads = step.reads;
      step.action = {name, ActionLanguage::Native,
                     [artifact, reads](ActionApi& api) {
                       std::string content;
                       for (const std::string& r : reads)
                         content += api.read_data(r).value_or("?");
                       api.write_data(artifact, runtime::to_hex(
                                                    runtime::fnv1a(content)) +
                                                    "+");
                       return ActionResult{0, ""};
                     }};
      flow.steps.push_back(std::move(step));
    }
  }
  return flow;
}

std::map<std::string, std::string> snapshot(wf::DataManager& data) {
  std::map<std::string, std::string> out;
  for (const std::string& path : data.list()) out[path] = *data.read(path);
  return out;
}

TEST(StoreChaos, ExecutorSweepRestartsWarmAfterStoreDeath) {
  const int seeds = env_int("INTEROP_CHAOS_SEEDS", 20);
  const int seed0 = env_int("INTEROP_CHAOS_SEED0", 1);
  const FlowTemplate flow = make_layered(4, 4, /*seed=*/7);
  const std::size_t total = flow.steps.size();

  // Fault-free reference: final data state + the persisted cache bytes.
  TempDir ref_dir("chaos_exec_ref");
  std::map<std::string, std::string> ref_state;
  std::map<std::uint64_t, std::string> ref_store;
  {
    auto cache = std::make_shared<PersistentResultCache>();
    ASSERT_TRUE(cache->open(ref_dir.path)) << cache->object_store().error();
    runtime::ExecutorOptions options;
    options.workers = 1;
    runtime::ParallelExecutor exec(flow, {},
                                   std::make_unique<SimpleDataManager>(),
                                   options, cache);
    exec.set_clock(std::make_shared<runtime::SimClock>());
    exec.engine().data().write("inputs.dat", "v1");
    ASSERT_EQ(exec.instantiate({}), "");
    runtime::RunStats stats = exec.run();
    ASSERT_TRUE(exec.complete()) << stats.error;
    ref_state = snapshot(exec.engine().data());
    ref_store = cache->object_store().contents();
  }
  ASSERT_EQ(ref_store.size(), total);

  for (int s = 0; s < seeds; ++s) {
    const std::uint64_t seed = std::uint64_t(seed0 + s);
    for (int workers : {1, 2, 4}) {
      SCOPED_TRACE("seed " + std::to_string(seed) + " workers " +
                   std::to_string(workers));
      TempDir dir("chaos_exec");
      // Process 1: the store dies mid-run at a seeded append point; the
      // run itself still completes (durability must never fail a flow).
      {
        auto cache = std::make_shared<PersistentResultCache>();
        ASSERT_TRUE(cache->open(dir.path)) << cache->object_store().error();
        FaultPlan plan;
        plan.store_schedule[1 + int(seed % total)] =
            std::array<StoreFaultKind, 3>{
                StoreFaultKind::TornAppend, StoreFaultKind::ShortFsync,
                StoreFaultKind::CrashBeforeIndex}[seed % 3];
        cache->object_store().set_fault_injector(
            std::make_shared<FaultInjector>(seed, plan));
        runtime::ExecutorOptions options;
        options.workers = workers;
        runtime::ParallelExecutor exec(flow, {},
                                       std::make_unique<SimpleDataManager>(),
                                       options, cache);
        exec.set_clock(std::make_shared<runtime::SimClock>());
        exec.engine().data().write("inputs.dat", "v1");
        ASSERT_EQ(exec.instantiate({}), "");
        runtime::RunStats stats = exec.run();
        ASSERT_TRUE(exec.complete()) << stats.error;
        EXPECT_EQ(snapshot(exec.engine().data()), ref_state);
        EXPECT_TRUE(cache->object_store().died());
      }

      // Restart: every recovered entry must be byte-identical to the
      // fault-free store's entry for the same key (committed ⊆ correct),
      // and a resumed run converges warm on top of them.
      auto cache = std::make_shared<PersistentResultCache>();
      ASSERT_TRUE(cache->open(dir.path)) << cache->object_store().error();
      EXPECT_EQ(cache->skipped(), 0u);
      for (const auto& [key, value] : cache->object_store().contents()) {
        auto it = ref_store.find(key);
        ASSERT_TRUE(it != ref_store.end())
            << "recovered key " << key << " unknown to the reference run";
        EXPECT_EQ(value, it->second) << "recovered entry corrupted";
      }
      std::size_t warm = cache->recovered();
      runtime::ExecutorOptions options;
      options.workers = workers;
      runtime::ParallelExecutor exec(flow, {},
                                     std::make_unique<SimpleDataManager>(),
                                     options, cache);
      exec.set_clock(std::make_shared<runtime::SimClock>());
      exec.engine().data().write("inputs.dat", "v1");
      ASSERT_EQ(exec.instantiate({}), "");
      runtime::RunStats stats = exec.run();
      ASSERT_TRUE(exec.complete()) << stats.error;
      EXPECT_EQ(snapshot(exec.engine().data()), ref_state)
          << "restarted run must land on the fault-free bytes";
      EXPECT_EQ(stats.cache_hits, int(warm))
          << "every recovered entry serves warm";
      EXPECT_EQ(stats.executed, int(total - warm))
          << "only entries the crash lost may re-execute";
    }
  }
}

}  // namespace
}  // namespace interop::store
