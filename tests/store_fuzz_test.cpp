// Seeded byte-mutation fuzz for the store's recovery scan: starting from
// a pristine segment, each iteration applies a random mutation (bit
// flip, truncation, garbage append, or a combination) and re-opens the
// store. Recovery must never crash, never mis-verify a checksum (every
// surviving key maps byte-identically to its original value, and no key
// the original store never held appears), and must be a fixed point (a
// second open finds nothing left to truncate). Runs under the ASan/UBSan
// CI job like the reproducer corpus; INTEROP_STORE_FUZZ_ITERS widens the
// nightly sweep.

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/rng.hpp"
#include "store/store.hpp"

namespace interop::store {
namespace {

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return (v && *v) ? std::atoi(v) : fallback;
}

struct TempDir {
  explicit TempDir(const std::string& tag) {
    std::string tmpl =
        (std::filesystem::temp_directory_path() / (tag + ".XXXXXX")).string();
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    char* p = ::mkdtemp(buf.data());
    EXPECT_NE(p, nullptr);
    if (p) path = p;
  }
  ~TempDir() {
    std::error_code ec;
    if (!path.empty()) std::filesystem::remove_all(path, ec);
  }
  std::string path;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), std::streamsize(bytes.size()));
}

TEST(StoreFuzz, MutatedSegmentsNeverCrashOrMisverify) {
  const int iters = env_int("INTEROP_STORE_FUZZ_ITERS", 200);

  // Pristine store: mixed payload sizes (including empty and binary),
  // refs, and a tombstone, all in one segment.
  TempDir pristine_dir("store_fuzz_pristine");
  // The oracle is every value EVER put, not the final live view: a
  // truncation that cuts before the key-7 tombstone legitimately
  // resurfaces key 7 — that is an earlier committed state, not
  // corruption. Mis-verification means a key appears with bytes that
  // were never written, or a key that never existed at all.
  std::map<std::uint64_t, std::string> original;
  {
    ObjectStore store;
    ASSERT_TRUE(store.open(pristine_dir.path)) << store.error();
    base::Rng rng(99);
    for (std::uint64_t k = 1; k <= 24; ++k) {
      std::string value(rng.index(96), '\0');
      for (char& c : value) c = char(rng.index(256));
      ASSERT_TRUE(store.put(k, value));
      original[k] = value;
    }
    ASSERT_TRUE(store.remove(7));
    ASSERT_TRUE(store.set_ref("head", 3));
  }
  const std::string pristine =
      read_file(pristine_dir.path + "/seg-000001.iosg");
  ASSERT_GT(pristine.size(), 100u);

  TempDir work_dir("store_fuzz_work");
  const std::string seg = work_dir.path + "/seg-000001.iosg";
  for (int iter = 0; iter < iters; ++iter) {
    base::Rng rng(std::uint64_t(iter) * 6364136223846793005ull + 1);
    std::string bytes = pristine;
    // 1-3 stacked mutations per iteration.
    int mutations = 1 + int(rng.index(3));
    for (int m = 0; m < mutations; ++m) {
      switch (rng.index(4)) {
        case 0:  // single bit flip anywhere (header, length, payload...)
          bytes[rng.index(bytes.size())] ^= char(1 << rng.index(8));
          break;
        case 1:  // truncate to an arbitrary length, including 0
          bytes.resize(rng.index(bytes.size() + 1));
          break;
        case 2: {  // append garbage (a torn or alien tail)
          std::size_t n = 1 + rng.index(64);
          for (std::size_t i = 0; i < n; ++i)
            bytes.push_back(char(rng.index(256)));
          break;
        }
        case 3: {  // zero out a run of bytes (lost sector)
          if (bytes.empty()) break;
          std::size_t at = rng.index(bytes.size());
          std::size_t n = std::min(bytes.size() - at, 1 + rng.index(32));
          for (std::size_t i = 0; i < n; ++i) bytes[at + i] = '\0';
          break;
        }
      }
      if (bytes.empty()) break;
    }
    write_file(seg, bytes);

    ObjectStore store;
    ASSERT_TRUE(store.open(work_dir.path))
        << "iter " << iter << ": open must not fail on corruption: "
        << store.error();
    // No mis-verification: every surviving key is original and intact.
    for (const auto& [key, value] : store.contents()) {
      auto it = original.find(key);
      ASSERT_TRUE(it != original.end())
          << "iter " << iter << ": key " << key
          << " surfaced that the pristine store never held";
      EXPECT_EQ(value, it->second)
          << "iter " << iter << ": key " << key
          << " survived with corrupted bytes (checksum mis-verified)";
    }
    if (auto head = store.ref("head"))
      EXPECT_EQ(*head, 3u) << "iter " << iter;
    // Recovery is a fixed point: a re-open finds a clean file.
    std::uint64_t size_once = store.size();
    store.close();
    ASSERT_TRUE(store.open(work_dir.path)) << store.error();
    EXPECT_EQ(store.stats().truncated_segments, 0u)
        << "iter " << iter << ": second open must find nothing to cut";
    EXPECT_EQ(store.size(), size_once) << "iter " << iter;
    // The recovered store must accept new writes.
    ASSERT_TRUE(store.put(1'000'000 + std::uint64_t(iter), "post"))
        << "iter " << iter;
  }
}

}  // namespace
}  // namespace interop::store
