// Unit coverage for the crash-consistent object store (src/store): WAL
// round-trips, dedup, refs/tombstones, recovery-scan truncation of torn
// and bit-flipped tails, segment rotation, crash-safe compaction, the
// injected store-fault points, the PersistentResultCache rebuild (FIFO
// faithful across a cold open), and the journal-on-store glue feeding
// ParallelExecutor::resume_run. The multi-seed kill sweep lives in
// store_chaos_test.cpp; byte-mutation robustness in store_fuzz_test.cpp.

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "runtime/executor.hpp"
#include "runtime/hash.hpp"
#include "store/persistent_cache.hpp"
#include "store/store.hpp"
#include "workflow/engine.hpp"

namespace interop::store {
namespace {

using runtime::CacheEntry;
using runtime::FaultInjector;
using runtime::FaultPlan;
using runtime::ResultCache;
using runtime::StoreFaultKind;

/// mkdtemp-backed scratch directory, removed on scope exit.
struct TempDir {
  explicit TempDir(const std::string& tag) {
    std::string tmpl =
        (std::filesystem::temp_directory_path() / (tag + ".XXXXXX")).string();
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    char* p = ::mkdtemp(buf.data());
    EXPECT_NE(p, nullptr);
    if (p) path = p;
  }
  ~TempDir() {
    std::error_code ec;
    if (!path.empty()) std::filesystem::remove_all(path, ec);
  }
  std::string path;
};

std::string seg1(const std::string& dir) { return dir + "/seg-000001.iosg"; }

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), std::streamsize(bytes.size()));
}

TEST(Store, PutGetRoundTripAndDedup) {
  TempDir dir("store_roundtrip");
  ObjectStore store;
  ASSERT_TRUE(store.open(dir.path)) << store.error();
  EXPECT_TRUE(store.put(1, "alpha"));
  EXPECT_TRUE(store.put(2, std::string("binary\0bytes", 12)));
  EXPECT_TRUE(store.put(3, ""));
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.get(1).value_or("?"), "alpha");
  EXPECT_EQ(store.get(2).value_or("?"), std::string("binary\0bytes", 12));
  EXPECT_EQ(store.get(3).value_or("?"), "");
  EXPECT_FALSE(store.get(99).has_value());

  // Content-addressed: a re-put of a present key appends nothing.
  auto before = store.stats();
  EXPECT_TRUE(store.put(1, "alpha"));
  auto after = store.stats();
  EXPECT_EQ(after.appends, before.appends);
  EXPECT_EQ(after.dedup_hits, before.dedup_hits + 1);
}

TEST(Store, ReopenRecoversEverythingInOrder) {
  TempDir dir("store_reopen");
  {
    ObjectStore store;
    ASSERT_TRUE(store.open(dir.path)) << store.error();
    for (std::uint64_t k = 10; k < 20; ++k)
      ASSERT_TRUE(store.put(k, "v" + std::to_string(k)));
    ASSERT_TRUE(store.remove(13));
    ASSERT_TRUE(store.set_ref("head", 11));
    ASSERT_TRUE(store.set_ref("head", 12));  // last-wins
    ASSERT_TRUE(store.set_ref("tag", 19));
  }
  ObjectStore store;
  ASSERT_TRUE(store.open(dir.path)) << store.error();
  EXPECT_EQ(store.size(), 9u);
  EXPECT_FALSE(store.contains(13)) << "tombstone must survive recovery";
  EXPECT_EQ(store.get(11).value_or("?"), "v11");
  EXPECT_EQ(store.ref("head").value_or(0), 12u);
  EXPECT_EQ(store.ref("tag").value_or(0), 19u);
  EXPECT_FALSE(store.ref("missing").has_value());
  std::vector<std::uint64_t> expect = {10, 11, 12, 14, 15, 16, 17, 18, 19};
  EXPECT_EQ(store.keys_in_order(), expect)
      << "recovery must preserve first-append order";
  EXPECT_EQ(store.stats().recovered_records, 14u);  // 10 puts + tomb + 3 refs
  EXPECT_EQ(store.stats().truncated_segments, 0u);
}

TEST(Store, TornTailIsTruncatedOnOpenAndStaysTruncated) {
  TempDir dir("store_torn");
  std::map<std::uint64_t, std::string> reference;
  {
    ObjectStore store;
    ASSERT_TRUE(store.open(dir.path)) << store.error();
    for (std::uint64_t k = 1; k <= 5; ++k)
      ASSERT_TRUE(store.put(k, std::string(40, char('a' + int(k)))));
    reference = store.contents();
  }
  // Simulate a record torn mid-write: append half a plausible record.
  std::string bytes = read_file(seg1(dir.path));
  const std::size_t whole = bytes.size();
  write_file(seg1(dir.path), bytes + std::string(17, '\x5a'));

  ObjectStore store;
  ASSERT_TRUE(store.open(dir.path)) << store.error();
  EXPECT_EQ(store.contents(), reference);
  EXPECT_EQ(store.stats().truncated_bytes, 17u);
  EXPECT_EQ(store.stats().truncated_segments, 1u);
  EXPECT_EQ(std::filesystem::file_size(seg1(dir.path)), whole)
      << "the torn tail must be physically removed";
  // New appends land after the truncation point and survive a re-open.
  ASSERT_TRUE(store.put(6, "fresh"));
  store.close();
  ASSERT_TRUE(store.open(dir.path)) << store.error();
  EXPECT_EQ(store.stats().truncated_segments, 0u)
      << "recovery must be a fixed point";
  EXPECT_EQ(store.get(6).value_or("?"), "fresh");
  EXPECT_EQ(store.size(), 6u);
}

TEST(Store, BitFlipCutsTheSegmentAtTheCorruptRecord) {
  TempDir dir("store_bitflip");
  std::vector<std::uint64_t> offsets;  // record offsets, in append order
  {
    ObjectStore store;
    ASSERT_TRUE(store.open(dir.path)) << store.error();
    for (std::uint64_t k = 1; k <= 5; ++k) {
      auto before = store.stats().appended_bytes;
      ASSERT_TRUE(store.put(k, std::string(32, char('A' + int(k)))));
      offsets.push_back(8 + before);
      (void)before;
    }
  }
  // Flip one payload byte inside record #3.
  std::string bytes = read_file(seg1(dir.path));
  bytes[offsets[2] + 30] ^= 0x01;
  write_file(seg1(dir.path), bytes);

  ObjectStore store;
  ASSERT_TRUE(store.open(dir.path)) << store.error();
  EXPECT_TRUE(store.contains(1));
  EXPECT_TRUE(store.contains(2));
  EXPECT_FALSE(store.contains(3)) << "flipped record must not be believed";
  EXPECT_FALSE(store.contains(4)) << "nothing after corruption is trusted";
  EXPECT_FALSE(store.contains(5));
  EXPECT_EQ(store.stats().truncated_segments, 1u);
  EXPECT_EQ(std::filesystem::file_size(seg1(dir.path)), offsets[2]);
}

TEST(Store, RotationSpreadsRecordsAcrossSegmentsAndRecovers) {
  TempDir dir("store_rotate");
  StoreOptions opt;
  opt.segment_bytes = 256;  // force frequent rotation
  std::map<std::uint64_t, std::string> reference;
  {
    ObjectStore store;
    ASSERT_TRUE(store.open(dir.path, opt)) << store.error();
    for (std::uint64_t k = 1; k <= 40; ++k)
      ASSERT_TRUE(store.put(k, "payload-" + std::to_string(k * 17)));
    ASSERT_TRUE(store.set_ref("last", 40));
    reference = store.contents();
  }
  std::size_t segments = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir.path))
    segments += e.path().extension() == ".iosg";
  EXPECT_GT(segments, 3u);

  ObjectStore store;
  ASSERT_TRUE(store.open(dir.path, opt)) << store.error();
  EXPECT_EQ(store.contents(), reference);
  EXPECT_EQ(store.ref("last").value_or(0), 40u);
}

TEST(Store, CompactionDropsDeadBytesKeepsStateAndSurvivesReopen) {
  TempDir dir("store_compact");
  StoreOptions opt;
  opt.segment_bytes = 512;
  ObjectStore store;
  ASSERT_TRUE(store.open(dir.path, opt)) << store.error();
  for (std::uint64_t k = 1; k <= 30; ++k)
    ASSERT_TRUE(store.put(k, std::string(24, char('a' + k % 26))));
  for (std::uint64_t k = 1; k <= 20; ++k) ASSERT_TRUE(store.remove(k));
  ASSERT_TRUE(store.set_ref("head", 25));
  auto reference = store.contents();
  auto live_order = store.keys_in_order();

  std::uintmax_t bytes_before = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir.path))
    bytes_before += std::filesystem::file_size(e.path());
  ASSERT_TRUE(store.compact());
  std::uintmax_t bytes_after = 0;
  std::size_t segments = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir.path)) {
    bytes_after += std::filesystem::file_size(e.path());
    ++segments;
  }
  EXPECT_LT(bytes_after, bytes_before / 2)
      << "compaction must reclaim the tombstoned majority";
  EXPECT_EQ(segments, 1u);
  EXPECT_EQ(store.contents(), reference);
  EXPECT_EQ(store.keys_in_order(), live_order);
  EXPECT_EQ(store.ref("head").value_or(0), 25u);
  // And the compacted store is what a fresh open sees.
  store.close();
  ASSERT_TRUE(store.open(dir.path, opt)) << store.error();
  EXPECT_EQ(store.contents(), reference);
  EXPECT_EQ(store.keys_in_order(), live_order);
  EXPECT_EQ(store.ref("head").value_or(0), 25u);
}

// ------------------------------------------------------ injected faults

FaultPlan store_fault_at(int append_seq, StoreFaultKind kind) {
  FaultPlan plan;
  plan.store_schedule[append_seq] = kind;
  return plan;
}

TEST(Store, TornAppendFaultKillsStoreAndRecoveryDropsTheTorn) {
  TempDir dir("store_fault_torn");
  ObjectStore store;
  ASSERT_TRUE(store.open(dir.path)) << store.error();
  store.set_fault_injector(std::make_shared<FaultInjector>(
      7, store_fault_at(3, StoreFaultKind::TornAppend)));
  EXPECT_TRUE(store.put(1, "one"));
  EXPECT_TRUE(store.put(2, "two"));
  EXPECT_FALSE(store.put(3, "three")) << "the torn append must not ack";
  EXPECT_TRUE(store.died());
  EXPECT_EQ(store.death_fault(), StoreFaultKind::TornAppend);
  EXPECT_FALSE(store.put(4, "four")) << "a dead store accepts nothing";
  store.close();

  ObjectStore recovered;
  ASSERT_TRUE(recovered.open(dir.path)) << recovered.error();
  EXPECT_EQ(recovered.get(1).value_or("?"), "one");
  EXPECT_EQ(recovered.get(2).value_or("?"), "two");
  EXPECT_FALSE(recovered.contains(3)) << "unacked torn record resurrected";
  EXPECT_EQ(recovered.stats().truncated_segments, 1u)
      << "the torn prefix must be on disk, and must be cut";
}

TEST(Store, ShortFsyncFaultLosesOnlyTheUnackedRecord) {
  TempDir dir("store_fault_fsync");
  ObjectStore store;
  ASSERT_TRUE(store.open(dir.path)) << store.error();
  store.set_fault_injector(std::make_shared<FaultInjector>(
      7, store_fault_at(2, StoreFaultKind::ShortFsync)));
  EXPECT_TRUE(store.put(1, "one"));
  EXPECT_FALSE(store.put(2, "two"));
  EXPECT_EQ(store.death_fault(), StoreFaultKind::ShortFsync);
  store.close();

  ObjectStore recovered;
  ASSERT_TRUE(recovered.open(dir.path)) << recovered.error();
  EXPECT_EQ(recovered.get(1).value_or("?"), "one");
  EXPECT_FALSE(recovered.contains(2));
  EXPECT_EQ(recovered.stats().truncated_segments, 0u)
      << "short fsync leaves no bytes behind to truncate";
}

TEST(Store, CrashBeforeIndexLeavesBenignDurableRecord) {
  TempDir dir("store_fault_index");
  ObjectStore store;
  ASSERT_TRUE(store.open(dir.path)) << store.error();
  store.set_fault_injector(std::make_shared<FaultInjector>(
      7, store_fault_at(2, StoreFaultKind::CrashBeforeIndex)));
  EXPECT_TRUE(store.put(1, "one"));
  EXPECT_FALSE(store.put(2, "two")) << "died before the ack";
  store.close();

  // The record is durable but was never acknowledged; for a content-
  // addressed store that is indistinguishable from a successful put of
  // the same bytes — the retry simply dedups.
  ObjectStore recovered;
  ASSERT_TRUE(recovered.open(dir.path)) << recovered.error();
  EXPECT_EQ(recovered.get(1).value_or("?"), "one");
  EXPECT_EQ(recovered.get(2).value_or("?"), "two");
  auto before = recovered.stats();
  EXPECT_TRUE(recovered.put(2, "two"));
  EXPECT_EQ(recovered.stats().appends, before.appends);
  EXPECT_EQ(recovered.stats().dedup_hits, before.dedup_hits + 1);
}

// --------------------------------------------------- cache entry codec

CacheEntry sample_entry() {
  CacheEntry e;
  e.outputs = {{"a.out", "alpha\nbytes"}, {"b.out", std::string(3, '\0')}};
  e.variables = {{"var", "value"}, {"empty", ""}};
  e.log = "ran fine";
  return e;
}

TEST(Store, CacheEntryCodecRoundTripsAndRejectsForeignBlobs) {
  CacheEntry e = sample_entry();
  std::string blob = encode_cache_entry(e);
  CacheEntry d;
  ASSERT_TRUE(decode_cache_entry(blob, &d));
  EXPECT_EQ(d.outputs, e.outputs);
  EXPECT_EQ(d.variables, e.variables);
  EXPECT_EQ(d.log, e.log);

  CacheEntry sink;
  EXPECT_FALSE(decode_cache_entry("", &sink));
  EXPECT_FALSE(decode_cache_entry("interop-journal\tv1\t2\t0\n", &sink))
      << "journal objects must not decode as cache entries";
  EXPECT_FALSE(decode_cache_entry(blob.substr(0, blob.size() - 1), &sink))
      << "a truncated blob must not decode";
  EXPECT_FALSE(decode_cache_entry(blob + "x", &sink))
      << "trailing bytes must not decode";
}

TEST(PersistentCacheStore, ColdOpenRebuildsWarmCacheWithFifoFidelity) {
  TempDir dir("store_pcache");
  const std::size_t cap = 4;
  // A never-crashed bounded cache is the FIFO reference.
  ResultCache reference(cap, /*shards=*/1);
  {
    PersistentResultCache cache(cap, /*shards=*/1);
    ASSERT_TRUE(cache.open(dir.path)) << cache.object_store().error();
    for (std::uint64_t k = 1; k <= 7; ++k) {
      CacheEntry e;
      e.outputs = {{"p" + std::to_string(k), "c" + std::to_string(k)}};
      cache.store(k, e);
      reference.store(k, std::move(e));
    }
    EXPECT_EQ(cache.size(), cap);
  }
  PersistentResultCache reopened(cap, /*shards=*/1);
  ASSERT_TRUE(reopened.open(dir.path)) << reopened.object_store().error();
  EXPECT_EQ(reopened.recovered(), 7u)
      << "every persisted entry replays; FIFO decides what stays warm";
  EXPECT_EQ(reopened.skipped(), 0u);
  auto got = reopened.snapshot();
  auto want = reference.snapshot();
  ASSERT_EQ(got.size(), want.size());
  for (const auto& [key, entry] : want) {
    ASSERT_TRUE(got.count(key)) << "FIFO divergence at key " << key;
    EXPECT_EQ(got[key]->outputs, entry->outputs);
  }
  // Rebuild traffic must not pollute run-facing stats.
  auto stats = reopened.stats();
  EXPECT_EQ(stats.hits + stats.misses + stats.stores, 0u);
}

TEST(PersistentCacheStore, JournalRidesTheStoreBehindNamedRef) {
  TempDir dir("store_journal");
  runtime::RunJournal journal;
  journal.set_clock(std::make_shared<runtime::SimClock>());
  journal.begin_run(2);
  runtime::JournalEntry e;
  e.step = "s0";
  e.ok = true;
  e.has_key = true;
  e.key = 0xabcdef;
  journal.record(e);
  journal.end_run();

  ObjectStore store;
  ASSERT_TRUE(store.open(dir.path)) << store.error();
  ASSERT_TRUE(save_journal(store, journal, "run1"));
  store.close();

  ObjectStore reopened;
  ASSERT_TRUE(reopened.open(dir.path)) << reopened.error();
  runtime::RunJournal loaded;
  ASSERT_TRUE(load_journal(reopened, "run1", &loaded));
  ASSERT_EQ(loaded.entries().size(), 1u);
  EXPECT_EQ(loaded.entries()[0].step, "s0");
  EXPECT_EQ(loaded.entries()[0].key, 0xabcdefu);
  EXPECT_EQ(loaded.workers(), 2);
  runtime::RunJournal missing;
  EXPECT_FALSE(load_journal(reopened, "other", &missing));

  // Saving again (same content) dedups the object; the ref re-binds.
  auto before = reopened.stats();
  ASSERT_TRUE(save_journal(reopened, journal, "run1"));
  EXPECT_EQ(reopened.stats().dedup_hits, before.dedup_hits + 1);
}

// ------------------------------------------- executor across "processes"

using wf::ActionApi;
using wf::ActionLanguage;
using wf::ActionResult;
using wf::FlowTemplate;
using wf::SimpleDataManager;
using wf::StepDef;

/// Small linear+fanout flow whose outputs derive purely from inputs.
FlowTemplate make_flow() {
  FlowTemplate flow;
  flow.name = "persist";
  for (int i = 0; i < 6; ++i) {
    StepDef step;
    step.name = "s" + std::to_string(i);
    step.writes = {step.name + ".out"};
    if (i == 0) {
      step.reads = {"inputs.dat"};
    } else {
      step.start_after = {"s" + std::to_string(i - 1)};
      step.reads = {"s" + std::to_string(i - 1) + ".out"};
    }
    std::string artifact = step.name + ".out";
    std::vector<std::string> reads = step.reads;
    step.action = {step.name, ActionLanguage::Native,
                   [artifact, reads](ActionApi& api) {
                     std::string content;
                     for (const std::string& r : reads)
                       content += api.read_data(r).value_or("?");
                     api.write_data(artifact,
                                    runtime::to_hex(runtime::fnv1a(content)));
                     return ActionResult{0, ""};
                   }};
    flow.steps.push_back(std::move(step));
  }
  return flow;
}

TEST(PersistentCacheStore, ExecutorRestartsWarmAcrossProcessBoundary) {
  TempDir dir("store_exec");
  const FlowTemplate flow = make_flow();
  runtime::ExecutorOptions options;
  options.workers = 2;

  // Process 1: run the flow against the persistent cache, park the
  // journal in the same store, then "kill -9" (drop all memory).
  {
    auto cache = std::make_shared<PersistentResultCache>();
    ASSERT_TRUE(cache->open(dir.path)) << cache->object_store().error();
    runtime::ParallelExecutor exec(flow, {},
                                   std::make_unique<SimpleDataManager>(),
                                   options, cache);
    exec.set_clock(std::make_shared<runtime::SimClock>());
    exec.engine().data().write("inputs.dat", "v1");
    ASSERT_EQ(exec.instantiate({}), "");
    runtime::RunStats stats = exec.run();
    ASSERT_TRUE(exec.complete()) << stats.error;
    EXPECT_EQ(stats.executed, 6);
    ASSERT_TRUE(save_journal(cache->object_store(), exec.journal(), "run"));
  }

  // Process 2: cold-open the store, reload the journal, resume. Every
  // step replays from the rebuilt cache — zero actions re-execute.
  auto cache = std::make_shared<PersistentResultCache>();
  ASSERT_TRUE(cache->open(dir.path)) << cache->object_store().error();
  EXPECT_EQ(cache->recovered(), 6u);
  runtime::RunJournal prior;
  ASSERT_TRUE(load_journal(cache->object_store(), "run", &prior));
  ASSERT_EQ(prior.completed_steps().size(), 6u);

  runtime::ParallelExecutor exec(flow, {},
                                 std::make_unique<SimpleDataManager>(),
                                 options, cache);
  exec.set_clock(std::make_shared<runtime::SimClock>());
  exec.engine().data().write("inputs.dat", "v1");
  ASSERT_EQ(exec.instantiate({}), "");
  runtime::RunStats stats = exec.resume_run(prior);
  ASSERT_TRUE(exec.complete()) << stats.error;
  EXPECT_EQ(stats.executed, 0) << "a warm restart re-executes nothing";
  EXPECT_EQ(stats.resumed, 6);
  EXPECT_EQ(stats.cache_hits, 6);
}

TEST(Store, OpenFailureReportsErrorWithoutCrashing) {
  TempDir dir("store_openfail");
  std::string file = dir.path + "/not-a-dir";
  write_file(file, "plain file");
  ObjectStore store;
  EXPECT_FALSE(store.open(file));
  EXPECT_FALSE(store.error().empty());
  EXPECT_FALSE(store.is_open());
  EXPECT_FALSE(store.put(1, "x"));
}

}  // namespace
}  // namespace interop::store
