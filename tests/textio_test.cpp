#include <gtest/gtest.h>

#include "hdl/parser.hpp"
#include "hdl/sim.hpp"
#include "hdl/synth.hpp"
#include "hdl/writer.hpp"
#include "pnr/backplane.hpp"
#include "pnr/check.hpp"
#include "pnr/generator.hpp"
#include "pnr/route.hpp"
#include "pnr/textio.hpp"
#include "schematic/generator.hpp"
#include "schematic/migrate.hpp"
#include "schematic/textio.hpp"

namespace {

// ------------------------------------------------------ schematic format

class SchTextIo : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchTextIo, DesignRoundTripsLosslessly) {
  using namespace interop::sch;
  GeneratorOptions opt;
  opt.seed = GetParam();
  Scenario sc = make_exar_scenario(opt);

  std::string text = write_design(sc.source);
  interop::base::DiagnosticEngine diags;
  Design back = read_design(text, diags);
  EXPECT_EQ(diags.count(interop::base::Severity::Warning), 0u);

  // Structure identical: same symbols, instances, wires...
  EXPECT_EQ(back.grid(), sc.source.grid());
  EXPECT_EQ(back.symbols().size(), sc.source.symbols().size());
  EXPECT_EQ(back.instance_count(), sc.source.instance_count());
  EXPECT_EQ(back.wire_count(), sc.source.wire_count());

  // ...and the writer is a fixed point (write(read(write)) == write).
  EXPECT_EQ(write_design(back), text);

  // Electrically identical: extraction matches net for net.
  interop::base::DiagnosticEngine d1, d2;
  for (const auto& [cell, sch] : sc.source.schematics()) {
    Netlist a = extract_netlist(sc.source, sch, viewlogic_dialect(), d1);
    Netlist b = extract_netlist(back, *back.find_schematic(cell),
                                viewlogic_dialect(), d2);
    EXPECT_TRUE(compare_netlists(a, b).empty()) << cell;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchTextIo, ::testing::Values(1, 5, 9));

TEST(SchTextIoErrors, RejectsMalformedInput) {
  using namespace interop::sch;
  interop::base::DiagnosticEngine diags;
  EXPECT_THROW(read_design("(not-a-design)", diags), std::runtime_error);
  EXPECT_THROW(read_design("(design (grid 1))", diags), std::runtime_error);
  EXPECT_THROW(read_design("garbage ((", diags), std::exception);
}

TEST(SchTextIoErrors, WarnsOnUnknownFields) {
  using namespace interop::sch;
  interop::base::DiagnosticEngine diags;
  Design d = read_design("(design (grid 1 10) (future-extension 1))", diags);
  EXPECT_EQ(diags.count_code("unknown-field"), 1u);
  EXPECT_EQ(d.grid().pitch(), interop::base::Rational(1, 10));
}

// --------------------------------------------------------- verilog writer

class VerilogRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(VerilogRoundTrip, WriteParsesBackEquivalently) {
  using namespace interop::hdl;
  Module m = parse_module(GetParam());
  std::string text = write_module(m);
  Module back = parse_module(text);
  // The writer is a fixed point of write∘parse.
  EXPECT_EQ(write_module(back), text);
  EXPECT_EQ(back.name, m.name);
  EXPECT_EQ(back.ports.size(), m.ports.size());
  EXPECT_EQ(back.nets.size(), m.nets.size());
  EXPECT_EQ(back.gates.size(), m.gates.size());
  EXPECT_EQ(back.assigns.size(), m.assigns.size());
  EXPECT_EQ(back.always_blocks.size(), m.always_blocks.size());
  EXPECT_EQ(back.initial_blocks.size(), m.initial_blocks.size());
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, VerilogRoundTrip,
    ::testing::Values(
        R"(module t(a, y); input a; output y; assign y = !a; endmodule)",
        R"(module t(); wire [3:0] v; assign v = 4'b10xz; endmodule)",
        R"(module t(a, b, q); input a, b; output q; reg q;
           always @(a or b) begin
             if (a == b) q = a & b | !a; else q = a ^ b;
           end endmodule)",
        R"(module t(); reg clk; initial begin clk = 0;
           forever #5 clk = !clk; end endmodule)",
        R"(module t(c, q); input c; output q; reg q; wire [1:0] s;
           assign s = 2'b01;
           always @(s or c) begin
             case (s) 2'b00: q = 0; 2'b01: q = c; default: q = 1; endcase
           end endmodule)",
        R"(module t(); wire a, b, y; nand g1 (y, a, b);
           not (a, y); endmodule)"));

TEST(VerilogWriter, SynthesizedNetlistSimulatesViaText) {
  // The full §3 hand-off: synthesize, WRITE the netlist to text, parse it
  // back as "the other tool" would, simulate.
  using namespace interop::hdl;
  Module rtl = parse_module(R"(
    module t(s, a, b, y); input s, a, b; output y; reg y;
      always @(s or a or b) begin
        if (s) y = a; else y = b;
      end
    endmodule)");
  SynthResult syn = synthesize(rtl, vendor_a_subset());
  ASSERT_TRUE(syn.ok);
  std::string text = write_module(syn.netlist);
  SourceUnit unit = parse(text);
  ElabDesign design = elaborate(unit, "t_syn");
  Simulation sim(design, SchedulerPolicy::SourceOrder);
  sim.force(design.signal("t_syn.s"), Logic::L1);
  sim.force(design.signal("t_syn.a"), Logic::L0);
  sim.force(design.signal("t_syn.b"), Logic::L1);
  sim.run(0);
  EXPECT_EQ(sim.value("t_syn.y"), Logic::L0);
}

TEST(VerilogWriter, PrecedenceParenthesization) {
  using namespace interop::hdl;
  // (a | b) & c must not round-trip into a | b & c.
  Module m = parse_module(
      "module t(); wire a, b, c, y; assign y = (a | b) & c; endmodule");
  Module back = parse_module(write_module(m));
  const Expr& e = *back.assigns[0].rhs;
  EXPECT_EQ(e.bin_op, BinOp::And);
  EXPECT_EQ(e.operands[0]->bin_op, BinOp::Or);
}

// ------------------------------------------------------------ tool decks

class PnrDeck : public ::testing::TestWithParam<int> {};

TEST_P(PnrDeck, DeckRoundTripsAndRoutesIdentically) {
  using namespace interop::pnr;
  ToolCaps caps = GetParam() == 0   ? router_alpha_caps()
                  : GetParam() == 1 ? router_beta_caps()
                                    : router_gamma_caps();
  PnrGenOptions opt;
  opt.seed = 4;
  PhysDesign design = make_pnr_workload(opt);
  interop::base::DiagnosticEngine d1, d2;
  LossReport loss;
  ToolInput input = export_via_backplane(design, caps, loss, d1);

  std::string deck = write_tool_input(input);
  ToolInput back = read_tool_input(deck, caps, d2);

  // The writer is a fixed point through the tool's own reader.
  EXPECT_EQ(write_tool_input(back), deck);

  // Routing the parsed deck gives the identical result.
  RouteResult r1 = route(input);
  RouteResult r2 = route(back);
  EXPECT_EQ(r1.wirelength, r2.wirelength);
  EXPECT_EQ(r1.failed_nets, r2.failed_nets);
  CheckResult c1 = check_routes(design, r1);
  CheckResult c2 = check_routes(design, r2);
  EXPECT_EQ(c1.total(), c2.total());
}

INSTANTIATE_TEST_SUITE_P(Tools, PnrDeck, ::testing::Values(0, 1, 2));

TEST(PnrDeckSemantics, ForeignRecordsAreIgnoredNotErrors) {
  // Feed an Alpha-style deck (ACCESS/CONN records) to Gamma: a real tool
  // skips what it does not understand — and the information is simply gone.
  using namespace interop::pnr;
  PnrGenOptions opt;
  opt.seed = 4;
  PhysDesign design = make_pnr_workload(opt);
  interop::base::DiagnosticEngine d1, d2;
  ToolInput alpha_input = export_direct(design, router_alpha_caps(), d1);
  std::string deck = write_tool_input(alpha_input);

  ToolInput as_gamma = read_tool_input(deck, router_gamma_caps(), d2);
  EXPECT_GT(d2.count_code("deck-ignored"), 0u);
  for (const ToolInput::PinRecord& pin : as_gamma.pins) {
    EXPECT_FALSE(pin.access.has_value());
    EXPECT_FALSE(pin.conn.has_value());
  }
  for (const ToolInput::NetRecord& net : as_gamma.nets) {
    EXPECT_FALSE(net.width.has_value());
    EXPECT_FALSE(net.shield.has_value());
  }
  EXPECT_TRUE(as_gamma.keepouts.empty());
}

TEST(PnrDeckErrors, MalformedDecksRejected) {
  using namespace interop::pnr;
  interop::base::DiagnosticEngine diags;
  EXPECT_THROW(read_tool_input("DIE 0 0\nENDDECK\n", router_alpha_caps(),
                               diags),
               std::runtime_error);
  EXPECT_THROW(read_tool_input("TOOLDECK x\n", router_alpha_caps(), diags),
               std::runtime_error);  // missing ENDDECK
  EXPECT_THROW(read_tool_input("TERM a b\nENDDECK\n", router_alpha_caps(),
                               diags),
               std::runtime_error);  // TERM outside NET
}

}  // namespace
