#include <gtest/gtest.h>

#include "workflow/data.hpp"

namespace interop::wf {
namespace {

TEST(SimpleData, WriteReadTimestamp) {
  SimpleDataManager dm;
  EXPECT_FALSE(dm.exists("rtl.v"));
  dm.write("rtl.v", "module m; endmodule");
  ASSERT_TRUE(dm.exists("rtl.v"));
  EXPECT_EQ(*dm.read("rtl.v"), "module m; endmodule");
  LogicalTime t1 = *dm.timestamp("rtl.v");
  dm.write("rtl.v", "v2");
  EXPECT_GT(*dm.timestamp("rtl.v"), t1);
  EXPECT_EQ(*dm.read("rtl.v"), "v2");
  EXPECT_EQ(dm.list().size(), 1u);
}

TEST(SimpleData, ListenerFiresOnWrite) {
  SimpleDataManager dm;
  std::vector<std::string> events;
  dm.add_listener([&events](const std::string& path, LogicalTime t) {
    events.push_back(path + "@" + std::to_string(t));
  });
  dm.write("a", "1");
  dm.write("b", "2");
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0], "a@1");
  EXPECT_EQ(events[1], "b@2");
}

TEST(VersioningData, KeepsRevisionChain) {
  VersioningDataManager dm;
  dm.write("spec.txt", "v1");
  dm.write("spec.txt", "v2");
  dm.write("spec.txt", "v3");
  EXPECT_EQ(dm.revision_count("spec.txt"), 3u);
  EXPECT_EQ(*dm.read("spec.txt"), "v3");
  EXPECT_EQ(*dm.read_revision("spec.txt", 1), "v1");
  EXPECT_EQ(*dm.read_revision("spec.txt", 2), "v2");
  EXPECT_FALSE(dm.read_revision("spec.txt", 4).has_value());
  EXPECT_FALSE(dm.read_revision("other", 1).has_value());
  EXPECT_EQ(dm.revision_count("other"), 0u);
}

TEST(VersioningData, BehavesLikeDataManagerPolymorphically) {
  std::unique_ptr<DataManager> dm =
      std::make_unique<VersioningDataManager>();
  dm->write("x", "1");
  EXPECT_TRUE(dm->exists("x"));
  EXPECT_EQ(*dm->read("x"), "1");
}

TEST(Variables, SetGet) {
  VariablePool pool;
  EXPECT_FALSE(pool.has("sim_status"));
  pool.set("sim_status", "clean");
  EXPECT_EQ(*pool.get("sim_status"), "clean");
  pool.set("sim_status", "dirty");
  EXPECT_EQ(*pool.get("sim_status"), "dirty");
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_FALSE(pool.get("absent").has_value());
}

}  // namespace
}  // namespace interop::wf
