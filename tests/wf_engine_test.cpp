#include "workflow/engine.hpp"

#include <gtest/gtest.h>

#include "workflow/adhoc.hpp"

namespace interop::wf {
namespace {

Action ok_action(const std::string& name,
                 ActionLanguage lang = ActionLanguage::Shell) {
  return {name, lang, [](ActionApi&) { return ActionResult{0, "ok"}; }};
}

// A small RTL-ish flow: spec -> rtl -> (lint, sim) -> signoff.
FlowTemplate make_flow() {
  FlowTemplate flow;
  flow.name = "rtl_flow";
  StepDef spec{"spec", {"write_spec", ActionLanguage::Perl,
                        [](ActionApi& api) {
                          api.write_data("spec.txt", "the spec");
                          return ActionResult{0, ""};
                        }},
               {}, {}, {}, {"spec.txt"}, "", "", ""};
  StepDef rtl{"rtl", {"write_rtl", ActionLanguage::Native,
                      [](ActionApi& api) {
                        auto spec_data = api.read_data("spec.txt");
                        api.write_data("rtl.v", "rtl for " + *spec_data);
                        return ActionResult{0, ""};
                      }},
              {"spec"}, {}, {"spec.txt"}, {"rtl.v"}, "", "", ""};
  StepDef lint{"lint", ok_action("lint"), {"rtl"}, {}, {"rtl.v"}, {}, "", "", ""};
  StepDef sim{"sim", {"simulate", ActionLanguage::CLang,
                      [](ActionApi& api) {
                        api.set_variable("sim_status", "clean");
                        return ActionResult{0, ""};
                      }},
              {"rtl"}, {}, {"rtl.v"}, {"sim.log"}, "", "", ""};
  StepDef signoff{"signoff", ok_action("signoff"), {"lint", "sim"},
                  {}, {}, {}, "manager", "", ""};
  flow.steps = {spec, rtl, lint, sim, signoff};
  return flow;
}

TEST(FlowTemplate, ValidatesDag) {
  FlowTemplate flow = make_flow();
  EXPECT_EQ(flow.validate(), "");

  FlowTemplate cyclic;
  cyclic.name = "c";
  cyclic.steps = {{"a", {}, {"b"}, {}, {}, {}, "", "", ""},
                  {"b", {}, {"a"}, {}, {}, {}, "", "", ""}};
  EXPECT_NE(cyclic.validate().find("cycle"), std::string::npos);

  FlowTemplate unknown;
  unknown.steps = {{"a", {}, {"ghost"}, {}, {}, {}, "", "", ""}};
  EXPECT_NE(unknown.validate().find("unknown"), std::string::npos);

  FlowTemplate dup;
  dup.steps = {{"a", {}, {}, {}, {}, {}, "", "", ""},
               {"a", {}, {}, {}, {}, {}, "", "", ""}};
  EXPECT_NE(dup.validate().find("duplicate"), std::string::npos);
}

TEST(Engine, RunsInDependencyOrder) {
  Engine engine(make_flow(), {}, std::make_unique<SimpleDataManager>(),
                "manager");
  ASSERT_EQ(engine.instantiate({}), "");
  int ran = engine.run_all();
  EXPECT_EQ(ran, 5);
  EXPECT_TRUE(engine.complete());
  EXPECT_EQ(*engine.data().read("rtl.v"), "rtl for the spec");
  EXPECT_EQ(*engine.variables().get("sim_status"), "clean");
}

TEST(Engine, StepNotRunnableBeforeDeps) {
  Engine engine(make_flow(), {}, std::make_unique<SimpleDataManager>());
  ASSERT_EQ(engine.instantiate({}), "");
  EXPECT_FALSE(engine.run_step("rtl"));
  EXPECT_NE(engine.last_error().find("not runnable"), std::string::npos);
  EXPECT_TRUE(engine.run_step("spec"));
  EXPECT_TRUE(engine.run_step("rtl"));
}

TEST(Engine, PermissionsEnforced) {
  Engine engineer(make_flow(), {}, std::make_unique<SimpleDataManager>(),
                  "engineer");
  ASSERT_EQ(engineer.instantiate({}), "");
  engineer.run_all();
  // Everything except the manager-only signoff.
  EXPECT_FALSE(engineer.complete());
  EXPECT_EQ(engineer.status_report().at("signoff"), StepState::Ready);
  EXPECT_FALSE(engineer.run_step("signoff"));
  EXPECT_NE(engineer.last_error().find("may not run"), std::string::npos);
}

TEST(Engine, DefaultStatusPolicyZeroNonzero) {
  FlowTemplate flow;
  flow.name = "f";
  flow.steps = {
      {"bad", {"fails", ActionLanguage::Shell,
               [](ActionApi&) { return ActionResult{3, "boom"}; }},
       {}, {}, {}, {}, "", "", ""},
      {"after", ok_action("after"), {"bad"}, {}, {}, {}, "", "", ""}};
  Engine engine(flow, {}, std::make_unique<SimpleDataManager>());
  ASSERT_EQ(engine.instantiate({}), "");
  engine.run_all();
  EXPECT_EQ(engine.status_report().at("bad"), StepState::Failed);
  // Downstream never became ready.
  EXPECT_EQ(engine.status_report().at("after"), StepState::Waiting);
  EXPECT_EQ(engine.metrics().failures, 1);
}

TEST(Engine, ExplicitCompletionOverridesExitCode) {
  FlowTemplate flow;
  flow.name = "f";
  flow.steps = {
      // Exit code 1, but the action declares success through the API.
      {"odd_tool", {"odd", ActionLanguage::Tcl,
                    [](ActionApi& api) {
                      api.set_step_state_success();
                      return ActionResult{1, "tool exits 1 on success"};
                    }},
       {}, {}, {}, {}, "", "", ""},
      // Exit code 0, but the action knows better (§5: "based on whatever
      // criteria is necessary").
      {"sneaky", {"sneaky", ActionLanguage::Shell,
                  [](ActionApi& api) {
                    api.set_step_state_failure("log contains ERROR");
                    return ActionResult{0, ""};
                  }},
       {}, {}, {}, {}, "", "", ""}};
  Engine engine(flow, {}, std::make_unique<SimpleDataManager>());
  ASSERT_EQ(engine.instantiate({}), "");
  engine.run_all();
  EXPECT_EQ(engine.status_report().at("odd_tool"), StepState::Succeeded);
  EXPECT_EQ(engine.status_report().at("sneaky"), StepState::Failed);
}

TEST(Engine, FinishDependencyParksStep) {
  FlowTemplate flow;
  flow.name = "f";
  flow.steps = {
      {"slow", ok_action("slow"), {}, {}, {}, {}, "", "", ""},
      // quick must not COMPLETE before slow completes.
      {"quick", ok_action("quick"), {}, {"slow"}, {}, {}, "", "", ""}};
  Engine engine(flow, {}, std::make_unique<SimpleDataManager>());
  ASSERT_EQ(engine.instantiate({}), "");
  ASSERT_TRUE(engine.run_step("quick"));
  EXPECT_EQ(engine.status_report().at("quick"), StepState::AwaitingFinish);
  ASSERT_TRUE(engine.run_step("slow"));
  EXPECT_EQ(engine.status_report().at("quick"), StepState::Succeeded);
}

TEST(Engine, TriggerMarksDownstreamForRework) {
  Engine engine(make_flow(), {}, std::make_unique<SimpleDataManager>(),
                "manager");
  ASSERT_EQ(engine.instantiate({}), "");
  engine.run_all();
  ASSERT_TRUE(engine.complete());
  engine.clear_notifications();

  // The spec changes after the fact.
  engine.data().write("spec.txt", "the spec, revised");
  EXPECT_EQ(engine.status_report().at("rtl"), StepState::NeedsRerun);
  ASSERT_EQ(engine.notifications().size(), 1u);
  EXPECT_NE(engine.notifications()[0].find("rtl"), std::string::npos);

  // Re-running rtl rewrites rtl.v, which cascades to lint and sim.
  int ran = engine.run_all();
  EXPECT_GE(ran, 3);  // rtl + lint + sim (signoff may or may not rerun)
  EXPECT_TRUE(engine.complete());
  EXPECT_EQ(*engine.data().read("rtl.v"), "rtl for the spec, revised");
  EXPECT_GT(engine.metrics().reruns, 0);
}

TEST(Engine, ResetStepCascadesDownstream) {
  Engine engine(make_flow(), {}, std::make_unique<SimpleDataManager>(),
                "manager");
  ASSERT_EQ(engine.instantiate({}), "");
  engine.run_all();
  ASSERT_TRUE(engine.reset_step("rtl"));
  auto report = engine.status_report();
  EXPECT_EQ(report.at("spec"), StepState::Succeeded);  // upstream untouched
  EXPECT_EQ(report.at("rtl"), StepState::Ready);       // deps still met
  EXPECT_EQ(report.at("lint"), StepState::Waiting);
  EXPECT_EQ(report.at("sim"), StepState::Waiting);
  EXPECT_EQ(report.at("signoff"), StepState::Waiting);
}

TEST(Engine, ResetRequiresPermission) {
  FlowTemplate flow;
  flow.name = "f";
  flow.steps = {{"locked", ok_action("locked"), {}, {}, {}, {}, "cad_admin",
                 "", ""}};
  Engine engine(flow, {}, std::make_unique<SimpleDataManager>(), "engineer");
  ASSERT_EQ(engine.instantiate({}), "");
  EXPECT_FALSE(engine.reset_step("locked"));
}

TEST(Engine, HierarchicalSubflowsPerBlock) {
  FlowTemplate sub;
  sub.name = "block_flow";
  sub.steps = {
      {"syn", ok_action("syn"), {}, {}, {"netlist.spec"}, {"netlist.v"}, "",
       "", ""},
      {"sta", ok_action("sta"), {"syn"}, {}, {"netlist.v"}, {}, "", "", ""}};
  FlowTemplate main;
  main.name = "chip";
  main.steps = {
      {"partition", ok_action("partition"), {}, {}, {}, {}, "", "", ""},
      {"blocks", {}, {"partition"}, {}, {}, {}, "", "block_flow", ""},
      {"assemble", ok_action("assemble"), {"blocks"}, {}, {}, {}, "", "", ""}};

  Engine engine(main, {{"block_flow", sub}},
                std::make_unique<SimpleDataManager>());
  ASSERT_EQ(engine.instantiate({"cpu", "cache"}), "");

  // Expanded: partition, cpu:syn, cpu:sta, cache:syn, cache:sta, assemble.
  EXPECT_EQ(engine.instance().steps.size(), 6u);
  ASSERT_NE(engine.instance().find("cpu:syn"), nullptr);
  EXPECT_EQ(engine.instance().find("cpu:syn")->block, "cpu");
  // Data namespaces are per block.
  EXPECT_EQ(engine.instance().find("cpu:syn")->def.writes[0],
            "cpu/netlist.v");

  engine.run_all();
  EXPECT_TRUE(engine.complete());
  // assemble ran only after all block sub-steps.
  EXPECT_EQ(engine.status_report().at("assemble"), StepState::Succeeded);
}

TEST(Engine, SubflowStatusIsPerBlock) {
  FlowTemplate sub;
  sub.name = "bf";
  int cpu_runs = 0;
  sub.steps = {{"syn",
                {"syn", ActionLanguage::Native,
                 [&cpu_runs](ActionApi& api) {
                   if (api.step() == "cpu:syn") {
                     ++cpu_runs;
                     return ActionResult{1, "cpu syn fails"};
                   }
                   return ActionResult{0, ""};
                 }},
                {}, {}, {}, {}, "", "", ""}};
  FlowTemplate main;
  main.name = "chip";
  main.steps = {{"blocks", {}, {}, {}, {}, {}, "", "bf", ""}};
  Engine engine(main, {{"bf", sub}}, std::make_unique<SimpleDataManager>());
  ASSERT_EQ(engine.instantiate({"cpu", "cache"}), "");
  engine.run_all();
  EXPECT_EQ(engine.status_report().at("cpu:syn"), StepState::Failed);
  EXPECT_EQ(engine.status_report().at("cache:syn"), StepState::Succeeded);
  EXPECT_EQ(cpu_runs, 1);
}

TEST(Engine, LongRunningToolSessionReused) {
  FlowTemplate flow;
  flow.name = "f";
  auto talk = [](ActionApi& api) {
    api.tool_request("synthesizer", "load");
    api.tool_request("synthesizer", "compile");
    return ActionResult{0, ""};
  };
  flow.steps = {{"s1", {"s1", ActionLanguage::Native, talk}, {}, {}, {}, {},
                 "", "", ""},
                {"s2", {"s2", ActionLanguage::Native, talk}, {"s1"}, {}, {},
                 {}, "", "", ""}};
  Engine engine(flow, {}, std::make_unique<SimpleDataManager>());
  ASSERT_EQ(engine.instantiate({}), "");
  engine.run_all();
  // One tool spawn, four requests over the living session.
  EXPECT_EQ(engine.metrics().tool_spawns, 1);
  EXPECT_EQ(engine.metrics().tool_requests, 4);
  EXPECT_EQ(engine.tool("synthesizer").requests_served(), 4);
}

TEST(Engine, LivelockDetectedAndReported) {
  // ping writes a.dat and reads b.dat; pong reads a.dat and writes b.dat.
  // Every success marks the other NeedsRerun: without detection run_all()
  // would spin to its guard silently. Now it stops with a diagnostic.
  FlowTemplate flow;
  flow.name = "osc";
  flow.steps = {
      {"ping", {"ping", ActionLanguage::Native,
                [](ActionApi& api) {
                  api.write_data("a.dat",
                                 api.read_data("b.dat").value_or("") + "p");
                  return ActionResult{0, ""};
                }},
       {}, {}, {"b.dat"}, {"a.dat"}, "", "", ""},
      {"pong", {"pong", ActionLanguage::Native,
                [](ActionApi& api) {
                  api.write_data("b.dat",
                                 api.read_data("a.dat").value_or("") + "q");
                  return ActionResult{0, ""};
                }},
       {}, {}, {"a.dat"}, {"b.dat"}, "", "", ""}};
  Engine engine(flow, {}, std::make_unique<SimpleDataManager>());
  ASSERT_EQ(engine.instantiate({}), "");
  engine.set_livelock_limit(5);
  int executed = engine.run_all();
  EXPECT_LE(executed, 2 * 5 + 2);  // bounded, not the silent old guard
  EXPECT_NE(engine.last_error().find("livelock"), std::string::npos);
  // The diagnostic reaches the user as a notification too.
  bool notified = false;
  for (const std::string& n : engine.notifications())
    if (n.find("livelock") != std::string::npos) notified = true;
  EXPECT_TRUE(notified);
}

TEST(Engine, HealthyRerunCascadeIsNotLivelock) {
  Engine engine(make_flow(), {}, std::make_unique<SimpleDataManager>(),
                "manager");
  ASSERT_EQ(engine.instantiate({}), "");
  engine.run_all();
  ASSERT_TRUE(engine.complete());
  // A legitimate upstream change causes a finite cascade, no diagnostic.
  engine.data().write("spec.txt", "revised");
  engine.run_all();
  EXPECT_TRUE(engine.complete());
  EXPECT_EQ(engine.last_error().find("livelock"), std::string::npos);
}

// ---------------------------------------------------------------- ad hoc

TEST(Adhoc, WrongOrderAndMissedRework) {
  FlowTemplate flow = make_flow();
  SimpleDataManager data;
  // The script author remembered the order wrong (lint before rtl) and
  // nobody re-runs anything when the spec changes mid-run.
  std::vector<std::string> script = {"spec", "lint", "rtl", "sim", "signoff"};
  AdhocMetrics m = run_adhoc(flow, script, data,
                             [](DataManager& dm) {
                               dm.write("spec.txt", "revised spec");
                             },
                             /*change_after=*/3);
  EXPECT_EQ(m.steps_run, 5);
  EXPECT_GE(m.dependency_violations, 1);  // lint before rtl
  EXPECT_GE(m.missed_rework, 1);          // rtl is stale vs revised spec
  EXPECT_GE(m.status_lies, 1);
}

TEST(Adhoc, EngineCatchesWhatTheScriptMisses) {
  // The same scenario through the engine: order is enforced and the change
  // triggers rework, so nothing ends up stale.
  Engine engine(make_flow(), {}, std::make_unique<SimpleDataManager>(),
                "manager");
  ASSERT_EQ(engine.instantiate({}), "");
  engine.run_all();
  engine.data().write("spec.txt", "revised spec");
  engine.run_all();
  EXPECT_TRUE(engine.complete());
  // No step is stale: every reader of spec.txt reran.
  for (const auto& [name, status] : engine.instance().steps) {
    for (const std::string& path : status.def.reads) {
      auto t = engine.data().timestamp(path);
      if (t) EXPECT_LE(*t, status.last_finished) << name;
    }
  }
}

}  // namespace
}  // namespace interop::wf
