// interop_fuzz — coverage-guided differential interop fuzzer (driver).
//
// Subcommands:
//   run       fuzz for N iterations or a wall-time budget (the default)
//   replay    re-run every reproducer in a corpus directory
//   one       run the pipeline for a single spec file and print the result
//   minimize  shrink a diverging spec file to its minimal form
//
// `run` exits 0 when every divergence encountered is explained by the
// paper's catalogue (model races, sensitivity-list completion, reported
// backplane loss) and 1 when an unexplained divergence was found — in
// which case a minimized reproducer has been written to --corpus-dir.

#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "fuzz/corpus.hpp"
#include "fuzz/fuzzer.hpp"
#include "fuzz/minimize.hpp"
#include "fuzz/pipeline.hpp"
#include "fuzz/spec.hpp"

namespace {

using namespace interop::fuzz;

int usage() {
  std::cerr <<
      "usage: interop_fuzz [run] [--seed S] [--iters N] [--jobs J]\n"
      "                    [--generation-size G] [--time-budget-ms MS]\n"
      "                    [--corpus-dir DIR] [--stats-json FILE] [-v]\n"
      "       interop_fuzz replay --corpus-dir DIR\n"
      "       interop_fuzz one --spec FILE\n"
      "       interop_fuzz minimize --spec FILE [--out FILE]\n";
  return 2;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open: " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

void print_result(const FuzzSpec& spec, const PipelineResult& result) {
  std::cout << "designs=" << result.designs
            << " round_trips=" << result.round_trips
            << " features=" << result.features.size()
            << " bitmap=" << result.bitmap.count() << "\n";
  for (const std::string& f : result.features) std::cout << "  " << f << "\n";
  for (const Divergence& d : result.divergences) {
    std::cout << (d.explained ? "explained " : "UNEXPLAINED ") << d.kind
              << ": " << d.detail << "\n";
    if (d.explained) std::cout << "  because: " << d.explanation << "\n";
  }
  std::cout << "expectation: " << expectation_for(result) << "\n";
  std::cout << "spec:\n" << to_text(spec);
}

void write_stats_json(const std::string& path, const FuzzOptions& opt,
                      const FuzzStats& stats) {
  std::ofstream out(path);
  out << "{\n"
      << "  \"seed\": " << opt.seed << ",\n"
      << "  \"jobs\": " << opt.jobs << ",\n"
      << "  \"generations\": " << stats.generations << ",\n"
      << "  \"evaluated\": " << stats.evaluated << ",\n"
      << "  \"minimize_evaluations\": " << stats.minimize_evaluations << ",\n"
      << "  \"designs\": " << stats.designs << ",\n"
      << "  \"round_trips\": " << stats.round_trips << ",\n"
      << "  \"seeds_kept\": " << stats.seeds_kept << ",\n"
      << "  \"coverage\": " << stats.coverage << ",\n"
      << "  \"bitmap_hash\": \"" << std::hex << stats.bitmap_hash << std::dec
      << "\",\n"
      << "  \"divergences_explained\": " << stats.divergences_explained
      << ",\n"
      << "  \"divergences_unexplained\": " << stats.divergences_unexplained
      << ",\n"
      << "  \"reproducers\": " << stats.reproducers.size() << ",\n"
      << "  \"elapsed_ms\": " << stats.elapsed_ms << ",\n"
      << "  \"designs_per_sec\": "
      << (stats.elapsed_ms > 0
              ? 1000.0 * stats.designs / double(stats.elapsed_ms)
              : 0.0)
      << ",\n  \"coverage_curve\": [";
  for (std::size_t i = 0; i < stats.coverage_curve.size(); ++i) {
    if (i) out << ", ";
    out << "[" << stats.coverage_curve[i].first << ", "
        << stats.coverage_curve[i].second << "]";
  }
  out << "]\n}\n";
}

int cmd_run(const FuzzOptions& opt, const std::string& stats_json) {
  FuzzStats stats = fuzz(opt);
  std::cout << "interop_fuzz: " << stats.evaluated << " specs, "
            << stats.designs << " designs, " << stats.round_trips
            << " round-trips in " << stats.elapsed_ms << " ms";
  if (stats.elapsed_ms > 0)
    std::cout << " (" << 1000.0 * stats.designs / double(stats.elapsed_ms)
              << " designs/s)";
  std::cout << "\ncoverage: " << stats.coverage << " features (bitmap hash "
            << std::hex << stats.bitmap_hash << std::dec << "), "
            << stats.seeds_kept << " seeds kept\n"
            << "divergences: " << stats.divergences_explained
            << " explained, " << stats.divergences_unexplained
            << " unexplained\n";
  if (!stats_json.empty()) write_stats_json(stats_json, opt, stats);
  if (!stats.reproducers.empty()) {
    std::cout << "UNEXPLAINED divergences — minimized reproducers:\n";
    for (std::size_t i = 0; i < stats.reproducers.size(); ++i) {
      const Reproducer& r = stats.reproducers[i];
      std::cout << "  " << r.name << " (" << r.expect << ")";
      if (i < stats.reproducer_paths.size())
        std::cout << " -> " << stats.reproducer_paths[i];
      std::cout << "\n";
    }
    return 1;
  }
  std::cout << "no unexplained divergences\n";
  return 0;
}

int cmd_replay(const std::string& corpus_dir) {
  if (corpus_dir.empty()) return usage();
  int failures = 0, total = 0;
  for (const std::string& path : list_reproducers(corpus_dir)) {
    ++total;
    try {
      Reproducer repro = load_reproducer(path);
      std::string error = replay_reproducer(repro);
      if (error.empty()) {
        std::cout << "PASS " << repro.name << " (" << repro.expect << ")\n";
      } else {
        std::cout << "FAIL " << error << "\n";
        ++failures;
      }
    } catch (const std::exception& e) {
      std::cout << "FAIL " << path << ": " << e.what() << "\n";
      ++failures;
    }
  }
  std::cout << total - failures << "/" << total << " reproducers pass\n";
  return failures == 0 ? 0 : 1;
}

// --spec accepts either a bare key=value spec or a corpus .repro file
// (leading '#' comments + an expect= line). Comments and the expectation
// are dropped here — `replay` is the command that checks verdicts.
FuzzSpec load_spec(const std::string& path) {
  std::istringstream in(read_file(path));
  std::string kept, line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#' || line.rfind("expect=", 0) == 0)
      continue;
    kept += line;
    kept += '\n';
  }
  return spec_from_text(kept);
}

int cmd_one(const std::string& spec_path) {
  if (spec_path.empty()) return usage();
  FuzzSpec spec = load_spec(spec_path);
  PipelineResult result = run_pipeline(spec);
  print_result(spec, result);
  return result.has_unexplained() ? 1 : 0;
}

int cmd_minimize(const std::string& spec_path, const std::string& out_path) {
  if (spec_path.empty()) return usage();
  FuzzSpec spec = load_spec(spec_path);
  std::string signature = run_pipeline(spec).signature();
  if (signature.empty()) {
    std::cerr << "interop_fuzz: spec has no unexplained divergence to "
                 "minimize against\n";
    return 1;
  }
  MinimizeResult shrunk = minimize(spec, signature_predicate(signature));
  std::cout << "signature: " << signature << "\n"
            << "evaluations: " << shrunk.evaluations << "\n"
            << "axes at minimum: " << shrunk.axes_floored << "\n"
            << to_text(shrunk.spec);
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << to_text(shrunk.spec);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string command = "run";
  int arg = 1;
  if (arg < argc && argv[arg][0] != '-') command = argv[arg++];

  FuzzOptions opt;
  std::string stats_json, spec_path, out_path;
  try {
    for (; arg < argc; ++arg) {
      std::string flag = argv[arg];
      auto value = [&]() -> std::string {
        if (arg + 1 >= argc)
          throw std::runtime_error("missing value for " + flag);
        return argv[++arg];
      };
      if (flag == "--seed") opt.seed = std::stoull(value());
      else if (flag == "--iters") opt.iterations = std::stoi(value());
      else if (flag == "--jobs") opt.jobs = std::stoi(value());
      else if (flag == "--generation-size")
        opt.generation_size = std::stoi(value());
      else if (flag == "--time-budget-ms")
        opt.time_budget_ms = std::stoll(value());
      else if (flag == "--corpus-dir") opt.corpus_dir = value();
      else if (flag == "--stats-json") stats_json = value();
      else if (flag == "--spec") spec_path = value();
      else if (flag == "--out") out_path = value();
      else if (flag == "-v" || flag == "--verbose") opt.verbose = true;
      else return usage();
    }

    if (command == "run") return cmd_run(opt, stats_json);
    if (command == "replay") return cmd_replay(opt.corpus_dir);
    if (command == "one") return cmd_one(spec_path);
    if (command == "minimize") return cmd_minimize(spec_path, out_path);
  } catch (const std::exception& e) {
    std::cerr << "interop_fuzz: " << e.what() << "\n";
    return 2;
  }
  return usage();
}
