// interopd — the long-lived interop daemon, plus a tiny client mode.
//
// `interopd serve` hosts an InteropService (resident dialect tables, tool
// models, and the shared ResultCache) on a unix-domain socket, speaking
// the length-prefixed wire protocol from src/service/wire.hpp. Each
// connection is served synchronously (one request in flight per
// connection; concurrency comes from concurrent connections feeding the
// service's bounded queue). SIGTERM/SIGINT — or a wire-level Drain
// request — triggers a graceful drain: stop admitting, finish every
// queued and in-flight request, flush the store, then exit 0 printing
// "drained".
//
// `--store DIR` backs the resident ResultCache with the crash-consistent
// ObjectStore (src/store): every cached step effect is durable before it
// is served, so a daemon killed with SIGKILL mid-request restarts into a
// warm cache — the same flow request replays from disk with zero actions
// re-executed.
//
// `interopd client` drives one request against a running daemon and
// prints the response; it exists so CI can smoke the real socket path
// (migrate + flow-run + drain) with nothing but this binary.
//
// Usage:
//   interopd serve  --socket PATH [--workers N] [--flow-workers N]
//                   [--queue N] [--timeout-us N]
//                   [--flow-max-batch N] [--flow-batch-threshold-us N]
//                   [--no-flow-stealing] [--store DIR]
//                   [--al-engine bytecode|tree-walker]
//   interopd client --socket PATH ping|metrics|drain
//   interopd client --socket PATH migrate [--seed N] [--tenant T]
//   interopd client --socket PATH netlist [--seed N] [--dialect D] [--tenant T]
//   interopd client --socket PATH flow [--width N] [--latency-us N]
//                   [--seed N] [--tenant T]

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstring>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "base/diagnostics.hpp"
#include "schematic/generator.hpp"
#include "schematic/textio.hpp"
#include "service/service.hpp"
#include "service/wire.hpp"

using namespace interop;
using service::FrameReader;
using service::InteropService;
using service::MsgType;
using service::Request;
using service::Response;
using service::ServiceOptions;
using service::Status;

namespace {

std::atomic<int> g_signal{0};

void on_signal(int sig) { g_signal.store(sig); }

bool send_all(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
#ifdef MSG_NOSIGNAL
    ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                       MSG_NOSIGNAL);
#else
    ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent, 0);
#endif
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return false;
    }
    sent += std::size_t(n);
  }
  return true;
}

/// Set a receive timeout so blocked reads re-check the stop flag.
void set_recv_timeout(int fd, int ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

int parse_int(const char* s, int fallback) {
  try {
    return std::stoi(s);
  } catch (...) {
    return fallback;
  }
}

std::uint64_t parse_u64(const char* s, std::uint64_t fallback) {
  try {
    return std::stoull(s);
  } catch (...) {
    return fallback;
  }
}

// ------------------------------------------------------------- serve

/// One connection: synchronous request/response until EOF, protocol
/// error, or shutdown. A framing error gets a final Error response (the
/// "clean per-session error" contract) and the session is closed; the
/// daemon itself is unaffected.
void serve_connection(int fd, InteropService& service,
                      const std::atomic<bool>& closing) {
  set_recv_timeout(fd, 200);
  FrameReader reader;
  char buf[4096];
  bool alive = true;
  while (alive && !closing.load()) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n == 0) break;  // peer closed
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
        continue;  // timeout tick: re-check closing
      break;
    }
    reader.feed(std::string_view(buf, std::size_t(n)));
    for (;;) {
      std::string payload, error;
      FrameReader::Result r = reader.next(&payload, &error);
      if (r == FrameReader::Result::NeedMore) break;
      if (r == FrameReader::Result::Bad) {
        Response resp;
        resp.status = Status::Error;
        resp.error = "protocol error: " + error;
        send_all(fd, encode_response(resp));
        alive = false;
        break;
      }
      Request req;
      if (!service::decode_request(payload, &req, &error)) {
        Response resp;
        resp.status = Status::Error;
        resp.error = "bad request: " + error;
        send_all(fd, encode_response(resp));
        alive = false;
        break;
      }
      Response resp = service.call(std::move(req));
      if (!send_all(fd, encode_response(resp))) {
        alive = false;
        break;
      }
    }
  }
  ::close(fd);
}

int cmd_serve(const std::string& socket_path, ServiceOptions opt) {
  ::unlink(socket_path.c_str());
  int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    std::cerr << "interopd: socket: " << std::strerror(errno) << "\n";
    return 1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    std::cerr << "interopd: socket path too long\n";
    return 1;
  }
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd, 64) < 0) {
    std::cerr << "interopd: bind/listen " << socket_path << ": "
              << std::strerror(errno) << "\n";
    ::close(listen_fd);
    return 1;
  }

  struct sigaction sa{};
  sa.sa_handler = on_signal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
#ifdef SIGPIPE
  ::signal(SIGPIPE, SIG_IGN);
#endif

  InteropService svc(opt);
  if (!opt.store_dir.empty()) {
    if (svc.persistent_cache()) {
      std::cout << "interopd: store " << opt.store_dir << " open ("
                << svc.persistent_cache()->recovered()
                << " entries recovered)" << std::endl;
    } else {
      std::cerr << "interopd: store open failed, running memory-only: "
                << svc.store_error() << "\n";
    }
  }
  std::atomic<bool> closing{false};
  std::vector<std::thread> connections;
  std::cout << "interopd: serving on " << socket_path << " (workers="
            << opt.workers << " queue=" << opt.queue_limit << ")"
            << std::endl;

  while (g_signal.load() == 0 && !svc.draining()) {
    pollfd pfd{listen_fd, POLLIN, 0};
    int rc = ::poll(&pfd, 1, 200);
    if (rc < 0 && errno != EINTR) break;
    if (rc <= 0 || !(pfd.revents & POLLIN)) continue;
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) continue;
    connections.emplace_back(
        [fd, &svc, &closing] { serve_connection(fd, svc, closing); });
  }

  // Graceful drain: stop admitting, let every queued and in-flight
  // request finish, then tear the sessions down.
  std::cout << "interopd: draining (" << svc.queued() << " queued, "
            << svc.in_flight() << " in flight)" << std::endl;
  ::close(listen_fd);
  svc.drain();
  closing.store(true);
  for (std::thread& t : connections) t.join();
  ::unlink(socket_path.c_str());
  std::cout << "interopd: drained, exiting" << std::endl;
  return 0;
}

// ------------------------------------------------------------- client

int client_connect(const std::string& socket_path) {
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool client_roundtrip(int fd, const Request& req, Response* resp) {
  if (!send_all(fd, encode_request(req))) return false;
  FrameReader reader;
  char buf[4096];
  for (;;) {
    std::string payload, error;
    FrameReader::Result r = reader.next(&payload, &error);
    if (r == FrameReader::Result::Frame)
      return service::decode_response(payload, resp, &error);
    if (r == FrameReader::Result::Bad) return false;
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return false;
    reader.feed(std::string_view(buf, std::size_t(n)));
  }
}

void print_response(const Response& resp) {
  std::cout << service::to_string(resp.status);
  if (!resp.error.empty()) std::cout << " error=\"" << resp.error << "\"";
  if (resp.retry_after_us > 0)
    std::cout << " retry_after_us=" << resp.retry_after_us;
  for (const auto& [name, value] : resp.counters)
    std::cout << " " << name << "=" << value;
  std::cout << "\n";
  if (!resp.body.empty() && resp.counters.empty() && resp.error.empty()) {
    std::cout << resp.body;
    if (resp.body.back() != '\n') std::cout << "\n";
  }
}

int cmd_client(const std::string& socket_path, Request req) {
  int fd = client_connect(socket_path);
  if (fd < 0) {
    std::cerr << "interopd client: cannot connect to " << socket_path
              << ": " << std::strerror(errno) << "\n";
    return 1;
  }
  Response resp;
  bool ok = client_roundtrip(fd, req, &resp);
  ::close(fd);
  if (!ok) {
    std::cerr << "interopd client: transport failure\n";
    return 1;
  }
  print_response(resp);
  return resp.status == Status::Ok ? 0 : 1;
}

/// Build the standard Exar-style scenario design for migrate/netlist
/// requests: the client ships the serialized design; the daemon supplies
/// the resident tool models.
std::string scenario_design(std::uint64_t seed) {
  sch::GeneratorOptions gopt;
  gopt.seed = seed;
  return sch::write_design(sch::make_exar_scenario(gopt).source);
}

void usage() {
  std::cerr
      << "usage:\n"
      << "  interopd serve  --socket PATH [--workers N] [--flow-workers N]"
         " [--queue N] [--timeout-us N]\n"
      << "                  [--flow-max-batch N] [--flow-batch-threshold-us N]"
         " [--no-flow-stealing] [--store DIR]\n"
      << "                  [--al-engine bytecode|tree-walker]\n"
      << "  interopd client --socket PATH ping|metrics|drain\n"
      << "  interopd client --socket PATH migrate [--seed N] [--tenant T]\n"
      << "  interopd client --socket PATH netlist [--seed N] [--dialect D]"
         " [--tenant T]\n"
      << "  interopd client --socket PATH flow [--width N] [--latency-us N]"
         " [--seed N] [--tenant T]\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) {
    usage();
    return 2;
  }
  std::string mode = args[0];
  std::string socket_path, command, dialect, tenant = "cli";
  ServiceOptions opt;
  std::uint64_t seed = 1;
  std::uint32_t width = 8, latency_us = 200;

  for (std::size_t i = 1; i < args.size(); ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= args.size()) {
        std::cerr << "interopd: " << flag << " needs a value\n";
        std::exit(2);
      }
      return args[++i].c_str();
    };
    if (args[i] == "--socket") socket_path = next("--socket");
    else if (args[i] == "--workers") opt.workers = parse_int(next("--workers"), opt.workers);
    else if (args[i] == "--flow-workers") opt.flow_workers = parse_int(next("--flow-workers"), opt.flow_workers);
    else if (args[i] == "--flow-max-batch") opt.flow_max_batch = std::size_t(parse_int(next("--flow-max-batch"), int(opt.flow_max_batch)));
    else if (args[i] == "--flow-batch-threshold-us") opt.flow_batch_threshold_us = parse_u64(next("--flow-batch-threshold-us"), 0);
    else if (args[i] == "--no-flow-stealing") opt.flow_work_stealing = false;
    else if (args[i] == "--store") opt.store_dir = next("--store");
    else if (args[i] == "--al-engine") {
      try {
        opt.al_engine = al::parse_engine(next("--al-engine"));
      } catch (const al::AlError& e) {
        std::cerr << "interopd: " << e.what() << "\n";
        return 2;
      }
    }
    else if (args[i] == "--queue") opt.queue_limit = std::size_t(parse_int(next("--queue"), int(opt.queue_limit)));
    else if (args[i] == "--timeout-us") opt.request_timeout_us = parse_u64(next("--timeout-us"), 0);
    else if (args[i] == "--seed") seed = parse_u64(next("--seed"), 1);
    else if (args[i] == "--width") width = std::uint32_t(parse_int(next("--width"), 8));
    else if (args[i] == "--latency-us") latency_us = std::uint32_t(parse_int(next("--latency-us"), 200));
    else if (args[i] == "--dialect") dialect = next("--dialect");
    else if (args[i] == "--tenant") tenant = next("--tenant");
    else if (args[i][0] != '-' && command.empty()) command = args[i];
    else {
      std::cerr << "interopd: unknown argument " << args[i] << "\n";
      usage();
      return 2;
    }
  }
  if (socket_path.empty()) {
    usage();
    return 2;
  }

  if (mode == "serve") return cmd_serve(socket_path, opt);
  if (mode != "client") {
    usage();
    return 2;
  }

  Request req;
  req.id = 1;
  req.tenant = tenant;
  req.seed = seed;
  if (command == "ping") {
    req.type = MsgType::Ping;
  } else if (command == "metrics") {
    req.type = MsgType::Metrics;
  } else if (command == "drain") {
    req.type = MsgType::Drain;
  } else if (command == "migrate") {
    req.type = MsgType::Migrate;
    req.design = scenario_design(seed);
  } else if (command == "netlist") {
    req.type = MsgType::Netlist;
    req.design = scenario_design(seed);
    req.cell = "top";
    req.dialect = dialect;
  } else if (command == "flow") {
    req.type = MsgType::FlowRun;
    req.flow = "fanout";
    req.width = width;
    req.latency_us = latency_us;
  } else {
    usage();
    return 2;
  }
  return cmd_client(socket_path, std::move(req));
}
