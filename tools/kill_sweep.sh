#!/usr/bin/env bash
# Kill -9 sweep against a store-backed interopd: for each seed, complete
# one flow request, then kill -9 the daemon while a second request is
# racing through the service, restart it on the same --store directory,
# and assert the completed request is served entirely from the recovered
# cache (executed=0) and the recovered daemon still drains cleanly.
#
# The per-seed kill delay varies so the SIGKILL lands at different points
# of the in-flight request's write path; the store's WAL protocol must
# make the outcome invariant: everything acked before the kill is warm
# after restart, and recovery never blocks the daemon from coming up.
#
# Usage: tools/kill_sweep.sh <interopd-binary> [seeds]
#   (CI runs 3 seeds on PRs and 20 nightly.)
set -uo pipefail

bin=${1:?usage: kill_sweep.sh <interopd-binary> [seeds]}
seeds=${2:-3}
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT
fail=0

wait_for_socket() {
  for _ in $(seq 1 100); do [ -S "$1" ] && return 0; sleep 0.05; done
  return 1
}

for seed in $(seq 1 "$seeds"); do
  dir="$work/store-$seed"
  sock="$work/s-$seed.sock"

  "$bin" serve --socket "$sock" --store "$dir" --workers 2 \
    > "$work/log1-$seed" 2>&1 &
  dpid=$!
  if ! wait_for_socket "$sock"; then
    echo "seed $seed: FAIL (daemon did not come up)"; fail=1
    kill -9 "$dpid" 2>/dev/null; wait "$dpid" 2>/dev/null
    continue
  fi

  # Request A completes (every cache entry acked-durable before the ack),
  # then request B is mid-flight when the SIGKILL lands.
  "$bin" client --socket "$sock" flow \
    --width 6 --latency-us 200 --seed $((seed * 101)) > /dev/null || {
    echo "seed $seed: FAIL (cold request failed)"; fail=1; }
  "$bin" client --socket "$sock" flow \
    --width 6 --latency-us 5000 --seed $((seed * 101 + 1)) \
    > /dev/null 2>&1 &
  cpid=$!
  sleep "0.0$((1 + seed % 5))"
  kill -9 "$dpid"
  wait "$cpid" 2>/dev/null
  wait "$dpid" 2>/dev/null

  # Restart on the same directory: recovery must come up and request A
  # must be warm — zero actions executed. The killed daemon leaves a
  # stale socket file behind; remove it so wait_for_socket sees the new
  # incarnation's bind, not the corpse's.
  rm -f "$sock"
  "$bin" serve --socket "$sock" --store "$dir" --workers 2 \
    > "$work/log2-$seed" 2>&1 &
  dpid=$!
  if ! wait_for_socket "$sock"; then
    echo "seed $seed: FAIL (daemon did not recover)"; fail=1
    kill -9 "$dpid" 2>/dev/null; wait "$dpid" 2>/dev/null
    continue
  fi
  out=$("$bin" client --socket "$sock" flow \
    --width 6 --latency-us 200 --seed $((seed * 101)))
  kill -TERM "$dpid"
  if ! wait "$dpid"; then
    echo "seed $seed: FAIL (drain after recovery exited nonzero)"; fail=1
  fi
  if ! grep -q 'entries recovered' "$work/log2-$seed"; then
    echo "seed $seed: FAIL (no recovery line in restart log)"; fail=1
  fi
  case "$out" in
    *" executed=0 "*) echo "seed $seed: ok (warm after kill -9)" ;;
    *) echo "seed $seed: FAIL (not warm: $out)"; fail=1 ;;
  esac
done

exit "$fail"
