// trace_check — validate a Chrome trace_event JSON file produced by the
// obs layer (or any tool): required keys, per-thread B/E span nesting,
// monotonic timestamps. CI runs it over the chaos smoke trace before
// uploading the artifact.
//
// Usage: trace_check <trace.json> [more.json ...]
// Exit 0 when every file validates; 1 otherwise.

#include <fstream>
#include <iostream>
#include <sstream>

#include "obs/check.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: trace_check <trace.json> [more.json ...]\n";
    return 2;
  }
  bool all_ok = true;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i]);
    if (!in) {
      std::cerr << argv[i] << ": cannot open\n";
      all_ok = false;
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    interop::obs::TraceCheckResult r =
        interop::obs::check_chrome_trace(buf.str());
    if (r.ok) {
      std::cout << argv[i] << ": ok (" << r.events << " events, " << r.spans
                << " spans, " << r.counters << " counter samples, "
                << r.instants << " instants)\n";
    } else {
      all_ok = false;
      std::cerr << argv[i] << ": INVALID\n";
      for (const std::string& e : r.errors) std::cerr << "  " << e << "\n";
    }
  }
  return all_ok ? 0 : 1;
}
